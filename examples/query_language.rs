//! The continuous-query language front end: define streams, write a query
//! with filters, a union, a window join and a grouped aggregate, and run
//! them with explicit timestamps through [`QueryRunner`].
//!
//! ```text
//! cargo run --example query_language
//! ```

use millstream_core::QueryRunner;
use millstream_types::{Result, Value};

fn union_demo() -> Result<()> {
    println!("-- union of two filtered streams ------------------------------");
    let mut q = QueryRunner::new(
        "CREATE STREAM web (host INT, status INT);
         CREATE STREAM api (host INT, status INT);

         SELECT host, status FROM web WHERE status >= 500
         UNION
         SELECT host, status FROM api WHERE status >= 500;",
    )?;
    println!("output schema: {}", q.output_schema());

    q.push("web", 1_000, vec![Value::Int(1), Value::Int(200)])?;
    q.push("web", 2_000, vec![Value::Int(1), Value::Int(503)])?;
    q.push("api", 3_000, vec![Value::Int(2), Value::Int(500)])?;
    q.push("web", 4_000, vec![Value::Int(3), Value::Int(404)])?;
    q.push("api", 5_000, vec![Value::Int(2), Value::Int(502)])?;
    for t in q.finish()? {
        println!("  error event: {t}");
    }
    Ok(())
}

fn join_demo() -> Result<()> {
    println!("\n-- window join: orders enriched with recent prices -----------");
    let mut q = QueryRunner::new(
        "CREATE STREAM orders (sym INT, qty INT);
         CREATE STREAM prices (sym INT, px INT);

         SELECT o.sym, qty, px
         FROM orders AS o JOIN prices AS p
           ON o.sym = p.sym AND px > 0
         WINDOW 500 MILLISECONDS;",
    )?;
    q.push("prices", 100_000, vec![Value::Int(7), Value::Int(99)])?;
    q.push("orders", 300_000, vec![Value::Int(7), Value::Int(10)])?; // joins
    q.push("prices", 400_000, vec![Value::Int(8), Value::Int(55)])?;
    q.push("orders", 1_200_000, vec![Value::Int(8), Value::Int(3)])?; // price expired
    for t in q.finish()? {
        println!("  enriched order: {t}");
    }
    Ok(())
}

fn aggregate_demo() -> Result<()> {
    println!("\n-- tumbling-window aggregate ----------------------------------");
    let mut q = QueryRunner::new(
        "CREATE STREAM reqs (host INT, ms INT);
         CREATE STREAM reqs2 (host INT, ms INT);

         SELECT host, COUNT(*) AS n, AVG(ms) AS mean_ms, MAX(ms) AS worst
         FROM reqs GROUP BY host EVERY 1 SECONDS
         UNION
         SELECT host, COUNT(*) AS n, AVG(ms) AS mean_ms, MAX(ms) AS worst
         FROM reqs2 GROUP BY host EVERY 1 SECONDS;",
    )?;
    println!("output schema: {}", q.output_schema());
    for (i, ms) in [12i64, 8, 25, 90, 14].iter().enumerate() {
        q.push(
            "reqs",
            100_000 * (i as u64 + 1),
            vec![Value::Int((i % 2) as i64), Value::Int(*ms)],
        )?;
    }
    q.push("reqs2", 700_000, vec![Value::Int(9), Value::Int(40)])?;
    // Advance past the 1 s window boundary to flush the aggregates.
    q.advance_time(2_000_000)?;
    for t in q.drain() {
        println!("  window stats: {t}");
    }
    Ok(())
}

fn sliding_having_demo() -> Result<()> {
    println!("\n-- sliding window + HAVING -----------------------------------");
    let mut q = QueryRunner::new(
        "CREATE STREAM reqs (host INT, ms INT);
         CREATE STREAM reqs2 (host INT, ms INT);

         SELECT host, COUNT(*) AS n FROM reqs
         GROUP BY host WINDOW 2 SECONDS EVERY 1 SECONDS
         HAVING n >= 2
         UNION
         SELECT host, COUNT(*) AS n FROM reqs2
         GROUP BY host WINDOW 2 SECONDS EVERY 1 SECONDS
         HAVING n >= 2;",
    )?;
    // Host 1 sends twice within one 2 s window; host 2 only once.
    q.push("reqs", 200_000, vec![Value::Int(1), Value::Int(10)])?;
    q.push("reqs", 900_000, vec![Value::Int(1), Value::Int(12)])?;
    q.push("reqs", 1_400_000, vec![Value::Int(2), Value::Int(9)])?;
    q.advance_time(4_000_000)?;
    for t in q.drain() {
        println!("  busy host (≥2 hits in a 2 s sliding window): {t}");
    }
    Ok(())
}

fn shared_scan_demo() -> Result<()> {
    println!("\n-- shared scan: one stream, two branches, one Split -----------");
    let mut q = QueryRunner::new(
        "CREATE STREAM reqs (host INT, ms INT);

         SELECT host, ms FROM reqs WHERE ms >= 100   -- slow requests
         UNION
         SELECT host, ms FROM reqs WHERE ms < 10;    -- suspiciously fast",
    )?;
    for (i, ms) in [3i64, 250, 42, 7, 180].iter().enumerate() {
        q.push(
            "reqs",
            1_000 * (i as u64 + 1),
            vec![Value::Int(i as i64), Value::Int(*ms)],
        )?;
    }
    for t in q.finish()? {
        println!("  flagged: {t}");
    }
    println!("  (the planner fanned `reqs` out through one ⋔ Split — a single scan)");
    Ok(())
}

fn main() -> Result<()> {
    println!("millstream continuous-query language demo\n");
    union_demo()?;
    join_demo()?;
    aggregate_demo()?;
    sliding_having_demo()?;
    shared_scan_demo()?;
    Ok(())
}
