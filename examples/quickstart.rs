//! Quickstart: build the paper's Fig. 4 query with the graph-builder API,
//! run it under on-demand ETS on the virtual timeline, and print the
//! latency/memory summary.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use millstream_core::prelude::*;

fn main() -> Result<()> {
    // 1. The Fig. 4 workload: a busy stream and a sparse stream, each
    //    filtered, merged by a timestamp-ordered union.
    let cfg = UnionExperiment {
        fast_rate_hz: 50.0,
        slow_rate_hz: 0.05,
        selectivity: 0.95,
        strategy: Strategy::OnDemand,
        duration: TimeDelta::from_secs(120),
        ..UnionExperiment::default()
    };
    let report = run_union_experiment(&cfg)?;

    println!("millstream quickstart — Fig. 4 union under on-demand ETS");
    println!("virtual run time     : {:.0} s", report.metrics.run_seconds);
    println!("tuples ingested      : {:?}", report.ingested_per_stream);
    println!("tuples delivered     : {}", report.metrics.delivered);
    println!(
        "mean output latency  : {:.3} ms (p99 {:.3} ms)",
        report.metrics.latency.mean_ms, report.metrics.latency.p99_ms
    );
    println!(
        "union idle-waiting   : {:.4}% of run time",
        report.metrics.idle.idle_fraction * 100.0
    );
    println!(
        "peak queued tuples   : {}",
        report.metrics.peak_queue_tuples
    );
    println!(
        "on-demand ETS issued : {:?} (bounded by the data rate)",
        report.ets_per_stream
    );

    // 2. The same workload *without* ETS, for contrast.
    let baseline = run_union_experiment(&UnionExperiment {
        strategy: Strategy::NoEts,
        ..cfg
    })?;
    println!(
        "\nwithout ETS          : mean latency {:.0} ms, idle {:.1}%, peak queue {}",
        baseline.metrics.latency.mean_ms,
        baseline.metrics.idle.idle_fraction * 100.0,
        baseline.metrics.peak_queue_tuples
    );
    println!(
        "speedup              : {:.0}x lower latency with on-demand ETS",
        baseline.metrics.latency.mean_ms / report.metrics.latency.mean_ms
    );
    Ok(())
}
