//! Trace replay: run a textual continuous query over a recorded trace —
//! the workflow of evaluating a DSMS on captured traffic (as Gigascope-
//! style systems do) instead of live streams.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use millstream_exec::{CostModel, EtsPolicy, Executor, VirtualClock};
use millstream_query::plan_program;
use millstream_sim::{parse_trace, replay, SharedLatencyCollector};
use millstream_types::Result;

/// A small recorded trace: web requests and batch-job completions, merged
/// into one audit stream. The job stream is sparse — idle-waiting bait.
const TRACE: &str = "\
# ts_micros,stream,values...
1000,web,101,12
21000,web,102,7
44000,web,103,541
61000,web,104,3
102000,jobs,7,1
121000,web,105,88
142000,web,106,19
191000,web,107,240
202000,jobs,8,0
221000,web,108,64
";

const PROGRAM: &str = "
    CREATE STREAM web (req INT, ms INT);
    CREATE STREAM jobs (job INT, failed INT);

    SELECT req, ms FROM web WHERE ms > 5
    UNION
    SELECT job, failed FROM jobs;
";

fn main() -> Result<()> {
    println!("trace replay — audit union over a recorded trace\n");

    for (label, policy) in [
        ("no ETS", EtsPolicy::None),
        ("on-demand ETS", EtsPolicy::on_demand()),
    ] {
        let collector = SharedLatencyCollector::new();
        let planned = plan_program(PROGRAM, collector.clone())?;
        let mut executor = Executor::new(
            planned.graph,
            VirtualClock::shared(),
            CostModel::default(),
            policy,
        );
        let web = planned.sources[0].clone();
        let jobs = planned.sources[1].clone();
        let trace = parse_trace(TRACE, &[("web", &web.schema), ("jobs", &jobs.schema)])?;
        let report = replay(&mut executor, &[web.id, jobs.id], &trace, &collector)?;
        println!("{label}:");
        println!("  records ingested : {}", report.ingested);
        println!("  audit rows out   : {}", report.delivered);
        println!("  mean latency     : {:.3} ms", report.mean_latency_ms);
        println!("  ETS generated    : {}\n", report.ets_generated);
    }
    println!("Replays are deterministic: rerunning gives identical latencies,");
    println!("which makes recorded traces the regression harness for the engine.");
    Ok(())
}
