//! Runs the four §6 timestamp-management strategies on one workload and
//! prints the paper-style comparison table (a compact, single-run version
//! of the `fig7_latency` / `fig8_memory` / `idle_waiting_table` benches).
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use millstream_core::prelude::*;

fn main() -> Result<()> {
    let strategies = [
        Strategy::NoEts,
        Strategy::Periodic { rate_hz: 1.0 },
        Strategy::Periodic { rate_hz: 100.0 },
        Strategy::OnDemand,
        Strategy::Latent,
    ];

    println!("strategy comparison — Fig. 4 union, 50/s + 0.05/s Poisson, 120 s virtual time\n");
    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>10} {:>12}",
        "strategy", "mean lat (ms)", "idle %", "peak queue", "delivered", "punct enq."
    );
    println!("{}", "-".repeat(86));

    for strategy in strategies {
        let cfg = UnionExperiment {
            strategy,
            duration: TimeDelta::from_secs(120),
            seed: 1,
            ..UnionExperiment::default()
        };
        let r = run_union_experiment(&cfg)?;
        println!(
            "{:<22} {:>14.3} {:>10.3} {:>12} {:>10} {:>12}",
            strategy.label(),
            r.metrics.latency.mean_ms,
            r.metrics.idle.idle_fraction * 100.0,
            r.metrics.peak_queue_tuples,
            r.metrics.delivered,
            r.metrics.punctuation_enqueued,
        );
    }

    println!("\nReading the table like the paper:");
    println!("  A queues thousands of tuples for seconds at a time;");
    println!("  B improves with the heartbeat rate but pays punctuation traffic;");
    println!("  C (on-demand) reaches the latent lower bound D with bounded punctuation.");
    Ok(())
}
