//! The real-time engine: the Fig. 4 pipeline on OS threads and wall-clock
//! time, with producers at skewed rates. Demonstrates that on-demand ETS
//! requests keep wall-clock latency at microseconds while the no-ETS
//! variant blocks on the silent stream.
//!
//! ```text
//! cargo run --release --example threaded_pipeline
//! ```

use std::time::Duration;

use millstream_rt::{Fig4Rt, RtStrategy};
use millstream_types::Value;

fn run(label: &str, strategy: RtStrategy) {
    let rig = Fig4Rt::start(strategy, None);

    // Fast producer: ~200 tuples/s for half a second. The slow stream never
    // speaks — the worst case for idle-waiting.
    let fast = rig.fast.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..100i64 {
            fast.push_row(vec![Value::Int(i % 900)]).expect("push");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    producer.join().expect("producer thread");
    // Let the pipeline settle.
    std::thread::sleep(Duration::from_millis(100));

    let delivered = rig.metrics.delivered();
    let summary = rig.metrics.summary();
    let ets = rig.slow.ets_generated();
    rig.shutdown();

    println!("{label}:");
    println!("  delivered            : {delivered} / 100");
    if delivered > 0 {
        println!(
            "  latency mean / p99   : {:.3} ms / {:.3} ms",
            summary.mean_ms, summary.p99_ms
        );
    }
    println!("  on-demand ETS issued : {ets}\n");
}

fn main() {
    println!("real-time Fig. 4 pipeline (threads + crossbeam channels, wall clock)\n");

    run("on-demand ETS", RtStrategy::OnDemand);
    run(
        "no ETS (tuples stay blocked until shutdown drains them)",
        RtStrategy::NoEts {
            poll: Duration::from_millis(5),
        },
    );
    run("latent timestamps", RtStrategy::Latent);

    println!("The on-demand run answers each starvation with one punctuation from the");
    println!("silent source — the real-time analogue of the paper's backtrack-to-source rule.");
}
