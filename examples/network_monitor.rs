//! Network monitoring: the paper's motivating domain (Gigascope-style).
//!
//! A busy packet stream is joined against a sparse IDS-alert stream: for
//! every alert, report the packets from the same host seen within a 2 s
//! window. The alert stream is rare — exactly the rate skew that makes the
//! join idle-wait without timestamp management. The example builds the
//! graph by hand, drives it with explicit tuples, and contrasts no-ETS
//! against on-demand ETS.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;

/// Collects deliveries while sharing ownership with the sink.
#[derive(Clone, Default)]
struct Collected(Arc<Mutex<Vec<(Tuple, Timestamp)>>>);

impl SinkCollector for Collected {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.0.lock().unwrap().push((tuple, now));
    }
}

fn packet_schema() -> Schema {
    Schema::new(vec![
        Field::new("host", DataType::Int),
        Field::new("bytes", DataType::Int),
    ])
}

fn alert_schema() -> Schema {
    Schema::new(vec![
        Field::new("host", DataType::Int),
        Field::new("severity", DataType::Int),
    ])
}

struct Monitor {
    exec: Executor,
    packets: SourceId,
    alerts: SourceId,
    out: Collected,
}

fn build(policy: EtsPolicy) -> Result<Monitor> {
    let mut b = GraphBuilder::new();
    let packets = b.source("packets", packet_schema(), TimestampKind::Internal);
    let alerts = b.source("alerts", alert_schema(), TimestampKind::Internal);

    // Only big packets are interesting.
    let big = b.operator(
        Box::new(Filter::new(
            "σ big",
            packet_schema(),
            Expr::col(1).gt(Expr::lit(1_000)),
        )),
        vec![Input::Source(packets)],
    )?;

    let joined_schema = packet_schema().join(&alert_schema(), "p", "a");
    let join = b.operator(
        Box::new(WindowJoin::new(
            "⋈ host",
            joined_schema.clone(),
            JoinSpec {
                window_a: TimeDelta::from_secs(2),
                window_b: TimeDelta::from_secs(2),
                key: Some((0, 0)), // host = host
                residual: None,
                progress_punctuation: false,
            },
        )),
        vec![Input::Op(big), Input::Source(alerts)],
    )?;
    let out = Collected::default();
    b.operator(
        Box::new(Sink::new("report", joined_schema, out.clone())),
        vec![Input::Op(join)],
    )?;
    let graph = b.build()?;
    let exec = Executor::new(graph, VirtualClock::shared(), CostModel::default(), policy);
    Ok(Monitor {
        exec,
        packets,
        alerts,
        out,
    })
}

/// Replays a fixed trace: packets every 10 ms, one alert at t = 1 s.
fn replay(m: &mut Monitor) -> Result<()> {
    let push = |exec: &mut Executor, src, ts_ms: u64, row: Vec<Value>| -> Result<()> {
        exec.clock().advance_to(Timestamp::from_millis(ts_ms));
        let ts = exec.clock().now();
        exec.ingest(src, Tuple::data(ts, row))?;
        exec.run_until_quiescent(100_000)?;
        Ok(())
    };
    for i in 0..300u64 {
        let host = (i % 5) as i64;
        let bytes = if i % 3 == 0 { 1_500 } else { 200 };
        push(
            &mut m.exec,
            m.packets,
            10 * i,
            vec![Value::Int(host), Value::Int(bytes)],
        )?;
        if i == 100 {
            push(
                &mut m.exec,
                m.alerts,
                10 * i + 1,
                vec![Value::Int(2), Value::Int(9)],
            )?;
        }
    }
    Ok(())
}

fn main() -> Result<()> {
    println!("network monitor — packets ⋈ alerts (2 s window, keyed by host)\n");

    for (label, policy) in [
        ("no ETS (idle-waits on the alert stream)", EtsPolicy::None),
        ("on-demand ETS", EtsPolicy::on_demand()),
    ] {
        let mut m = build(policy)?;
        replay(&mut m)?;
        let delivered = m.out.0.lock().unwrap();
        let worst = delivered
            .iter()
            .map(|(t, at)| at.duration_since(t.entry))
            .max()
            .unwrap_or(TimeDelta::ZERO);
        println!("{label}:");
        println!("  alert reports delivered : {}", delivered.len());
        println!("  worst report latency    : {worst}");
        println!(
            "  stuck in queues at end  : {} tuples",
            m.exec.graph().tracker().data_total()
        );
        for (t, _) in delivered.iter().take(3) {
            println!("  e.g. {t}");
        }
        println!();
    }
    println!("Without ETS, only the reports the alert itself can probe come out; every");
    println!("later packet that matches the alert stays blocked waiting for a second alert");
    println!("that never arrives. On-demand ETS delivers all of them within microseconds.");
    Ok(())
}
