//! Offline stand-in for the `crossbeam::channel` API surface that
//! millstream-rt uses: cloneable MPMC `Sender`/`Receiver` pairs from
//! [`channel::unbounded`]/[`channel::bounded`], the usual recv variants,
//! and a polling [`channel::Select`] good enough for
//! `select_timeout` over a handful of receivers.
//!
//! Built on `std::sync` (`Mutex` + `Condvar`); the real crate's lock-free
//! internals are a throughput optimisation the rt pipeline's tests do not
//! depend on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message arrives or all senders drop.
        avail: Condvar,
        /// Signalled when capacity frees up or all receivers drop.
        space: Condvar,
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            avail: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a channel holding at most `cap` messages; `send` blocks when
    /// full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently full.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T: Send> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// The sending half of a channel; cloneable for MPMC use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.space.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.avail.notify_one();
            Ok(())
        }

        /// Sends a message only if it can be done without blocking: fails
        /// with [`TrySendError::Full`] on a full bounded channel instead of
        /// waiting for capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = inner.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.avail.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.avail.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel; cloneable for MPMC use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available or all
        /// senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.avail.wait(inner).unwrap();
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.space.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .avail
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Whether the channel holds no messages right now.
        pub fn is_empty(&self) -> bool {
            self.shared.inner.lock().unwrap().queue.is_empty()
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Blocking iterator that ends when all senders drop.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Readiness check for [`Select`]: a `recv` would not block.
        fn ready(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap();
            !inner.queue.is_empty() || inner.senders == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            Iter { rx: self }
        }
    }

    /// Error returned by [`Select::select_timeout`] when nothing became
    /// ready in time.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct SelectTimeoutError;

    impl fmt::Display for SelectTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("select timed out")
        }
    }

    impl std::error::Error for SelectTimeoutError {}

    /// A polling implementation of crossbeam's `Select`.
    ///
    /// Readiness is rechecked every 200 µs; with the 10 ms timeouts the rt
    /// pipeline uses, that wakes at most 50 times per idle select — cheap
    /// next to a thread-per-operator design.
    pub struct Select<'a> {
        ops: Vec<Box<dyn Fn() -> bool + 'a>>,
        /// Round-robin start so one chatty input cannot starve the rest.
        next_start: usize,
    }

    impl Default for Select<'_> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<'a> Select<'a> {
        /// Creates an empty select set.
        pub fn new() -> Self {
            Select {
                ops: Vec::new(),
                next_start: 0,
            }
        }

        /// Adds a receive operation; returns its index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            let idx = self.ops.len();
            self.ops.push(Box::new(move || rx.ready()));
            idx
        }

        fn poll_once(&mut self) -> Option<usize> {
            let n = self.ops.len();
            let start = self.next_start % n.max(1);
            for off in 0..n {
                let i = (start + off) % n;
                if (self.ops[i])() {
                    self.next_start = i + 1;
                    return Some(i);
                }
            }
            None
        }

        /// Waits for any registered operation to become ready, at most
        /// `timeout`. A disconnected receiver counts as ready (its recv
        /// completes immediately with an error), matching crossbeam.
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation, SelectTimeoutError> {
            let deadline = Instant::now() + timeout;
            loop {
                if let Some(i) = self.poll_once() {
                    return Ok(SelectedOperation { index: i });
                }
                if Instant::now() >= deadline {
                    return Err(SelectTimeoutError);
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// A ready operation handed out by [`Select::select_timeout`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl SelectedOperation {
        /// Index of the ready operation (registration order).
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the receive on the receiver this operation was
        /// registered with.
        pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
            // The operation reported ready, but with cloned receivers a
            // sibling consumer may drain the message first; re-poll briefly
            // before giving up so a transient Empty is not misread as a
            // disconnect.
            let deadline = Instant::now() + Duration::from_millis(10);
            loop {
                match rx.try_recv() {
                    Ok(msg) => return Ok(msg),
                    Err(TryRecvError::Disconnected) => return Err(RecvError),
                    Err(TryRecvError::Empty) => {
                        if Instant::now() >= deadline {
                            return Err(RecvError);
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, Select, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn try_send_never_blocks() {
        use channel::TrySendError;
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_picks_ready_receiver() {
        let (tx1, rx1) = channel::unbounded::<i32>();
        let (tx2, rx2) = channel::unbounded::<i32>();
        tx2.send(7).unwrap();
        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        let op = sel.select_timeout(Duration::from_millis(50)).unwrap();
        assert_eq!(op.index(), 1);
        assert_eq!(op.recv(&rx2), Ok(7));
        drop(tx1);
        drop(tx2);
        // Disconnected receivers count as ready.
        let mut sel = Select::new();
        sel.recv(&rx1);
        let op = sel.select_timeout(Duration::from_millis(50)).unwrap();
        assert!(op.recv(&rx1).is_err());
    }

    #[test]
    fn iterator_ends_on_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
