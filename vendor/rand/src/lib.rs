//! Offline stand-in for the parts of `rand` 0.8 that millstream uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`]/[`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets, so statistical
//! quality is comparable. Streams are NOT bit-compatible with the real
//! crate; the simulator only requires determinism per seed, which this
//! provides.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a random generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny bias is
                // irrelevant for simulation workloads.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(v as $wide)) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((start as $wide).wrapping_add(v as $wide)) as $ty
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        let wide: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        wide as f32
    }
}

/// Generator families, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as rand_core does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: u64 = rng.gen_range(0..=3);
            assert!(u <= 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
