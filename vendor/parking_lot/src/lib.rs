//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! external `parking_lot` crate is replaced by this shim exposing the same
//! API surface millstream uses: `Mutex`/`MutexGuard` and `RwLock` with
//! non-poisoning lock methods. Poisoned std locks are recovered by taking
//! the inner guard — matching parking_lot's behaviour of not tracking
//! poison at all.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning methods.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
