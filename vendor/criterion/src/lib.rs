//! Offline stand-in for the slice of `criterion` that millstream's
//! micro-benchmarks use: `Criterion::default()` with the
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `bench_function` with `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is plain wall-clock sampling: a warm-up phase estimates
//! the per-iteration time, then `sample_size` samples are collected over
//! the measurement window and the median/mean/min are printed. There are
//! no plots, baselines, or statistical significance tests.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; accepted for
/// compatibility, the shim always sets up one input per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup outputs (the only variant millstream uses).
    SmallInput,
    /// Large setup outputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Benchmark driver configured per group.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// No-op hook kept for API compatibility with `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Per-sample mean nanoseconds per iteration.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over repeated iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;

        // Size each sample so all samples fit the measurement window.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples_ns.push(dt / iters_per_sample as f64);
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up (setup excluded from the estimate's numerator as well:
        // only routine time is accumulated).
        let mut spent = Duration::ZERO;
        let mut iters: u64 = 0;
        while spent < self.warm_up_time {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        let per_iter = spent.as_secs_f64() / iters.max(1) as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut dt = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                dt += t0.elapsed();
            }
            self.samples_ns
                .push(dt.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let mean: f64 = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{id:<40} time: [min {:>12} median {:>12} mean {:>12}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, targets...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut counter = 0u64;
        c.bench_function("shim/iter", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            });
        });
        assert!(counter > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("shim/iter_batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }
}
