//! Offline stand-in for the slice of `proptest` that millstream's
//! property tests use: [`Strategy`] with `prop_map`/`prop_recursive`,
//! [`Just`], [`any`], integer-range and regex-literal strategies, tuple
//! composition, `prop::collection::vec`, `prop::option::of`, the
//! `proptest!`/`prop_oneof!`/`prop_assert*!` macros, and
//! [`ProptestConfig`].
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the generated values
//!   interpolated into the assertion message (the tests all format their
//!   inputs), so diagnosis works without minimisation.
//! * **Deterministic seeding.** Each test derives its RNG stream from a
//!   hash of the test name and the case index, so failures reproduce
//!   exactly on every run — there is no persistence file to manage
//!   (existing `.proptest-regressions` files are ignored).
//! * **Regex strategies** support the subset the tests use: sequences of
//!   character classes (`[a-zA-Z0-9 _']` with ranges) each followed by an
//!   optional `{n}`/`{n,m}` repeat.

use std::cell::Cell;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-case random stream (xoshiro256++ over a SplitMix64
/// expansion of the seed).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the stream for one test case from the test's name and the
    /// case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x9e37_79b9);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// shallower values and returns one for the next level. Samples mix
    /// all depths up to `depth` so both leaves and deep nests appear.
    /// (`_desired_size` and `_expected_branch_size` shape probabilities
    /// in the real crate; the level mix here already bounds size.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let shallower = LevelMix {
                levels: levels.clone(),
            }
            .boxed();
            levels.push(recurse(shallower).boxed());
        }
        LevelMix { levels }.boxed()
    }
}

/// Uniform choice among strategies for increasing recursion depths.
struct LevelMix<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for LevelMix<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.levels.len() as u64) as usize;
        self.levels[i].sample(rng)
    }
}

/// A cloneable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among same-typed strategies; built by `prop_oneof!`.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> WeightedUnion<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, regex literals, tuples
// ---------------------------------------------------------------------------

/// Types with a default generation strategy, à la `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Bias 1-in-8 toward boundary values, like the real crate's
                // preference for edge cases.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $ty,
                        1 => 1 as $ty,
                        2 => <$ty>::MIN,
                        _ => <$ty>::MAX,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix special values in, as any::<f64>() does.
        if rng.below(8) == 0 {
            match rng.below(6) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => f64::MIN_POSITIVE,
            }
        } else if rng.below(2) == 0 {
            // Moderate magnitudes, where arithmetic stays finite.
            (rng.unit_f64() - 0.5) * 2e6
        } else {
            // Arbitrary bit patterns (may be huge, subnormal, or NaN).
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for [`any`], parameterised by the generated type.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.below(span);
                ((self.start as $wide).wrapping_add(v as $wide)) as $ty
            }
        }
    )*};
}

impl_range_strategy!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// String-literal regex strategies over the supported subset: a sequence
/// of character classes, each with an optional `{n}`/`{n,m}` repeat.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range in pattern `{pattern}`");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern `{pattern}`");

        // Optional repeat.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parsed = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse::<usize>().expect("repeat lower bound"),
                    hi.parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.parse::<usize>().expect("repeat count");
                    (n, n)
                }
            };
            i = close + 1;
            parsed
        } else {
            (1, 1)
        };

        let len = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..len {
            let k = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[k]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ---------------------------------------------------------------------------
// Collection / option strategies
// ---------------------------------------------------------------------------

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::option` equivalents.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` one time in four, matching the real
    /// crate's default weighting toward `Some`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option`s of `inner` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Knobs for the `proptest!` runner; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim has no rejection filters.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}

thread_local! {
    static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// Runs `case` for each configured case with a deterministic per-case
/// stream. Called by the `proptest!` macro expansion.
pub fn run_proptest<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut case: F) {
    struct CaseReport(&'static str);
    impl Drop for CaseReport {
        fn drop(&mut self) {
            if std::thread::panicking() {
                let case = CURRENT_CASE.with(|c| c.get());
                eprintln!(
                    "proptest shim: `{}` failed at case {case} \
                     (deterministic; re-run reproduces it)",
                    self.0
                );
            }
        }
    }
    let _report = CaseReport(Box::leak(name.to_owned().into_boxed_str()));
    for i in 0..config.cases {
        CURRENT_CASE.with(|c| c.set(i));
        let mut rng = TestRng::for_case(name, i);
        case(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Module-style access (`prop::collection::vec`, `prop::option::of`),
    /// mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("shim-internal", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (0u64..50, any::<i8>()).sample(&mut r);
            assert!(v.0 < 50);
            let w = (1i64..5).sample(&mut r);
            assert!((1..5).contains(&w));
        }
    }

    #[test]
    fn regex_patterns() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,6}".sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let c0 = s.chars().next().unwrap();
            assert!(c0.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
            let t = "[a-zA-Z0-9 ]{0,6}".sample(&mut r);
            assert!(t.len() <= 6);
            let q = "[a-z ']{0,8}".sample(&mut r);
            assert!(q
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\''));
        }
    }

    #[test]
    fn oneof_weights_and_map() {
        let strat = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..1_000 {
            if strat.sample(&mut r) == 1 {
                ones += 1;
            }
        }
        assert!((650..900).contains(&ones), "ones {ones}");
        let mapped = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(mapped.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn recursive_generates_all_depths() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let strat = Just(0u8)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                inner.prop_map(|t| Tree::Node(Box::new(t)))
            });
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..500 {
            let d = depth(&strat.sample(&mut r));
            assert!(d <= 3);
            seen[d] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn collections_and_options() {
        let mut r = rng();
        let vs = prop::collection::vec(0u64..5, 2..6);
        let mut saw_none = false;
        let os = prop::option::of(0u64..5);
        for _ in 0..500 {
            let v = vs.sample(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            saw_none |= os.sample(&mut r).is_none();
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro wires args, strategies and assertions together.
        #[test]
        fn macro_smoke(a in 0u64..10, b in any::<bool>(), s in "[a-z]{1,3}") {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert!(!s.is_empty() && s.len() <= 3, "bad sample {:?}", s);
        }
    }
}
