//! Offline stand-in for `serde`'s derive macros.
//!
//! millstream annotates config and summary types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so that a real serde
//! backend can be attached when one is available, but no code in the
//! workspace ever *calls* serde serialization (the metrics crate carries
//! its own minimal JSON emitter). In offline builds this proc-macro crate
//! takes serde's place: the derives parse and accept `#[serde(...)]`
//! helper attributes, then expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
