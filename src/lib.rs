//! `millstream-suite` — workspace-level integration-test and example host.
//!
//! The real library surface lives in [`millstream_core`]; this crate only
//! re-exports it so that `tests/` and `examples/` at the workspace root can
//! use a single dependency name.

pub use millstream_core as core;
