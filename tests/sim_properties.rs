//! Property-based integration tests over the simulation substrate: the
//! paper's qualitative claims must hold for *any* workload in a broad
//! parameter space, not just the §6 configuration.

use proptest::prelude::*;

use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn cfg(strategy: Strategy, fast: f64, slow: f64, selectivity: f64, seed: u64) -> UnionExperiment {
    UnionExperiment {
        fast_rate_hz: fast,
        slow_rate_hz: slow,
        selectivity,
        strategy,
        duration: TimeDelta::from_secs(20),
        seed,
        ..UnionExperiment::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Delivered tuples never exceed ingested tuples, latencies are
    /// non-negative and finite, and the peak queue is at least the final
    /// backlog.
    #[test]
    fn accounting_invariants(
        fast in 1.0f64..80.0,
        slow in 0.02f64..2.0,
        selectivity in 0.1f64..1.0,
        seed in 0u64..1_000,
    ) {
        for strategy in [Strategy::NoEts, Strategy::OnDemand, Strategy::Latent] {
            let r = run_union_experiment(&cfg(strategy, fast, slow, selectivity, seed)).unwrap();
            let ingested: u64 = r.ingested_per_stream.iter().sum();
            prop_assert!(r.metrics.delivered <= ingested);
            if r.metrics.delivered > 0 {
                prop_assert!(r.metrics.latency.mean_ms.is_finite());
                prop_assert!(r.metrics.latency.mean_ms >= 0.0);
                prop_assert!(r.metrics.latency.min_ms <= r.metrics.latency.mean_ms + 1e-9);
                prop_assert!(r.metrics.latency.mean_ms <= r.metrics.latency.max_ms + 1e-9);
            }
            prop_assert!(r.metrics.idle.idle_fraction >= 0.0);
            prop_assert!(r.metrics.idle.idle_fraction <= 1.0 + 1e-9);
        }
    }

    /// On-demand ETS never loses data: with selectivity 1 every ingested
    /// tuple is eventually delivered (up to the final in-flight wave).
    #[test]
    fn on_demand_conservation(
        fast in 5.0f64..60.0,
        slow in 0.05f64..2.0,
        seed in 0u64..1_000,
    ) {
        let r = run_union_experiment(&cfg(Strategy::OnDemand, fast, slow, 1.0, seed)).unwrap();
        let ingested: u64 = r.ingested_per_stream.iter().sum();
        // Everything but at most a handful of tuples from the very last
        // activation is delivered.
        prop_assert!(
            ingested - r.metrics.delivered <= 4,
            "ingested {} delivered {}",
            ingested,
            r.metrics.delivered
        );
    }

    /// On-demand dominates no-ETS in latency and memory on every workload
    /// with real skew, and never generates unbounded punctuation.
    #[test]
    fn on_demand_dominates_no_ets(
        fast in 20.0f64..80.0,
        slow in 0.02f64..0.5,
        seed in 0u64..1_000,
    ) {
        let a = run_union_experiment(&cfg(Strategy::NoEts, fast, slow, 0.95, seed)).unwrap();
        let c = run_union_experiment(&cfg(Strategy::OnDemand, fast, slow, 0.95, seed)).unwrap();
        // Some short runs may see zero slow tuples; A then delivers nothing
        // and reports NaN latency — C must still deliver.
        prop_assert!(c.metrics.delivered >= a.metrics.delivered);
        if a.metrics.delivered > 0 {
            prop_assert!(c.metrics.latency.mean_ms <= a.metrics.latency.mean_ms);
        }
        prop_assert!(c.metrics.peak_queue_tuples <= a.metrics.peak_queue_tuples.max(8));
        let ingested: u64 = c.ingested_per_stream.iter().sum();
        prop_assert!(
            c.exec.ets_generated <= 2 * ingested + 4,
            "ets {} vs ingested {}",
            c.exec.ets_generated,
            ingested
        );
    }

    /// Identical seeds give bit-identical runs (full determinism of the
    /// event calendar, RNG and executor).
    #[test]
    fn determinism(seed in 0u64..10_000) {
        let c = cfg(Strategy::OnDemand, 30.0, 0.2, 0.9, seed);
        let r1 = run_union_experiment(&c).unwrap();
        let r2 = run_union_experiment(&c).unwrap();
        prop_assert_eq!(r1.metrics.delivered, r2.metrics.delivered);
        prop_assert_eq!(r1.metrics.latency.mean_ms.to_bits(), r2.metrics.latency.mean_ms.to_bits());
        prop_assert_eq!(r1.exec.steps, r2.exec.steps);
        prop_assert_eq!(r1.metrics.peak_queue_tuples, r2.metrics.peak_queue_tuples);
    }
}
