//! Differential order-equivalence suite for the batched Encore hot path.
//!
//! Batched execution (`ExecOptions::encore_batch` > 1) fuses consecutive
//! Encore steps of one batch-safe operator into a single scheduling
//! decision. The optimisation must be *observationally invisible*: for any
//! batch size, any ETS policy and any scheduling policy, the delivered
//! output sequence, the ETS traffic and the idle-waiting profile must be
//! identical to per-tuple execution.
//!
//! Two rigs are exercised — the paper's Fig. 4 union pipeline and a
//! symmetric window-join pipeline — each driven by the same deterministic
//! arrival schedule (data tuples, drop-runs for the filters, heartbeats,
//! and an end-of-stream drain).

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;

/// Shared sink collector recording `(tuple, delivery time)` pairs.
#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<(Tuple, Timestamp)>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.0.lock().unwrap().push((tuple, now));
    }
}

/// Everything observable about one finished run, for differential
/// comparison against the per-tuple baseline.
#[derive(Debug, PartialEq)]
struct Observation {
    delivered: Vec<(Tuple, Timestamp)>,
    ets_generated: u64,
    steps: u64,
    work_units: u64,
    dropped_stale_heartbeats: u64,
    idle_total: TimeDelta,
    final_clock: Timestamp,
}

struct Rig {
    exec: Executor,
    s1: SourceId,
    s2: SourceId,
    monitored: NodeId,
    out: Out,
}

impl Rig {
    /// Enqueues a data tuple without running the executor, so waves of
    /// arrivals form real queues (the batched path is only interesting
    /// when Encore runs exist).
    fn push(&mut self, src: SourceId, ms: u64, v: i64) {
        self.exec.clock().advance_to(Timestamp::from_millis(ms));
        let ts = self.exec.clock().now();
        self.exec
            .ingest(src, Tuple::data(ts, vec![Value::Int(v)]))
            .unwrap();
    }

    /// Enqueues a heartbeat punctuation without running the executor.
    fn heartbeat(&mut self, src: SourceId, ms: u64) {
        self.exec.clock().advance_to(Timestamp::from_millis(ms));
        let ts = self.exec.clock().now();
        self.exec.ingest_heartbeat(src, ts).unwrap();
    }

    fn drain(&mut self) {
        self.exec.run_until_quiescent(1_000_000).unwrap();
    }

    fn finish(mut self) -> Observation {
        self.exec.close_source(self.s1).unwrap();
        self.exec.close_source(self.s2).unwrap();
        self.exec.run_until_quiescent(1_000_000).unwrap();
        self.exec.finish_idle();
        let stats = self.exec.stats();
        let idle_total = self
            .exec
            .idle_tracker(self.monitored)
            .map(|t| t.total_idle())
            .unwrap_or(TimeDelta::ZERO);
        Observation {
            delivered: self.out.0.lock().unwrap().clone(),
            ets_generated: stats.ets_generated,
            steps: stats.steps,
            work_units: stats.work_units,
            dropped_stale_heartbeats: stats.dropped_stale_heartbeats,
            idle_total,
            final_clock: self.exec.clock().now(),
        }
    }
}

/// The Fig. 4 pipeline: S1 → σ1, S2 → σ2, ∪, sink. The filters keep only
/// non-negative values, so runs of negative inputs become Encore drop-runs
/// that the batched path fuses.
fn fig4_rig(policy: EtsPolicy, sched: SchedPolicy, k: usize) -> Rig {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("S2", schema.clone(), TimestampKind::Internal);
    let f1 = b
        .operator(
            Box::new(Filter::new(
                "σ1",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s1)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new(
                "σ2",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s2)],
        )
        .unwrap();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    )
    .with_sched_policy(sched)
    .with_encore_batch(k);
    exec.monitor_idle(u);
    Rig {
        exec,
        s1,
        s2,
        monitored: u,
        out,
    }
}

/// A window-join pipeline: S1 → σ1, S2 → σ2, ⋈ (2 s symmetric window,
/// equality key on column 0), sink. The join itself is not batch-safe, so
/// this rig checks that batching upstream filters never perturbs a
/// stateful, clock-sensitive downstream operator.
fn join_rig(policy: EtsPolicy, sched: SchedPolicy, k: usize) -> Rig {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let joined = schema.join(&schema, "a", "b");
    let mut b = GraphBuilder::new();
    let s1 = b.source("A", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("B", schema.clone(), TimestampKind::Internal);
    let f1 = b
        .operator(
            Box::new(Filter::new(
                "σ1",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s1)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new(
                "σ2",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s2)],
        )
        .unwrap();
    let spec = JoinSpec::symmetric(TimeDelta::from_secs(2)).with_key(0, 0);
    let j = b
        .operator(
            Box::new(WindowJoin::new("⋈", joined.clone(), spec)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", joined, out.clone())),
        vec![Input::Op(j)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    )
    .with_sched_policy(sched)
    .with_encore_batch(k);
    exec.monitor_idle(j);
    Rig {
        exec,
        s1,
        s2,
        monitored: j,
        out,
    }
}

/// One deterministic arrival schedule, shared by every run of a rig.
/// Arrivals come in waves of eight S1 tuples plus one S2 tuple, ingested
/// *before* the executor runs, so the filters face real queues:
/// * S1 speaks every 5 ms; two of every eight values are negative, so σ1
///   sees fusable Encore drop-runs;
/// * S2 speaks every 40 ms with mostly negative values (long drop-runs on
///   σ2, plus starvation waves at the merge operator);
/// * a heartbeat rides on S2 every other wave, immediately followed by a
///   duplicate at the same timestamp, exercising the staleness gate
///   identically in every run;
/// * both sources close at the end and the pipeline drains.
fn drive(mut rig: Rig) -> Observation {
    let (s1, s2) = (rig.s1, rig.s2);
    for i in 0u64..160 {
        let ms = 5 * i;
        let v = match i % 8 {
            3 | 4 => -(i as i64), // drop-run fodder for σ1
            _ => (i % 10) as i64, // small key domain → join matches
        };
        rig.push(s1, ms, v);
        if i % 8 == 7 {
            let v2 = if i % 16 == 7 { (i % 10) as i64 } else { -1 };
            rig.push(s2, ms + 1, v2);
            if i % 16 == 15 {
                // Fresh heartbeat, then a duplicate at the same timestamp
                // that the staleness gate must drop.
                rig.heartbeat(s2, ms + 2);
                rig.heartbeat(s2, ms + 2);
            }
            rig.drain();
        }
    }
    rig.finish()
}

const BATCH_SIZES: [usize; 2] = [8, 64];

fn policies() -> Vec<(EtsPolicy, SchedPolicy)> {
    let mut combos = Vec::new();
    for ets in [EtsPolicy::None, EtsPolicy::on_demand()] {
        for sched in [SchedPolicy::DepthFirst, SchedPolicy::RoundRobin] {
            combos.push((ets, sched));
        }
    }
    combos
}

fn assert_equivalent(
    rig: impl Fn(EtsPolicy, SchedPolicy, usize) -> Rig,
    expect_output: impl Fn(&Observation),
) {
    for (ets, sched) in policies() {
        let baseline = drive(rig(ets, sched, 1));
        expect_output(&baseline);
        for k in BATCH_SIZES {
            let batched = drive(rig(ets, sched, k));
            assert_eq!(
                batched.delivered, baseline.delivered,
                "output diverged at K={k} under {ets:?}/{sched:?}"
            );
            assert_eq!(
                batched.ets_generated, baseline.ets_generated,
                "ETS traffic diverged at K={k} under {ets:?}/{sched:?}"
            );
            assert_eq!(
                batched.steps, baseline.steps,
                "step count diverged at K={k} under {ets:?}/{sched:?}"
            );
            assert_eq!(
                batched.work_units, baseline.work_units,
                "work diverged at K={k} under {ets:?}/{sched:?}"
            );
            assert_eq!(
                batched.dropped_stale_heartbeats, baseline.dropped_stale_heartbeats,
                "staleness gate diverged at K={k} under {ets:?}/{sched:?}"
            );
            assert_eq!(
                batched.final_clock, baseline.final_clock,
                "virtual time diverged at K={k} under {ets:?}/{sched:?}"
            );
            // "No new idle-waiting": the batched run may never idle longer
            // than per-tuple execution (with identical costs it is exactly
            // equal, which the assertion also accepts).
            assert!(
                batched.idle_total <= baseline.idle_total,
                "idle-waiting grew at K={k} under {ets:?}/{sched:?}: \
                 {} > {}",
                batched.idle_total,
                baseline.idle_total,
            );
        }
    }
}

#[test]
fn fig4_union_batched_matches_per_tuple() {
    assert_equivalent(fig4_rig, |base| {
        // The schedule must actually exercise the interesting paths:
        // deliveries, drop-runs (fewer outputs than inputs) and the
        // staleness gate.
        assert!(
            base.delivered.len() >= 100,
            "only {} deliveries",
            base.delivered.len()
        );
        assert!(base.delivered.iter().all(|(t, _)| t.is_data()));
        assert!(base.dropped_stale_heartbeats >= 10);
        let ts: Vec<_> = base.delivered.iter().map(|(t, _)| t.ts).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted, "sink output must stay timestamp ordered");
    });
}

#[test]
fn window_join_batched_matches_per_tuple() {
    assert_equivalent(join_rig, |base| {
        assert!(
            base.delivered.len() >= 20,
            "only {} join results",
            base.delivered.len()
        );
        assert!(base.delivered.iter().all(|(t, _)| t.is_data()));
        // Joined rows are A ++ B with matching keys.
        for (t, _) in &base.delivered {
            let row = t.values_expect();
            assert_eq!(row.len(), 2);
            assert_eq!(row[0], row[1], "equality key must hold");
        }
    });
}

#[test]
fn batching_reduces_scheduling_decisions_under_dfs() {
    // Not an equivalence property but the point of the optimisation: at
    // K=64 the depth-first scheduler takes measurably fewer scheduling
    // decisions (batches) for the same number of operator steps.
    let base = drive_collect_batches(fig4_rig(EtsPolicy::on_demand(), SchedPolicy::DepthFirst, 1));
    let batched = drive_collect_batches(fig4_rig(
        EtsPolicy::on_demand(),
        SchedPolicy::DepthFirst,
        64,
    ));
    assert_eq!(base.0, batched.0, "same number of operator steps");
    assert!(
        batched.1 < base.1,
        "batching must reduce scheduling decisions: {} !< {}",
        batched.1,
        base.1
    );
}

/// Runs the standard schedule and returns `(steps, batches)`.
fn drive_collect_batches(mut rig: Rig) -> (u64, u64) {
    let (s1, s2) = (rig.s1, rig.s2);
    for i in 0u64..160 {
        let ms = 5 * i;
        let v = match i % 8 {
            3 | 4 => -(i as i64),
            _ => (i % 10) as i64,
        };
        rig.push(s1, ms, v);
        if i % 8 == 7 {
            rig.push(s2, ms + 1, -1);
            rig.drain();
        }
    }
    rig.exec.close_source(s1).unwrap();
    rig.exec.close_source(s2).unwrap();
    rig.drain();
    let stats = rig.exec.stats();
    (stats.steps, stats.batches)
}

#[test]
fn peak_join_state_is_sampled_and_bounded() {
    // The executor samples `Operator::state_tuples` after every charged
    // batch: the join node's profile carries a nonzero peak, the global
    // `peak_join_state` matches it, and the peak stays bounded by the
    // window (2 s at one S1 tuple per 5 ms plus the slower S2 side).
    let mut rig = join_rig(EtsPolicy::on_demand(), SchedPolicy::DepthFirst, 1);
    let (s1, s2) = (rig.s1, rig.s2);
    for i in 0u64..400 {
        rig.push(s1, 5 * i, (i % 10) as i64);
        if i % 8 == 7 {
            rig.push(s2, 5 * i + 1, (i % 10) as i64);
            rig.drain();
        }
    }
    rig.exec.close_source(s1).unwrap();
    rig.exec.close_source(s2).unwrap();
    rig.drain();
    let stats = rig.exec.stats();
    let join_peak = rig
        .exec
        .profile()
        .iter()
        .find(|p| p.name == "⋈")
        .expect("join profiled")
        .peak_state;
    assert!(join_peak > 0, "join held state at some point");
    assert_eq!(
        stats.peak_join_state, join_peak,
        "global peak = join's peak"
    );
    // 2 s window over both sides: ≤ 400 S1 tuples + ≤ 50 S2 tuples live at
    // once; 1.5× purge slack on the hashed windows stays well under 700.
    assert!(
        join_peak < 700,
        "state bounded by window expiry: {join_peak}"
    );
}
