//! Shared subplans: one stream fanned out through a `Split` to several
//! query branches — the multi-query sharing a production DSMS performs.
//! Verifies correctness of the fan-out, punctuation propagation to every
//! branch, and the planner's automatic Split insertion for streams
//! referenced by multiple branches.

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;
use millstream_core::QueryRunner;

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

/// events ─⋔─→ σ(v ≥ 100) ──┐
///            └→ σ(v < 100) ─┴ both → own sinks
fn build_fanout(policy: EtsPolicy) -> (Executor, SourceId, Out, Out) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s = b.source("events", schema.clone(), TimestampKind::Internal);
    let split = b
        .operator(
            Box::new(Split::new("⋔", schema.clone(), 2)),
            vec![Input::Source(s)],
        )
        .unwrap();
    let hi = b
        .operator(
            Box::new(Filter::new(
                "σ_hi",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(100)),
            )),
            vec![Input::OpPort(split, 0)],
        )
        .unwrap();
    let lo = b
        .operator(
            Box::new(Filter::new(
                "σ_lo",
                schema.clone(),
                Expr::col(0).lt(Expr::lit(100)),
            )),
            vec![Input::OpPort(split, 1)],
        )
        .unwrap();
    let out_hi = Out::default();
    let out_lo = Out::default();
    b.operator(
        Box::new(Sink::new("sink_hi", schema.clone(), out_hi.clone())),
        vec![Input::Op(hi)],
    )
    .unwrap();
    b.operator(
        Box::new(Sink::new("sink_lo", schema, out_lo.clone())),
        vec![Input::Op(lo)],
    )
    .unwrap();
    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    );
    (exec, s, out_hi, out_lo)
}

#[test]
fn fanout_partitions_the_stream() {
    let (mut exec, s, out_hi, out_lo) = build_fanout(EtsPolicy::None);
    for i in 0..50u64 {
        exec.clock().advance_to(Timestamp::from_millis(10 * i));
        let ts = exec.clock().now();
        exec.ingest(s, Tuple::data(ts, vec![Value::Int((i * 7 % 200) as i64)]))
            .unwrap();
        exec.run_until_quiescent(100_000).unwrap();
    }
    let hi = out_hi.0.lock().unwrap().len();
    let lo = out_lo.0.lock().unwrap().len();
    assert_eq!(hi + lo, 50, "every tuple lands in exactly one partition");
    assert!(hi > 0 && lo > 0);
    // Both partitions remain timestamp-ordered.
    for out in [&out_hi, &out_lo] {
        let ts: Vec<_> = out.0.lock().unwrap().iter().map(|t| t.ts).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }
}

#[test]
fn split_fans_ets_to_a_union_branch() {
    // events ─⋔→ branch A: σ_all ─┐
    //           └→ branch B ──────┴→ ∪ with a second, silent stream.
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s = b.source("events", schema.clone(), TimestampKind::Internal);
    let quiet = b.source("quiet", schema.clone(), TimestampKind::Internal);
    let split = b
        .operator(
            Box::new(Split::new("⋔", schema.clone(), 2)),
            vec![Input::Source(s)],
        )
        .unwrap();
    let out_direct = Out::default();
    b.operator(
        Box::new(Sink::new("sink_direct", schema.clone(), out_direct.clone())),
        vec![Input::OpPort(split, 0)],
    )
    .unwrap();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::OpPort(split, 1), Input::Source(quiet)],
        )
        .unwrap();
    let out_union = Out::default();
    b.operator(
        Box::new(Sink::new("sink_union", schema, out_union.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::on_demand(),
    );
    for i in 0..20u64 {
        exec.clock().advance_to(Timestamp::from_millis(5 * i));
        let ts = exec.clock().now();
        exec.ingest(s, Tuple::data(ts, vec![Value::Int(i as i64)]))
            .unwrap();
        exec.run_until_quiescent(100_000).unwrap();
    }
    assert_eq!(
        out_direct.0.lock().unwrap().len(),
        20,
        "direct branch drains"
    );
    assert_eq!(
        out_union.0.lock().unwrap().len(),
        20,
        "the union branch drains too: ETS on `quiet` unblocks it"
    );
}

#[test]
fn planned_shared_stream_executes_both_branches() {
    let mut q = QueryRunner::new(
        "CREATE STREAM reqs (host INT, ms INT);
         SELECT host, ms FROM reqs WHERE ms >= 100
         UNION
         SELECT host, ms FROM reqs WHERE ms < 100;",
    )
    .unwrap();
    for (i, ms) in [20i64, 150, 80, 300, 99].iter().enumerate() {
        q.push(
            "reqs",
            1_000 * (i as u64 + 1),
            vec![Value::Int(i as i64), Value::Int(*ms)],
        )
        .unwrap();
    }
    let out = q.finish().unwrap();
    assert_eq!(out.len(), 5, "partition-and-union covers the stream");
    let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
    let mut sorted = ts.clone();
    sorted.sort();
    assert_eq!(ts, sorted, "union output ordered despite the shared scan");
}
