//! Cross-crate integration: graph builder (exec) + operators (ops) +
//! buffers + metrics, driven tuple-by-tuple with controlled timestamps.
//! Exercises the paper's Fig. 4 union pipeline end to end for every
//! ETS policy.

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<(Tuple, Timestamp)>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.0.lock().unwrap().push((tuple, now));
    }
}

struct Rig {
    exec: Executor,
    s1: SourceId,
    s2: SourceId,
    union: NodeId,
    out: Out,
}

fn rig(policy: EtsPolicy) -> Rig {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("S2", schema.clone(), TimestampKind::Internal);
    let f1 = b
        .operator(
            Box::new(Filter::new(
                "σ1",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s1)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new(
                "σ2",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s2)],
        )
        .unwrap();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    );
    exec.monitor_idle(u);
    Rig {
        exec,
        s1,
        s2,
        union: u,
        out,
    }
}

fn push(rig: &mut Rig, src: SourceId, ms: u64, v: i64) {
    rig.exec.clock().advance_to(Timestamp::from_millis(ms));
    let ts = rig.exec.clock().now();
    rig.exec
        .ingest(src, Tuple::data(ts, vec![Value::Int(v)]))
        .unwrap();
    rig.exec.run_until_quiescent(100_000).unwrap();
}

#[test]
fn on_demand_delivers_every_wave() {
    let mut r = rig(EtsPolicy::on_demand());
    let (s1, s2) = (r.s1, r.s2);
    for i in 0..100 {
        push(&mut r, s1, 10 * i, i as i64);
    }
    push(&mut r, s2, 1_500, 999);
    for i in 100..200 {
        push(&mut r, s1, 10 * i, i as i64);
    }
    let delivered = r.out.0.lock().unwrap();
    assert_eq!(delivered.len(), 201);
    // Worst-case latency is bounded by the per-wave processing cost, far
    // below the 10 ms inter-arrival gap.
    let worst = delivered
        .iter()
        .map(|(t, at)| at.duration_since(t.entry))
        .max()
        .unwrap();
    assert!(worst < TimeDelta::from_millis(1), "worst {worst}");
    // Sink output is timestamp ordered.
    let ts: Vec<_> = delivered.iter().map(|(t, _)| t.ts).collect();
    let mut sorted = ts.clone();
    sorted.sort();
    assert_eq!(ts, sorted);
}

#[test]
fn no_ets_waits_for_the_peer_and_catches_up() {
    let mut r = rig(EtsPolicy::None);
    let (s1, s2) = (r.s1, r.s2);
    for i in 0..50 {
        push(&mut r, s1, 10 * i, i as i64);
    }
    assert_eq!(
        r.out.0.lock().unwrap().len(),
        0,
        "all 50 blocked at the union"
    );
    assert!(r.exec.graph().tracker().data_total() >= 50);

    // The peer finally speaks; everything ≤ its timestamp drains. (The
    // peer's own tuple stays queued: S1's register is still behind it.)
    push(&mut r, s2, 10_000, 999);
    let delivered = r.out.0.lock().unwrap();
    assert_eq!(delivered.len(), 50);
    let worst = delivered
        .iter()
        .map(|(t, at)| at.duration_since(t.entry))
        .max()
        .unwrap();
    assert!(
        worst >= TimeDelta::from_secs(9),
        "the first tuple waited ~10 s, got {worst}"
    );
}

#[test]
fn idle_fraction_tracks_the_strategy() {
    // Same arrival pattern, both policies; idle fraction must differ by
    // orders of magnitude.
    let mut idle = vec![];
    for policy in [EtsPolicy::None, EtsPolicy::on_demand()] {
        let mut r = rig(policy);
        let (s1, _s2) = (r.s1, r.s2);
        for i in 0..100 {
            push(&mut r, s1, 100 * i, i as i64);
        }
        r.exec.finish_idle();
        let frac = r
            .exec
            .idle_tracker(r.union)
            .unwrap()
            .idle_fraction(r.exec.clock().now());
        idle.push(frac);
    }
    assert!(idle[0] > 0.95, "no-ETS idle {}", idle[0]);
    assert!(idle[1] < 0.01, "on-demand idle {}", idle[1]);
}

#[test]
fn punctuation_never_reaches_collectors() {
    let mut r = rig(EtsPolicy::on_demand());
    let (s1, s2) = (r.s1, r.s2);
    for i in 0..20 {
        push(&mut r, s1, 5 * i, 1);
        push(&mut r, s2, 5 * i + 2, 2);
    }
    assert!(r.out.0.lock().unwrap().iter().all(|(t, _)| t.is_data()));
}

#[test]
fn ets_traffic_is_bounded_by_data_rate() {
    let mut r = rig(EtsPolicy::on_demand());
    let (s1, _s2) = (r.s1, r.s2);
    let waves = 500u64;
    for i in 0..waves {
        push(&mut r, s1, 2 * i, 1);
    }
    let stats = r.exec.stats();
    // At most a couple of ETS per ingested tuple (one per source).
    assert!(
        stats.ets_generated <= 2 * waves + 2,
        "ets {} for {waves} tuples",
        stats.ets_generated
    );
}
