//! Failure-injection integration tests: disorder, starvation without ETS,
//! degenerate workloads, punctuation-only streams, and error propagation
//! through the executor.

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;
use millstream_core::QueryRunner;

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        let _ = now;
        self.0.lock().unwrap().push(tuple);
    }
}

fn small_graph(order: millstream_core::buffer::OrderPolicy) -> (Executor, SourceId, Out) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new().with_order_policy(order);
    let s = b.source("s", schema.clone(), TimestampKind::External);
    let f = b
        .operator(
            Box::new(Filter::new("σ", schema.clone(), Expr::lit(true))),
            vec![Input::Source(s)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(f)],
    )
    .unwrap();
    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    );
    (exec, s, out)
}

fn t(ms: u64) -> Tuple {
    Tuple::data(Timestamp::from_millis(ms), vec![Value::Int(ms as i64)])
}

#[test]
fn out_of_order_reject_policy_errors() {
    let (mut exec, s, _) = small_graph(millstream_core::buffer::OrderPolicy::Reject);
    exec.ingest(s, t(100)).unwrap();
    let err = exec.ingest(s, t(50)).unwrap_err();
    assert!(matches!(err, Error::OutOfOrder { .. }));
    // The engine stays usable after the rejection.
    exec.ingest(s, t(150)).unwrap();
    exec.run_until_quiescent(1_000).unwrap();
}

#[test]
fn out_of_order_clamp_policy_repairs() {
    let (mut exec, s, out) = small_graph(millstream_core::buffer::OrderPolicy::Clamp);
    exec.ingest(s, t(100)).unwrap();
    exec.ingest(s, t(50)).unwrap();
    exec.run_until_quiescent(1_000).unwrap();
    let delivered = out.0.lock().unwrap();
    assert_eq!(delivered.len(), 2);
    assert_eq!(delivered[1].ts, delivered[0].ts, "clamped to the watermark");
}

#[test]
fn out_of_order_drop_policy_sheds() {
    let (mut exec, s, out) = small_graph(millstream_core::buffer::OrderPolicy::Drop);
    exec.ingest(s, t(100)).unwrap();
    exec.ingest(s, t(50)).unwrap();
    exec.ingest(s, t(150)).unwrap();
    exec.run_until_quiescent(1_000).unwrap();
    assert_eq!(
        out.0.lock().unwrap().len(),
        2,
        "the regressed tuple is shed"
    );
}

#[test]
fn zero_rate_stream_is_rejected_by_workload_validation() {
    let cfg = UnionExperiment {
        slow_rate_hz: 0.0,
        duration: TimeDelta::from_secs(1),
        ..UnionExperiment::default()
    };
    assert!(matches!(run_union_experiment(&cfg), Err(Error::Config(_))));
}

#[test]
fn starved_forever_without_ets_still_correct_on_flush() {
    // Strategy A with a permanently silent peer: results are late but
    // correct once the peer's watermark finally moves (failure recovery).
    let mut q = QueryRunner::new(
        "CREATE STREAM a (v INT);
         CREATE STREAM b (v INT);
         SELECT v FROM a UNION SELECT v FROM b;",
    )
    .unwrap();
    for i in 0..100u64 {
        q.push("a", 1_000 * i, vec![Value::Int(i as i64)]).unwrap();
    }
    assert!(q.drain().len() <= 1, "virtually everything is blocked");
    let all = q.finish().unwrap();
    assert_eq!(all.len(), 100, "no loss, only delay");
    let vs: Vec<i64> = all
        .iter()
        .map(|t| t.values().unwrap()[0].as_int().unwrap())
        .collect();
    assert_eq!(vs, (0..100).collect::<Vec<i64>>(), "order preserved");
}

#[test]
fn punctuation_only_stream_unblocks_but_emits_nothing() {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s1 = b.source("data", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("quiet", schema.clone(), TimestampKind::Internal);
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Source(s1), Input::Source(s2)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    );
    // Only heartbeats on the quiet stream; data on the other.
    exec.clock().advance_to(Timestamp::from_millis(10));
    exec.ingest(s1, t(10)).unwrap();
    for ms in [20u64, 30, 40] {
        exec.clock().advance_to(Timestamp::from_millis(ms));
        exec.ingest_heartbeat(s2, Timestamp::from_millis(ms))
            .unwrap();
        exec.run_until_quiescent(10_000).unwrap();
    }
    let delivered = out.0.lock().unwrap();
    assert_eq!(delivered.len(), 1, "the data tuple came through");
    assert!(delivered[0].is_data());
}

#[test]
fn expression_error_surfaces_through_the_executor() {
    // A filter whose predicate divides by a column that is zero.
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s = b.source("s", schema.clone(), TimestampKind::Internal);
    let f = b
        .operator(
            Box::new(Filter::new(
                "σ",
                schema.clone(),
                Expr::lit(10).binary_div_by_col0().gt(Expr::lit(1)),
            )),
            vec![Input::Source(s)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(f)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    );
    exec.ingest(
        s,
        Tuple::data(Timestamp::from_millis(1), vec![Value::Int(0)]),
    )
    .unwrap();
    let mut saw_error = false;
    for _ in 0..10 {
        match exec.step() {
            Err(Error::Eval(_)) => {
                saw_error = true;
                break;
            }
            Ok(Activity::Quiescent) => break,
            _ => {}
        }
    }
    assert!(saw_error, "division by zero must surface as Error::Eval");
}

/// Helper to build `10 / #0` without polluting the main expression API.
trait DivByCol0 {
    fn binary_div_by_col0(self) -> Expr;
}

impl DivByCol0 for Expr {
    fn binary_div_by_col0(self) -> Expr {
        Expr::binary(millstream_core::types::BinOp::Div, self, Expr::col(0))
    }
}
