//! Integration of the query-language front end with the simulation driver:
//! plan a textual query, wire stochastic workloads to its sources, and run
//! it on virtual time under different ETS policies.

use millstream_exec::{CostModel, EtsPolicy, Executor, VirtualClock};
use millstream_query::plan_program;
use millstream_sim::{
    ArrivalProcess, PayloadGen, SharedLatencyCollector, SimReport, Simulation, StreamSpec,
};
use millstream_types::{TimeDelta, TimestampKind};

const PROGRAM: &str = "
    CREATE STREAM fast (v INT);
    CREATE STREAM slow (v INT);
    SELECT v FROM fast WHERE v < 950
    UNION
    SELECT v FROM slow WHERE v < 950;
";

fn run(policy: EtsPolicy, seconds: u64) -> SimReport {
    let collector = SharedLatencyCollector::new();
    let planned = plan_program(PROGRAM, collector.clone()).expect("plans");
    assert_eq!(planned.sources.len(), 2);
    let monitor = planned.monitor.expect("union is monitored");

    let executor = Executor::new(
        planned.graph,
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    );

    let spec = |name: &str, rate: f64, schema| StreamSpec {
        name: name.into(),
        schema,
        kind: TimestampKind::Internal,
        process: ArrivalProcess::Poisson { rate_hz: rate },
        payload: PayloadGen::UniformInt { modulus: 1000 },
        heartbeat_period: None,
        external_delay: TimeDelta::ZERO,
        external_jitter: TimeDelta::ZERO,
    };
    let fast = planned.sources[0].clone();
    let slow = planned.sources[1].clone();
    let mut sim = Simulation::new(
        executor,
        vec![
            (fast.id, spec("fast", 40.0, fast.schema.clone())),
            (slow.id, spec("slow", 0.1, slow.schema.clone())),
        ],
        collector,
        Some(monitor),
        2024,
    )
    .expect("sim builds");
    sim.run(TimeDelta::from_secs(seconds)).expect("sim runs")
}

#[test]
fn planned_query_runs_under_on_demand_ets() {
    let r = run(EtsPolicy::on_demand(), 60);
    assert!(
        r.metrics.delivered > 1_500,
        "delivered {}",
        r.metrics.delivered
    );
    assert!(
        r.metrics.latency.mean_ms < 1.0,
        "mean {} ms",
        r.metrics.latency.mean_ms
    );
    assert!(r.exec.ets_generated > 0);
    // Roughly 95% of ingested traffic passes the WHERE clause.
    let ingested: u64 = r.ingested_per_stream.iter().sum();
    let ratio = r.metrics.delivered as f64 / ingested as f64;
    assert!((ratio - 0.95).abs() < 0.05, "selectivity ratio {ratio}");
}

#[test]
fn planned_query_idle_waits_without_ets() {
    let r = run(EtsPolicy::None, 60);
    assert!(
        r.metrics.latency.mean_ms > 100.0,
        "mean {} ms",
        r.metrics.latency.mean_ms
    );
    assert!(
        r.metrics.idle.idle_fraction > 0.5,
        "idle {}",
        r.metrics.idle.idle_fraction
    );
}

#[test]
fn planned_join_query_executes() {
    let program = "
        CREATE STREAM l (k INT, a INT);
        CREATE STREAM r (k INT, b INT);
        SELECT l.k, a, b FROM l JOIN r ON l.k = r.k WINDOW 2 SECONDS;
    ";
    let collector = SharedLatencyCollector::new();
    let planned = plan_program(program, collector.clone()).expect("plans");
    let monitor = planned.monitor.expect("join monitored");
    let executor = Executor::new(
        planned.graph,
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::on_demand(),
    );
    let spec = |rate: f64, schema| StreamSpec {
        name: "s".into(),
        schema,
        kind: TimestampKind::Internal,
        process: ArrivalProcess::Poisson { rate_hz: rate },
        payload: PayloadGen::KeyedSeq { keys: 5 },
        heartbeat_period: None,
        external_delay: TimeDelta::ZERO,
        external_jitter: TimeDelta::ZERO,
    };
    let a = planned.sources[0].clone();
    let b = planned.sources[1].clone();
    let mut sim = Simulation::new(
        executor,
        vec![
            (a.id, spec(20.0, a.schema.clone())),
            (b.id, spec(1.0, b.schema.clone())),
        ],
        collector,
        Some(monitor),
        7,
    )
    .expect("sim builds");
    let r = sim.run(TimeDelta::from_secs(30)).expect("runs");
    // With 5 keys and a 2 s window there are plenty of matches, and the
    // on-demand policy delivers them at service-time latency.
    assert!(
        r.metrics.delivered > 50,
        "delivered {}",
        r.metrics.delivered
    );
    assert!(
        r.metrics.latency.mean_ms < 5.0,
        "mean {} ms",
        r.metrics.latency.mean_ms
    );
}
