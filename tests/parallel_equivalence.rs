//! Differential equivalence suite for parallel multi-component execution.
//!
//! `ParallelExecutor` runs each connected component of a query graph on
//! its own worker thread, each with a private clock and a private
//! single-threaded `Executor`. Because ETS backtracking never crosses a
//! component boundary, parallel execution must be *observationally
//! invisible* per component. Two baselines pin that down:
//!
//! 1. **Per-component serial baselines** — each component built and driven
//!    standalone on its own `Executor` with the identical schedule. Every
//!    observable must match *exactly*: the delivered `(tuple, time)`
//!    sequence, the full `ExecStats` (steps, work units, ETS counts,
//!    backtracks, staleness drops), per-source ETS and the final clock.
//! 2. **The whole-graph serial executor** — one `Executor` owning all
//!    components on one shared clock. Here only the delivered data per
//!    sink can be compared (a shared clock re-arms ETS budgets across
//!    components on every ingest, so step/ETS counters legitimately
//!    differ), and that comparison must hold too.
//!
//! The rig has three components — the paper's Fig. 4 union pipeline, a
//! union whose second input stays silent for the whole run (blocked, the
//! ETS showcase), and a plain filter chain — crossed over
//! EtsPolicy × SchedPolicy, plus a worker-multiplexing check
//! (3 components on 2 workers ≡ 3 workers).

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;

/// Shared sink collector recording `(tuple, delivery time)` pairs.
#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<(Tuple, Timestamp)>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.0.lock().unwrap().push((tuple, now));
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

const COMPONENTS: usize = 3;

/// Sources per component (component 0 and 1 have two, component 2 one).
const SOURCES: [usize; COMPONENTS] = [2, 2, 1];

/// One abstract driver step, applied identically to the parallel
/// executor (global ids), the per-component serial executors (local ids)
/// and the whole-graph serial executor (global ids).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Advance every clock to this instant (ms).
    Advance(u64),
    /// Ingest a data tuple stamped at `ms` into component `comp`'s
    /// `src`-th source.
    Data {
        comp: usize,
        src: usize,
        ms: u64,
        v: i64,
    },
    /// Ingest a heartbeat stamped at `ms`.
    Heartbeat { comp: usize, src: usize, ms: u64 },
    /// Run everything to quiescence.
    Drain,
}

/// The deterministic schedule shared by every run:
/// * component 0 (Fig. 4 union): a fast stream with drop-runs, a slow
///   stream, and duplicate heartbeats exercising the staleness gate;
/// * component 1 (blocked union): a steady first input, a second input
///   that never speaks — the union can only progress via on-demand ETS
///   (or not at all under `EtsPolicy::None`) until EOS;
/// * component 2 (chain): a sparse stream through a selective filter.
fn schedule() -> Vec<Step> {
    use Step::*;
    let mut steps = Vec::new();
    for i in 0u64..160 {
        let ms = 5 * i;
        steps.push(Advance(ms));
        let v = match i % 8 {
            3 | 4 => -(i as i64), // drop-run fodder for σ0a
            _ => (i % 10) as i64,
        };
        steps.push(Data {
            comp: 0,
            src: 0,
            ms,
            v,
        });
        if i % 8 == 7 {
            let v2 = if i % 16 == 7 { (i % 10) as i64 } else { -1 };
            steps.push(Data {
                comp: 0,
                src: 1,
                ms: ms + 1,
                v: v2,
            });
        }
        if i % 16 == 15 {
            // Fresh heartbeat, then a duplicate at the same timestamp
            // that the staleness gate must drop.
            steps.push(Heartbeat {
                comp: 0,
                src: 1,
                ms: ms + 2,
            });
            steps.push(Heartbeat {
                comp: 0,
                src: 1,
                ms: ms + 2,
            });
        }
        if i % 2 == 0 {
            // Component 1's first input speaks; its second never does.
            steps.push(Data {
                comp: 1,
                src: 0,
                ms,
                v: (i % 5) as i64,
            });
        }
        if i % 3 == 0 {
            let v = if i % 6 == 0 {
                (i % 7) as i64
            } else {
                -(i as i64)
            };
            steps.push(Data {
                comp: 2,
                src: 0,
                ms,
                v,
            });
        }
        if i % 8 == 7 {
            steps.push(Drain);
        }
    }
    steps
}

/// Adds component `comp`'s operators to `b`, fed by the given sources.
/// Used both for the combined graph and for standalone per-component
/// baselines, so the structures are identical by construction.
fn add_component(b: &mut GraphBuilder, comp: usize, sources: &[SourceId], out: Out) {
    let pass = |name: &str| Filter::new(name.to_string(), schema(), Expr::col(0).ge(Expr::lit(0)));
    match comp {
        0 => {
            let f1 = b
                .operator(Box::new(pass("σ0a")), vec![Input::Source(sources[0])])
                .unwrap();
            let f2 = b
                .operator(Box::new(pass("σ0b")), vec![Input::Source(sources[1])])
                .unwrap();
            let u = b
                .operator(
                    Box::new(Union::new("∪0", schema(), 2)),
                    vec![Input::Op(f1), Input::Op(f2)],
                )
                .unwrap();
            b.operator(
                Box::new(Sink::new("sink0", schema(), out)),
                vec![Input::Op(u)],
            )
            .unwrap();
        }
        1 => {
            let u = b
                .operator(
                    Box::new(Union::new("∪1", schema(), 2)),
                    vec![Input::Source(sources[0]), Input::Source(sources[1])],
                )
                .unwrap();
            b.operator(
                Box::new(Sink::new("sink1", schema(), out)),
                vec![Input::Op(u)],
            )
            .unwrap();
        }
        2 => {
            let f = b
                .operator(Box::new(pass("σ2")), vec![Input::Source(sources[0])])
                .unwrap();
            b.operator(
                Box::new(Sink::new("sink2", schema(), out)),
                vec![Input::Op(f)],
            )
            .unwrap();
        }
        _ => unreachable!("three components"),
    }
}

/// Builds the combined 3-component graph. Returns per-component source
/// ids and sink collectors.
fn combined_graph() -> (QueryGraph, Vec<Vec<SourceId>>, Vec<Out>) {
    let mut b = GraphBuilder::new();
    let sources: Vec<Vec<SourceId>> = (0..COMPONENTS)
        .map(|c| {
            (0..SOURCES[c])
                .map(|s| b.source(format!("S{c}.{s}"), schema(), TimestampKind::Internal))
                .collect()
        })
        .collect();
    let outs: Vec<Out> = (0..COMPONENTS).map(|_| Out::default()).collect();
    for c in 0..COMPONENTS {
        add_component(&mut b, c, &sources[c], outs[c].clone());
    }
    (b.build().unwrap(), sources, outs)
}

/// Everything observable about one component after a run.
#[derive(Debug, PartialEq)]
struct CompObservation {
    delivered: Vec<(Tuple, Timestamp)>,
    stats: ExecStats,
    ets_per_source: Vec<u64>,
    final_clock: Timestamp,
}

/// Drives the standalone serial baseline of component `comp`.
fn run_component_serial(comp: usize, policy: EtsPolicy, sched: SchedPolicy) -> CompObservation {
    let mut b = GraphBuilder::new();
    let sources: Vec<SourceId> = (0..SOURCES[comp])
        .map(|s| b.source(format!("S{comp}.{s}"), schema(), TimestampKind::Internal))
        .collect();
    let out = Out::default();
    add_component(&mut b, comp, &sources, out.clone());
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    )
    .with_sched_policy(sched);

    for step in schedule() {
        match step {
            Step::Advance(ms) => exec.clock().advance_to(Timestamp::from_millis(ms)),
            Step::Data {
                comp: c,
                src,
                ms,
                v,
            } if c == comp => {
                exec.ingest(
                    sources[src],
                    Tuple::data(Timestamp::from_millis(ms), vec![Value::Int(v)]),
                )
                .unwrap();
            }
            Step::Heartbeat { comp: c, src, ms } if c == comp => {
                exec.ingest_heartbeat(sources[src], Timestamp::from_millis(ms))
                    .unwrap();
            }
            Step::Drain => {
                exec.run_until_quiescent(1_000_000).unwrap();
            }
            _ => {}
        }
    }
    for &s in &sources {
        exec.close_source(s).unwrap();
    }
    exec.run_until_quiescent(1_000_000).unwrap();
    let delivered = out.0.lock().unwrap().clone();
    CompObservation {
        delivered,
        stats: exec.stats(),
        ets_per_source: sources
            .iter()
            .map(|&s| exec.graph().source(s).ets_generated)
            .collect(),
        final_clock: exec.clock().now(),
    }
}

/// Drives the parallel executor over the combined graph and splits the
/// observation per component.
fn run_parallel(policy: EtsPolicy, sched: SchedPolicy, workers: usize) -> Vec<CompObservation> {
    let (graph, sources, outs) = combined_graph();
    let pex = ParallelExecutor::new(
        graph,
        ParallelConfig::new(CostModel::default(), policy, workers).with_sched_policy(sched),
    );
    assert_eq!(pex.num_components(), COMPONENTS);

    for step in schedule() {
        match step {
            Step::Advance(ms) => pex.advance_to(Timestamp::from_millis(ms)).unwrap(),
            Step::Data { comp, src, ms, v } => {
                pex.ingest(
                    sources[comp][src],
                    Tuple::data(Timestamp::from_millis(ms), vec![Value::Int(v)]),
                )
                .unwrap();
            }
            Step::Heartbeat { comp, src, ms } => {
                pex.ingest_heartbeat(sources[comp][src], Timestamp::from_millis(ms))
                    .unwrap();
            }
            Step::Drain => {
                pex.run_until_quiescent(1_000_000).unwrap();
            }
        }
    }
    for comp_sources in &sources {
        for &s in comp_sources {
            pex.close_source(s).unwrap();
        }
    }
    pex.run_until_quiescent(1_000_000).unwrap();

    let snap = pex.snapshot().unwrap();
    (0..COMPONENTS)
        .map(|c| CompObservation {
            delivered: outs[c].0.lock().unwrap().clone(),
            stats: snap.component_stats[c],
            ets_per_source: sources[c]
                .iter()
                .map(|&s| snap.ets_per_source[s.index()])
                .collect(),
            final_clock: snap.component_clocks[c],
        })
        .collect()
}

/// Drives the whole-graph serial executor; returns the delivered data
/// tuples per sink (delivery times are not comparable — one shared clock
/// serializes all components).
fn run_whole_serial(policy: EtsPolicy, sched: SchedPolicy) -> Vec<Vec<Tuple>> {
    let (graph, sources, outs) = combined_graph();
    let mut exec = Executor::new(graph, VirtualClock::shared(), CostModel::default(), policy)
        .with_sched_policy(sched);

    for step in schedule() {
        match step {
            Step::Advance(ms) => exec.clock().advance_to(Timestamp::from_millis(ms)),
            Step::Data { comp, src, ms, v } => {
                exec.ingest(
                    sources[comp][src],
                    Tuple::data(Timestamp::from_millis(ms), vec![Value::Int(v)]),
                )
                .unwrap();
            }
            Step::Heartbeat { comp, src, ms } => {
                exec.ingest_heartbeat(sources[comp][src], Timestamp::from_millis(ms))
                    .unwrap();
            }
            Step::Drain => {
                exec.run_until_quiescent(1_000_000).unwrap();
            }
        }
    }
    for comp_sources in &sources {
        for &s in comp_sources {
            exec.close_source(s).unwrap();
        }
    }
    exec.run_until_quiescent(1_000_000).unwrap();
    outs.iter()
        .map(|o| o.0.lock().unwrap().iter().map(|(t, _)| t.clone()).collect())
        .collect()
}

fn policies() -> Vec<(EtsPolicy, SchedPolicy)> {
    let mut combos = Vec::new();
    for ets in [EtsPolicy::None, EtsPolicy::on_demand()] {
        for sched in [SchedPolicy::DepthFirst, SchedPolicy::RoundRobin] {
            combos.push((ets, sched));
        }
    }
    combos
}

#[test]
fn parallel_components_match_serial_baselines_exactly() {
    for (ets, sched) in policies() {
        let parallel = run_parallel(ets, sched, COMPONENTS);
        for (comp, observed) in parallel.iter().enumerate() {
            let serial = run_component_serial(comp, ets, sched);
            assert_eq!(
                *observed, serial,
                "component {comp} diverged under {ets:?}/{sched:?}"
            );
        }
    }
}

#[test]
fn parallel_output_matches_whole_graph_serial_run() {
    for (ets, sched) in policies() {
        let serial = run_whole_serial(ets, sched);
        let parallel = run_parallel(ets, sched, COMPONENTS);
        for comp in 0..COMPONENTS {
            let got: Vec<Tuple> = parallel[comp]
                .delivered
                .iter()
                .map(|(t, _)| t.clone())
                .collect();
            assert_eq!(
                got, serial[comp],
                "sink {comp} data diverged from the whole-graph run under {ets:?}/{sched:?}"
            );
        }
    }
}

#[test]
fn worker_multiplexing_is_invisible() {
    // 3 components on 2 workers: one worker hosts two components, so the
    // round-robin multiplexing path runs. Observations must be identical
    // to the one-worker-per-component layout.
    for (ets, sched) in policies() {
        let dedicated = run_parallel(ets, sched, COMPONENTS);
        let multiplexed = run_parallel(ets, sched, 2);
        assert_eq!(
            dedicated, multiplexed,
            "worker multiplexing changed observations under {ets:?}/{sched:?}"
        );
    }
}

#[test]
fn schedule_exercises_the_interesting_paths() {
    // The suite only proves something if the schedule drives each rig
    // through its characteristic behavior; pin that here.
    let obs = run_parallel(EtsPolicy::on_demand(), SchedPolicy::DepthFirst, COMPONENTS);

    // Component 0: real deliveries, drop-runs and staleness drops.
    assert!(
        obs[0].delivered.len() >= 100,
        "only {} deliveries",
        obs[0].delivered.len()
    );
    assert!(obs[0].stats.dropped_stale_heartbeats >= 5);
    // Component 1: the silent second input forces on-demand ETS there.
    assert!(
        obs[1].ets_per_source[1] > 0,
        "the blocked union's silent input must be unblocked by on-demand ETS"
    );
    assert!(!obs[1].delivered.is_empty());
    // Component 2: the selective filter actually dropped tuples.
    assert!(!obs[2].delivered.is_empty());
    assert!(obs[2].delivered.len() < 54, "filter dropped nothing");

    // Under EtsPolicy::None the blocked union must still deliver exactly
    // the serial result (everything arrives only at EOS).
    let none = run_parallel(EtsPolicy::None, SchedPolicy::DepthFirst, COMPONENTS);
    assert_eq!(none[1].stats.ets_generated, 0);
    assert!(!none[1].delivered.is_empty());
}
