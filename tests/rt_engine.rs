//! Integration tests of the real-time engine: wall-clock validation of the
//! behaviour the simulator measures on virtual time, plus shutdown and
//! back-pressure behaviour across threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use millstream_rt::{
    spawn_sink, spawn_union, spawn_union2, spawn_window_join, Fig4Rt, RtSource, RtStrategy,
    WallClock,
};
use millstream_types::{Timestamp, TimestampKind, Value};

#[test]
fn rt_on_demand_vs_no_ets_mirror_the_sim() {
    // On-demand: delivered promptly.
    let rig = Fig4Rt::start(RtStrategy::OnDemand, None);
    for i in 0..25 {
        rig.fast.push_row(vec![Value::Int(i)]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(60));
    let on_demand_delivered = rig.metrics.delivered();
    let on_demand_mean = rig.metrics.summary().mean_ms;
    rig.shutdown();

    // No ETS: nothing moves while the slow stream is silent.
    let rig = Fig4Rt::start(
        RtStrategy::NoEts {
            poll: Duration::from_millis(2),
        },
        None,
    );
    for i in 0..25 {
        rig.fast.push_row(vec![Value::Int(i)]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(60));
    let no_ets_delivered = rig.metrics.delivered();
    rig.shutdown();

    assert!(on_demand_delivered >= 20, "{on_demand_delivered}");
    assert_eq!(no_ets_delivered, 0);
    assert!(
        on_demand_mean < 30.0,
        "wall-clock mean {on_demand_mean} ms should be tiny"
    );
}

#[test]
fn rt_union_preserves_timestamp_order_under_concurrency() {
    let clock = WallClock::new();
    let (src_a, rx_a) = RtSource::new("a", TimestampKind::Internal, clock.clone(), None);
    let (src_b, rx_b) = RtSource::new("b", TimestampKind::Internal, clock.clone(), None);
    let (tx, rx) = crossbeam::channel::unbounded();
    let union = spawn_union2(
        "u",
        [(rx_a, src_a.clone()), (rx_b, src_b.clone())],
        tx,
        RtStrategy::OnDemand,
        clock.clone(),
    );
    let order_violations = Arc::new(AtomicU64::new(0));
    let count = Arc::new(AtomicU64::new(0));
    let v2 = order_violations.clone();
    let c2 = count.clone();
    let sink = spawn_sink("s", rx, clock, move |t, _| {
        static LAST: AtomicU64 = AtomicU64::new(0);
        let prev = LAST.swap(t.ts.as_micros(), Ordering::SeqCst);
        if t.ts.as_micros() < prev {
            v2.fetch_add(1, Ordering::SeqCst);
        }
        c2.fetch_add(1, Ordering::SeqCst);
    });

    // Two concurrent producers at different paces.
    let pa = {
        let s = src_a.clone();
        std::thread::spawn(move || {
            for i in 0..200i64 {
                s.push_row(vec![Value::Int(i)]).unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };
    let pb = {
        let s = src_b.clone();
        std::thread::spawn(move || {
            for i in 0..20i64 {
                s.push_row(vec![Value::Int(1_000 + i)]).unwrap();
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };
    pa.join().unwrap();
    pb.join().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    src_a.close();
    src_b.close();
    union.join().unwrap();
    sink.join().unwrap();

    assert_eq!(
        order_violations.load(Ordering::SeqCst),
        0,
        "sink saw disorder"
    );
    assert_eq!(count.load(Ordering::SeqCst), 220, "every tuple delivered");
}

#[test]
fn rt_shutdown_drains_and_joins_cleanly() {
    let rig = Fig4Rt::start(RtStrategy::OnDemand, None);
    for i in 0..10 {
        rig.fast.push_row(vec![Value::Int(i)]).unwrap();
    }
    // Closing both sources lets disconnects cascade; shutdown must not hang
    // and everything pushed must come out (closed peers stop blocking the
    // merge).
    std::thread::sleep(Duration::from_millis(30));
    rig.slow.close();
    std::thread::sleep(Duration::from_millis(30));
    let delivered_before_close = rig.metrics.delivered();
    rig.fast.close();
    // shutdown() joins every thread.
    let metrics = rig.metrics.clone();
    rig.shutdown();
    assert!(
        metrics.delivered() >= delivered_before_close,
        "draining never loses tuples"
    );
    assert_eq!(metrics.delivered(), 10, "all tuples drained on shutdown");
}

#[test]
fn rt_heartbeats_bound_latency() {
    let rig = Fig4Rt::start(
        RtStrategy::NoEts {
            poll: Duration::from_millis(1),
        },
        Some(Duration::from_millis(5)),
    );
    let t0 = std::time::Instant::now();
    for i in 0..30 {
        rig.fast.push_row(vec![Value::Int(i)]).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    // Wait for heartbeats to flush the tail.
    while rig.metrics.delivered() < 30 && t0.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(rig.metrics.delivered(), 30);
    let p99 = rig.metrics.summary().p99_ms;
    assert!(p99 < 100.0, "heartbeat-bounded latency, p99 {p99} ms");
    rig.shutdown();
}

#[test]
fn rt_three_way_union_merges_in_order() {
    let clock = WallClock::new();
    let mut sources = Vec::new();
    let mut inputs = Vec::new();
    for name in ["a", "b", "c"] {
        let (s, rx) = RtSource::new(name, TimestampKind::Internal, clock.clone(), None);
        inputs.push((rx, s.clone()));
        sources.push(s);
    }
    let (tx, rx) = crossbeam::channel::unbounded();
    let union = spawn_union("u3", inputs, tx, RtStrategy::OnDemand, clock.clone());
    let seen = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let v2 = violations.clone();
    let sink = spawn_sink("s", rx, clock, move |t, _| {
        static LAST3: AtomicU64 = AtomicU64::new(0);
        let prev = LAST3.swap(t.ts.as_micros(), Ordering::SeqCst);
        if t.ts.as_micros() < prev {
            v2.fetch_add(1, Ordering::SeqCst);
        }
        s2.fetch_add(1, Ordering::SeqCst);
    });

    // Three producers with very different paces.
    let handles: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let s = s.clone();
            std::thread::spawn(move || {
                let (count, pace_us) = match k {
                    0 => (100, 200u64),
                    1 => (30, 900),
                    _ => (5, 6_000),
                };
                for i in 0..count {
                    s.push_row(vec![Value::Int(i)]).unwrap();
                    std::thread::sleep(Duration::from_micros(pace_us));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    for s in &sources {
        s.close();
    }
    union.join().unwrap();
    sink.join().unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 135);
    assert_eq!(violations.load(Ordering::SeqCst), 0);
}

#[test]
fn rt_window_join_matches_under_on_demand_ets() {
    let clock = WallClock::new();
    let (src_a, rx_a) = RtSource::new("trades", TimestampKind::Internal, clock.clone(), None);
    let (src_b, rx_b) = RtSource::new("quotes", TimestampKind::Internal, clock.clone(), None);
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = spawn_window_join(
        "j",
        [(rx_a, src_a.clone()), (rx_b, src_b.clone())],
        tx,
        Duration::from_millis(100),
        Some((0, 0)),
        RtStrategy::OnDemand,
    );
    let results = Arc::new(AtomicU64::new(0));
    let worst_us = Arc::new(AtomicU64::new(0));
    let r2 = results.clone();
    let w2 = worst_us.clone();
    let sink = spawn_sink("s", rx, clock, move |t, now| {
        r2.fetch_add(1, Ordering::SeqCst);
        w2.fetch_max(now.duration_since(t.entry).as_micros(), Ordering::SeqCst);
    });

    // Quotes (sparse) then trades (frequent) on overlapping keys.
    src_b.push_row(vec![Value::Int(7), Value::Int(99)]).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    for i in 0..20i64 {
        // Key 7 every 4th trade; the rest miss.
        let key = if i % 4 == 0 { 7 } else { 1000 + i };
        src_a
            .push_row(vec![Value::Int(key), Value::Int(i)])
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(60));
    let matched = results.load(Ordering::SeqCst);
    let worst = worst_us.load(Ordering::SeqCst);
    src_a.close();
    src_b.close();
    join.join().unwrap();
    sink.join().unwrap();

    // Trades at 0,4,8,…,16 within the 100 ms window of the quote → up to 5;
    // at least the early ones must match and arrive promptly.
    assert!(matched >= 3, "matched {matched}");
    assert!(
        worst < 50_000,
        "join results delivered at ms-scale latency, worst {worst} µs"
    );
    assert!(
        src_b.ets_generated() > 0,
        "the sparse side answered ETS requests"
    );
}

#[test]
fn rt_window_join_stalls_without_ets() {
    let clock = WallClock::new();
    let (src_a, rx_a) = RtSource::new("a", TimestampKind::Internal, clock.clone(), None);
    let (src_b, rx_b) = RtSource::new("b", TimestampKind::Internal, clock.clone(), None);
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = spawn_window_join(
        "j",
        [(rx_a, src_a.clone()), (rx_b, src_b.clone())],
        tx,
        Duration::from_millis(100),
        None,
        RtStrategy::NoEts {
            poll: Duration::from_millis(2),
        },
    );
    let results = Arc::new(AtomicU64::new(0));
    let r2 = results.clone();
    let sink = spawn_sink("s", rx, clock, move |_, _| {
        r2.fetch_add(1, Ordering::SeqCst);
    });
    // b speaks once, then goes silent; later a-tuples cannot probe.
    src_b.push_row(vec![Value::Int(1)]).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    for _ in 0..5 {
        src_a.push_row(vec![Value::Int(1)]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(
        results.load(Ordering::SeqCst),
        0,
        "a-probes blocked: b's register is stuck behind them"
    );
    src_a.close();
    src_b.close();
    join.join().unwrap();
    sink.join().unwrap();
    // EOS drains the backlog: the five cross-pairs appear.
    assert!(results.load(Ordering::SeqCst) >= 5);
}

#[test]
fn rt_latent_restamps_monotonically() {
    let clock = WallClock::new();
    let (src_a, rx_a) = RtSource::new("a", TimestampKind::Latent, clock.clone(), None);
    let (src_b, rx_b) = RtSource::new("b", TimestampKind::Latent, clock.clone(), None);
    let (tx, rx) = crossbeam::channel::unbounded();
    let union = spawn_union2(
        "u",
        [(rx_a, src_a.clone()), (rx_b, src_b.clone())],
        tx,
        RtStrategy::Latent,
        clock.clone(),
    );
    let stamps = Arc::new(parking_lot::Mutex::new(Vec::<Timestamp>::new()));
    let s2 = stamps.clone();
    let sink = spawn_sink("s", rx, clock, move |t, _| {
        s2.lock().push(t.ts);
    });
    for i in 0..50i64 {
        if i % 2 == 0 {
            src_a.push_row(vec![Value::Int(i)]).unwrap();
        } else {
            src_b.push_row(vec![Value::Int(i)]).unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    src_a.close();
    src_b.close();
    union.join().unwrap();
    sink.join().unwrap();
    let stamps = stamps.lock();
    assert_eq!(stamps.len(), 50);
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "monotone restamping"
    );
}
