//! Multi-component graphs: the paper's §3 notes "a DSMS query graph can
//! have several connected components, where each component is a DAG". One
//! executor instance must serve disjoint pipelines fairly, including ETS
//! generation per component.

use std::sync::{Arc, Mutex};

use millstream_core::prelude::*;

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

/// Builds one graph holding two disjoint components:
///   component 1: S1, S2 → ∪ → sink1
///   component 2: S3 → σ → sink2
fn build(policy: EtsPolicy) -> (Executor, [SourceId; 3], Out, Out) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("S2", schema.clone(), TimestampKind::Internal);
    let s3 = b.source("S3", schema.clone(), TimestampKind::Internal);

    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Source(s1), Input::Source(s2)],
        )
        .unwrap();
    let out1 = Out::default();
    b.operator(
        Box::new(Sink::new("sink1", schema.clone(), out1.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();

    let f = b
        .operator(
            Box::new(Filter::new(
                "σ",
                schema.clone(),
                Expr::col(0).ge(Expr::lit(0)),
            )),
            vec![Input::Source(s3)],
        )
        .unwrap();
    let out2 = Out::default();
    b.operator(
        Box::new(Sink::new("sink2", schema, out2.clone())),
        vec![Input::Op(f)],
    )
    .unwrap();

    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        policy,
    );
    (exec, [s1, s2, s3], out1, out2)
}

fn push(exec: &mut Executor, src: SourceId, ms: u64, v: i64) {
    exec.clock().advance_to(Timestamp::from_millis(ms));
    let ts = exec.clock().now();
    exec.ingest(src, Tuple::data(ts, vec![Value::Int(v)]))
        .unwrap();
    exec.run_until_quiescent(100_000).unwrap();
}

#[test]
fn both_components_make_progress() {
    let (mut exec, [s1, _s2, s3], out1, out2) = build(EtsPolicy::on_demand());
    for i in 0..30 {
        push(&mut exec, s1, 10 * i, i as i64);
        push(&mut exec, s3, 10 * i + 5, 100 + i as i64);
    }
    assert_eq!(
        out1.0.lock().unwrap().len(),
        30,
        "union component drains via ETS"
    );
    assert_eq!(out2.0.lock().unwrap().len(), 30, "filter component drains");
}

#[test]
fn one_blocked_component_does_not_stall_the_other() {
    // Without ETS the union component blocks (S2 silent); the independent
    // filter component must stay live.
    let (mut exec, [s1, _s2, s3], out1, out2) = build(EtsPolicy::None);
    for i in 0..30 {
        push(&mut exec, s1, 10 * i, i as i64);
        push(&mut exec, s3, 10 * i + 5, 100 + i as i64);
    }
    assert_eq!(out1.0.lock().unwrap().len(), 0, "union blocked on S2");
    assert_eq!(
        out2.0.lock().unwrap().len(),
        30,
        "filter component unaffected"
    );
    assert!(exec.graph().tracker().data_total() >= 30);
}

#[test]
fn ets_budget_is_tracked_per_source() {
    let (mut exec, [s1, _s2, s3], _out1, _out2) = build(EtsPolicy::on_demand());
    push(&mut exec, s1, 10, 1);
    push(&mut exec, s3, 20, 2);
    // ETS is generated only where starvation exists: on S2 (the union's
    // silent input), and possibly S1 for the residual punctuation — but
    // never on S3, whose component has no IWP operator.
    let g = exec.graph();
    let s3_state = g.source(s3);
    assert_eq!(s3_state.ets_generated, 0, "no ETS on the filter-only path");
}

#[test]
fn round_robin_serves_both_components_with_ets() {
    // Two components, one with a blocked union: under round-robin the
    // starvation fallback must find the union's silent source and answer
    // with an ETS even though other starved nodes come first in id order.
    let (mut exec, [s1, _s2, s3], out1, out2) = build(EtsPolicy::on_demand());
    take_mut(&mut exec, |e| e.with_sched_policy(SchedPolicy::RoundRobin));
    for i in 0..20 {
        push(&mut exec, s1, 10 * i, i as i64);
        push(&mut exec, s3, 10 * i + 5, 100 + i as i64);
    }
    assert_eq!(
        out1.0.lock().unwrap().len(),
        20,
        "union branch drains under RR"
    );
    assert_eq!(
        out2.0.lock().unwrap().len(),
        20,
        "filter branch drains under RR"
    );
}

/// In-place by-value transform (the closure must not panic).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[test]
fn profile_covers_both_components() {
    let (mut exec, [s1, _s2, s3], _out1, _out2) = build(EtsPolicy::on_demand());
    push(&mut exec, s1, 10, 1);
    push(&mut exec, s3, 20, 2);
    let names: Vec<&str> = exec
        .profile()
        .iter()
        .filter(|p| p.steps > 0)
        .map(|p| p.name.as_str())
        .collect();
    assert!(names.contains(&"∪"), "profiled {names:?}");
    assert!(names.contains(&"σ"), "profiled {names:?}");
    assert!(names.contains(&"sink1"), "profiled {names:?}");
    assert!(names.contains(&"sink2"), "profiled {names:?}");
}
