//! End-to-end property test of the language path: a random `SELECT …
//! WHERE` query over random tuples, executed through
//! parse → plan → executor, must agree with directly evaluating the WHERE
//! predicate on each row (the engine adds timeliness, never changes
//! results).

use proptest::prelude::*;

use millstream_core::QueryRunner;
use millstream_query::ast::{Projection, Stmt};
use millstream_query::parse_program;
use millstream_types::{Expr, Value};

/// A random comparison predicate over columns a (int) and b (int):
/// `<col> <op> <constant>` optionally conjoined/disjoined with another.
#[derive(Debug, Clone)]
struct Pred {
    text: String,
    eval: fn(i64, i64, i64, i64) -> bool,
    k1: i64,
    k2: i64,
}

fn atom_text(col: &str, op: &str, k: i64) -> String {
    format!("{col} {op} {k}")
}

fn predicate() -> impl Strategy<Value = Pred> {
    // Enumerate a family of predicate shapes with random constants.
    (0usize..8, -50i64..50, -50i64..50).prop_map(|(shape, k1, k2)| match shape {
        0 => Pred {
            text: atom_text("a", "<", k1),
            eval: |a, _b, k1, _| a < k1,
            k1,
            k2,
        },
        1 => Pred {
            text: atom_text("a", ">=", k1),
            eval: |a, _b, k1, _| a >= k1,
            k1,
            k2,
        },
        2 => Pred {
            text: atom_text("b", "=", k1),
            eval: |_a, b, k1, _| b == k1,
            k1,
            k2,
        },
        3 => Pred {
            text: format!(
                "{} AND {}",
                atom_text("a", "<", k1),
                atom_text("b", ">", k2)
            ),
            eval: |a, b, k1, k2| a < k1 && b > k2,
            k1,
            k2,
        },
        4 => Pred {
            text: format!(
                "{} OR {}",
                atom_text("a", ">", k1),
                atom_text("b", "<=", k2)
            ),
            eval: |a, b, k1, k2| a > k1 || b <= k2,
            k1,
            k2,
        },
        5 => Pred {
            text: format!("NOT ({})", atom_text("a", "=", k1)),
            eval: |a, _b, k1, _| a != k1,
            k1,
            k2,
        },
        6 => Pred {
            text: format!("a + b > {k1}"),
            eval: |a, b, k1, _| a + b > k1,
            k1,
            k2,
        },
        _ => Pred {
            text: format!("a * 2 <> b + {k2}"),
            eval: |a, b, _, k2| a * 2 != b + k2,
            k1,
            k2,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn planned_where_agrees_with_direct_evaluation(
        pred in predicate(),
        rows in prop::collection::vec((-50i64..50, -50i64..50), 0..40),
    ) {
        let program = format!(
            "CREATE STREAM s (a INT, b INT);
             CREATE STREAM t (a INT, b INT);
             SELECT a, b FROM s WHERE {p}
             UNION
             SELECT a, b FROM t WHERE {p};",
            p = pred.text
        );
        let mut q = QueryRunner::new(&program)
            .unwrap_or_else(|e| panic!("`{program}` failed to plan: {e}"));
        let mut expected = Vec::new();
        for (i, &(a, b)) in rows.iter().enumerate() {
            let stream = if i % 3 == 0 { "t" } else { "s" };
            q.push(
                stream,
                1_000 * (i as u64 + 1),
                vec![Value::Int(a), Value::Int(b)],
            )
            .unwrap();
            if (pred.eval)(a, b, pred.k1, pred.k2) {
                expected.push((a, b));
            }
        }
        let out = q.finish().unwrap();
        let got: Vec<(i64, i64)> = out
            .iter()
            .map(|t| {
                let r = t.values().unwrap();
                (r[0].as_int().unwrap(), r[1].as_int().unwrap())
            })
            .collect();
        // Arrival order == timestamp order == output order here.
        prop_assert_eq!(got, expected, "program `{}`", program);
    }

    /// Any parsed-and-planned filter expression also passes the
    /// expression-level type checker against the stream schema.
    #[test]
    fn planned_filters_typecheck(pred in predicate()) {
        let program = format!(
            "CREATE STREAM s (a INT, b INT); SELECT a FROM s WHERE {};",
            pred.text
        );
        let stmts = parse_program(&program).unwrap();
        let Stmt::Query(q) = &stmts[1] else { panic!("expected query") };
        prop_assert!(q.branches[0].filter.is_some());
        prop_assert!(matches!(q.branches[0].projection, Projection::Items(_)));
        // Planning performs the type check; it must succeed.
        let planned = millstream_query::plan_program(
            &program,
            millstream_core::ops::VecCollector::default(),
        );
        prop_assert!(planned.is_ok());
        let _ = Expr::lit(0); // keep the types crate linked in this test
    }
}
