//! Thread-per-operator real-time pipeline stages.
//!
//! Each stage is a thread connected by crossbeam channels. The union stage
//! implements the paper's IWP logic against wall-clock time: TSM registers
//! per input, the relaxed `more` condition, and — under
//! [`RtStrategy::OnDemand`] — an **ETS request to the starving source**
//! whenever the merge is blocked, the real-time analogue of
//! backtrack-to-source. Shutdown is cooperative: closing a source
//! disconnects its channel, which cascades down the pipeline.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Select, Sender, TryRecvError};

use millstream_types::{Timestamp, Tuple, Value};

use crate::clock::WallClock;
use crate::stream::RtSource;

/// Timestamp-management strategy of a real-time union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtStrategy {
    /// No ETS: when starved, poll the silent input at the given period
    /// (experiment line A; the poll period only bounds shutdown latency).
    NoEts {
        /// Poll period while idle-waiting.
        poll: Duration,
    },
    /// On-demand ETS: ask the starving source for an enabling timestamp
    /// immediately (line C).
    OnDemand,
    /// Latent timestamps: forward immediately, restamping on the way out
    /// (line D).
    Latent,
}

/// Spawns a filter stage: data tuples failing `predicate` are dropped,
/// punctuation passes through.
pub fn spawn_filter<F>(
    name: &str,
    rx: Receiver<Tuple>,
    tx: Sender<Tuple>,
    predicate: F,
) -> JoinHandle<()>
where
    F: Fn(&[Value]) -> bool + Send + 'static,
{
    spawn_filter_batched(name, rx, tx, predicate, 1)
}

/// Spawns a filter stage that drains up to `batch` queued tuples per
/// channel wake — the wall-clock analogue of the executor's Encore batch
/// (`ExecOptions::encore_batch`): one blocking receive amortizes over a
/// run of queued tuples instead of paying a wake per tuple. FIFO order is
/// preserved, so the output stream is identical to the per-tuple stage.
pub fn spawn_filter_batched<F>(
    name: &str,
    rx: Receiver<Tuple>,
    tx: Sender<Tuple>,
    predicate: F,
    batch: usize,
) -> JoinHandle<()>
where
    F: Fn(&[Value]) -> bool + Send + 'static,
{
    let batch = batch.max(1);
    std::thread::Builder::new()
        .name(format!("ms-filter-{name}"))
        .spawn(move || {
            let mut run: Vec<Tuple> = Vec::with_capacity(batch);
            'outer: while let Ok(first) = rx.recv() {
                run.push(first);
                while run.len() < batch {
                    match rx.try_recv() {
                        Ok(t) => run.push(t),
                        Err(_) => break,
                    }
                }
                for tuple in run.drain(..) {
                    let keep = match tuple.values() {
                        None => true,
                        Some(row) => predicate(row),
                    };
                    if keep && tx.send(tuple).is_err() {
                        break 'outer;
                    }
                }
            }
            // Sender dropped here: disconnect cascades downstream.
        })
        .expect("spawn filter thread")
}

/// Spawns a map stage transforming data rows; punctuation passes through.
pub fn spawn_map<F>(name: &str, rx: Receiver<Tuple>, tx: Sender<Tuple>, f: F) -> JoinHandle<()>
where
    F: Fn(&[Value]) -> Vec<Value> + Send + 'static,
{
    spawn_map_batched(name, rx, tx, f, 1)
}

/// Spawns a map stage draining up to `batch` queued tuples per channel
/// wake; see [`spawn_filter_batched`] for the batching rationale.
pub fn spawn_map_batched<F>(
    name: &str,
    rx: Receiver<Tuple>,
    tx: Sender<Tuple>,
    f: F,
    batch: usize,
) -> JoinHandle<()>
where
    F: Fn(&[Value]) -> Vec<Value> + Send + 'static,
{
    let batch = batch.max(1);
    std::thread::Builder::new()
        .name(format!("ms-map-{name}"))
        .spawn(move || {
            let mut run: Vec<Tuple> = Vec::with_capacity(batch);
            'outer: while let Ok(first) = rx.recv() {
                run.push(first);
                while run.len() < batch {
                    match rx.try_recv() {
                        Ok(t) => run.push(t),
                        Err(_) => break,
                    }
                }
                for tuple in run.drain(..) {
                    let out = match tuple.values() {
                        None => tuple,
                        Some(row) => tuple.with_values(f(row)),
                    };
                    if tx.send(out).is_err() {
                        break 'outer;
                    }
                }
            }
        })
        .expect("spawn map thread")
}

/// Spawns a sink stage: eliminates punctuation and hands each data tuple
/// with its delivery instant to `deliver`.
pub fn spawn_sink<F>(
    name: &str,
    rx: Receiver<Tuple>,
    clock: WallClock,
    mut deliver: F,
) -> JoinHandle<()>
where
    F: FnMut(Tuple, Timestamp) + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("ms-sink-{name}"))
        .spawn(move || {
            while let Ok(tuple) = rx.recv() {
                if tuple.is_data() {
                    deliver(tuple, clock.now());
                }
            }
        })
        .expect("spawn sink thread")
}

/// Spawns a heartbeat thread pushing periodic punctuation into `source`
/// (experiment line B). Stops when the source closes or its consumer
/// disconnects.
pub fn spawn_heartbeat(source: Arc<RtSource>, period: Duration) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ms-heartbeat-{}", source.name()))
        .spawn(move || loop {
            std::thread::sleep(period);
            if source.push_heartbeat().is_err() {
                break;
            }
        })
        .expect("spawn heartbeat thread")
}

/// Per-input state of the real-time union.
struct UnionInput {
    rx: Receiver<Tuple>,
    source: Arc<RtSource>,
    head: Option<Tuple>,
    /// TSM register: last observed timestamp (survives empty channels).
    tsm: Option<Timestamp>,
    open: bool,
}

impl UnionInput {
    /// Non-blocking refill of the head slot.
    fn refill(&mut self) {
        if self.head.is_some() || !self.open {
            return;
        }
        match self.rx.try_recv() {
            Ok(t) => {
                self.tsm = Some(self.tsm.map_or(t.ts, |r| r.max(t.ts)));
                self.head = Some(t);
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => self.open = false,
        }
    }

    /// The effective lower bound for future tuples on this input.
    /// `None` means unknown (never heard from an open input).
    fn register(&self) -> Option<Timestamp> {
        if let Some(h) = &self.head {
            return Some(h.ts);
        }
        if !self.open {
            // Closed input: no future tuples; never the minimum.
            return Some(Timestamp::MAX);
        }
        self.tsm
    }
}

/// Spawns a 2-input merging union with the given strategy (the common
/// case; see [`spawn_union`] for arbitrary arity).
pub fn spawn_union2(
    name: &str,
    inputs: [(Receiver<Tuple>, Arc<RtSource>); 2],
    tx: Sender<Tuple>,
    strategy: RtStrategy,
    clock: WallClock,
) -> JoinHandle<()> {
    spawn_union(name, inputs.into(), tx, strategy, clock)
}

/// Spawns an n-input merging union with the given strategy.
// Index-based loops are deliberate throughout the merge: taking `&mut
// ins[i]` by index sidesteps simultaneous-borrow issues with `tx`/`regs`.
#[allow(clippy::needless_range_loop)]
pub fn spawn_union(
    name: &str,
    inputs: Vec<(Receiver<Tuple>, Arc<RtSource>)>,
    tx: Sender<Tuple>,
    strategy: RtStrategy,
    clock: WallClock,
) -> JoinHandle<()> {
    assert!(inputs.len() >= 2, "union needs at least two inputs");
    std::thread::Builder::new()
        .name(format!("ms-union-{name}"))
        .spawn(move || {
            let mut ins: Vec<UnionInput> = inputs
                .into_iter()
                .map(|(rx, source)| UnionInput {
                    rx,
                    source,
                    head: None,
                    tsm: None,
                    open: true,
                })
                .collect();
            let n = ins.len();
            let mut emitted_hw: Option<Timestamp> = None;

            'outer: loop {
                for input in ins.iter_mut() {
                    input.refill();
                }

                let any_head = ins.iter().any(|i| i.head.is_some());
                let any_open = ins.iter().any(|i| i.open);
                if !any_head && !any_open {
                    break; // drained and closed; tx drops, cascading EOS
                }

                if strategy == RtStrategy::Latent {
                    if any_head {
                        for i in 0..n {
                            if let Some(mut t) = ins[i].head.take() {
                                if t.is_punctuation() {
                                    continue; // meaningless on latent streams
                                }
                                let stamp = emitted_hw.map_or(clock.now(), |h| clock.now().max(h));
                                t.ts = stamp;
                                emitted_hw = Some(stamp);
                                if tx.send(t).is_err() {
                                    break 'outer;
                                }
                            }
                        }
                    } else {
                        block_until_any(&mut ins);
                    }
                    continue;
                }

                if !any_head {
                    // Nothing pending anywhere: sleep until an input speaks
                    // instead of spinning (or spamming ETS requests).
                    block_until_any(&mut ins);
                    continue;
                }

                // Merge by τ = min over registers (relaxed `more`).
                let regs: Vec<Option<Timestamp>> = ins.iter().map(|i| i.register()).collect();
                let tau = regs
                    .iter()
                    .try_fold(Timestamp::MAX, |acc, r| r.map(|v| acc.min(v)));
                let witness = tau.and_then(|tau| {
                    // Prefer a data head at τ over punctuation.
                    let mut punct = None;
                    for i in 0..n {
                        if let Some(h) = &ins[i].head {
                            if h.ts == tau {
                                if h.is_data() {
                                    return Some(i);
                                }
                                punct.get_or_insert(i);
                            }
                        }
                    }
                    punct
                });

                if let Some(i) = witness {
                    let t = ins[i].head.take().expect("witness head");
                    if t.is_punctuation() {
                        if emitted_hw.is_some_and(|h| t.ts <= h) {
                            continue; // duplicate ETS adds nothing
                        }
                        emitted_hw = Some(t.ts);
                    } else {
                        emitted_hw = Some(emitted_hw.map_or(t.ts, |h| h.max(t.ts)));
                    }
                    if tx.send(t).is_err() {
                        break;
                    }
                    continue;
                }

                // Starved. Identify the blocking input: the open one whose
                // register is unset or equals τ while its head is empty.
                let starving = (0..n)
                    .filter(|&i| ins[i].open && ins[i].head.is_none())
                    .min_by_key(|&i| regs[i].unwrap_or(Timestamp::ZERO));
                let Some(j) = starving else {
                    // Heads exist but none at τ with both registers known —
                    // impossible for open inputs; loop to re-evaluate.
                    continue;
                };

                // Data is pending if some head holds it — or if it is queued
                // in a channel behind a punctuation head (invisible to the
                // heads alone). Lone punctuation heads pend nothing
                // user-visible, and requesting for them would ping-pong ETS
                // between idle sources forever.
                let has_pending_data = ins
                    .iter()
                    .any(|i| i.head.as_ref().is_some_and(|h| h.is_data()) || !i.rx.is_empty());
                let wait = match strategy {
                    RtStrategy::OnDemand => {
                        if has_pending_data || ins[j].tsm.is_none() {
                            // The backtrack-to-source moment: ask for an ETS.
                            let _ = ins[j].source.request_ets();
                        }
                        Duration::from_millis(1)
                    }
                    RtStrategy::NoEts { poll } => poll,
                    RtStrategy::Latent => unreachable!("handled above"),
                };
                match ins[j].rx.recv_timeout(wait) {
                    Ok(t) => {
                        ins[j].tsm = Some(ins[j].tsm.map_or(t.ts, |r| r.max(t.ts)));
                        ins[j].head = Some(t);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => ins[j].open = false,
                }
            }
        })
        .expect("spawn union thread")
}

/// Spawns a 2-input symmetric window join (Kang et al. semantics, as in
/// `millstream-ops`): a data tuple at τ probes the opposite window, joins
/// on the optional equality `key`, and slides into its own window; a
/// punctuation witness expires both windows and is forwarded. Under
/// [`RtStrategy::OnDemand`], starvation on one input triggers an ETS
/// request to that side's source — the wall-clock backtrack-to-source.
/// Latent mode is rejected: window joins need real timestamps.
pub fn spawn_window_join(
    name: &str,
    inputs: [(Receiver<Tuple>, Arc<RtSource>); 2],
    tx: Sender<Tuple>,
    window: Duration,
    key: Option<(usize, usize)>,
    strategy: RtStrategy,
) -> JoinHandle<()> {
    assert!(
        strategy != RtStrategy::Latent,
        "window joins require real timestamps"
    );
    let [a, b] = inputs;
    std::thread::Builder::new()
        .name(format!("ms-join-{name}"))
        .spawn(move || {
            let mut ins = [
                UnionInput {
                    rx: a.0,
                    source: a.1,
                    head: None,
                    tsm: None,
                    open: true,
                },
                UnionInput {
                    rx: b.0,
                    source: b.1,
                    head: None,
                    tsm: None,
                    open: true,
                },
            ];
            let window_us = window.as_micros() as u64;
            let mut stores: [std::collections::VecDeque<Tuple>; 2] = Default::default();
            let mut emitted_hw: Option<Timestamp> = None;

            let expire = |store: &mut std::collections::VecDeque<Tuple>, ts: Timestamp| {
                let floor = ts.saturating_sub(millstream_types::TimeDelta::from_micros(window_us));
                while store.front().is_some_and(|t| t.ts < floor) {
                    store.pop_front();
                }
            };

            loop {
                for input in ins.iter_mut() {
                    input.refill();
                }
                let any_head = ins.iter().any(|i| i.head.is_some());
                let any_open = ins.iter().any(|i| i.open);
                if !any_head && !any_open {
                    break;
                }
                if !any_head {
                    block_until_any(&mut ins);
                    continue;
                }

                let regs = [ins[0].register(), ins[1].register()];
                let tau = match (regs[0], regs[1]) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    _ => None,
                };
                // Prefer a data witness at τ.
                let witness = tau.and_then(|tau| {
                    let mut punct = None;
                    for (i, input) in ins.iter().enumerate() {
                        if let Some(h) = &input.head {
                            if h.ts == tau {
                                if h.is_data() {
                                    return Some(i);
                                }
                                punct.get_or_insert(i);
                            }
                        }
                    }
                    punct
                });

                if let Some(i) = witness {
                    let t = ins[i].head.take().expect("witness head");
                    if t.is_punctuation() {
                        expire(&mut stores[0], t.ts);
                        expire(&mut stores[1], t.ts);
                        if emitted_hw.is_none_or(|h| t.ts > h) {
                            emitted_hw = Some(t.ts);
                            if tx.send(t).is_err() {
                                break;
                            }
                        }
                        continue;
                    }
                    // Data probe: expire the opposite window, join, slide in.
                    let other = 1 - i;
                    expire(&mut stores[other], t.ts);
                    let mut out = Vec::new();
                    for s in &stores[other] {
                        let matches = match key {
                            None => true,
                            Some((ka, kb)) => {
                                let (av, bv) = if i == 0 {
                                    (&t.values_expect()[ka], &s.values_expect()[kb])
                                } else {
                                    (&s.values_expect()[ka], &t.values_expect()[kb])
                                };
                                !av.is_null() && av == bv
                            }
                        };
                        if matches {
                            let mut j = if i == 0 {
                                Tuple::join(&t, s)
                            } else {
                                Tuple::join(s, &t)
                            };
                            j.ts = t.ts;
                            j.entry = t.entry;
                            out.push(j);
                        }
                    }
                    let mut hung_up = false;
                    for j in out {
                        emitted_hw = Some(emitted_hw.map_or(j.ts, |h| h.max(j.ts)));
                        if tx.send(j).is_err() {
                            hung_up = true;
                            break;
                        }
                    }
                    if hung_up {
                        break;
                    }
                    stores[i].push_back(t);
                    continue;
                }

                // Starved on the τ-bounding open input.
                let starving = (0..2)
                    .filter(|&i| ins[i].open && ins[i].head.is_none())
                    .min_by_key(|&i| regs[i].unwrap_or(Timestamp::ZERO));
                let Some(j) = starving else {
                    continue;
                };
                // See the union stage for the pending-data rationale.
                let has_pending_data = ins
                    .iter()
                    .any(|i| i.head.as_ref().is_some_and(|h| h.is_data()) || !i.rx.is_empty());
                let wait = match strategy {
                    RtStrategy::OnDemand => {
                        if has_pending_data || ins[j].tsm.is_none() {
                            let _ = ins[j].source.request_ets();
                        }
                        Duration::from_millis(1)
                    }
                    RtStrategy::NoEts { poll } => poll,
                    RtStrategy::Latent => unreachable!("rejected at spawn"),
                };
                match ins[j].rx.recv_timeout(wait) {
                    Ok(t) => {
                        ins[j].tsm = Some(ins[j].tsm.map_or(t.ts, |r| r.max(t.ts)));
                        ins[j].head = Some(t);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => ins[j].open = false,
                }
            }
        })
        .expect("spawn join thread")
}

/// Blocks until any open input has a tuple; returns false if all inputs
/// disconnected.
fn block_until_any(ins: &mut [UnionInput]) -> bool {
    // Clone the receivers so the Select's borrows do not pin `ins`.
    let candidates: Vec<(usize, Receiver<Tuple>)> = ins
        .iter()
        .enumerate()
        .filter(|(_, input)| input.open && input.head.is_none())
        .map(|(i, input)| (i, input.rx.clone()))
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let mut sel = Select::new();
    for (_, rx) in &candidates {
        sel.recv(rx);
    }
    match sel.select_timeout(Duration::from_millis(10)) {
        Ok(op) => {
            let (i, rx) = &candidates[op.index()];
            match op.recv(rx) {
                Ok(t) => {
                    ins[*i].tsm = Some(ins[*i].tsm.map_or(t.ts, |r| r.max(t.ts)));
                    ins[*i].head = Some(t);
                    true
                }
                Err(_) => {
                    ins[*i].open = false;
                    false
                }
            }
        }
        Err(_) => false,
    }
}
