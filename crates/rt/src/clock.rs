//! Wall-clock time for the real-time engine.

use std::sync::Arc;
use std::time::Instant;

use millstream_types::Timestamp;

/// A shared wall clock measuring microseconds since engine start.
///
/// The real-time engine maps `std::time::Instant` onto the same
/// [`Timestamp`] timeline the simulator uses, so metrics and operators are
/// interchangeable between the two engines.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Arc<Instant>,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// Starts a clock at the current instant.
    pub fn new() -> Self {
        WallClock {
            epoch: Arc::new(Instant::now()),
        }
    }

    /// Microseconds elapsed since the epoch, as a timestamp.
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
        assert!(b.as_micros() >= 2_000);
    }

    #[test]
    fn clones_share_the_epoch() {
        let c = WallClock::new();
        let d = c.clone();
        let a = c.now();
        let b = d.now();
        // Within a few milliseconds of each other.
        assert!(b.duration_since(a).as_micros() < 5_000);
    }
}
