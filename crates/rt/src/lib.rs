//! # millstream-rt
//!
//! A real-time, thread-per-operator stream engine that validates the
//! paper's on-demand ETS mechanism against **wall-clock** time (the
//! simulator in `millstream-sim` validates it on virtual time).
//!
//! Key pieces:
//!
//! * [`RtSource`] — producer handles that stamp internal timestamps inside
//!   the same lock that serializes channel sends, making
//!   [`RtSource::request_ets`] race-free: the on-demand punctuation can
//!   never be undercut by an in-flight data tuple;
//! * [`spawn_union`] / [`spawn_union2`] — the IWP merge with TSM
//!   registers; when starved under [`RtStrategy::OnDemand`] it performs
//!   the paper's backtrack-to-source step by requesting an ETS from the
//!   silent source;
//! * [`spawn_window_join`] — the symmetric window join on threads, same
//!   TSM/ETS discipline;
//! * [`Fig4Rt`] — the paper's experimental pipeline, ready to run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod engine;
mod pipeline;
mod stream;

pub use clock::WallClock;
pub use engine::{Fig4Rt, RtEngine, RtMetrics};
pub use pipeline::{
    spawn_filter, spawn_filter_batched, spawn_heartbeat, spawn_map, spawn_map_batched, spawn_sink,
    spawn_union, spawn_union2, spawn_window_join, RtStrategy,
};
pub use stream::RtSource;
