//! Prebuilt real-time pipelines and run management.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use millstream_metrics::{LatencyRecorder, LatencySummary};
use millstream_types::{TimestampKind, Value};

use crate::clock::WallClock;
use crate::pipeline::{
    spawn_filter_batched, spawn_heartbeat, spawn_sink, spawn_union2, RtStrategy,
};
use crate::stream::RtSource;

/// Thread-safe latency metrics shared with the sink stage.
#[derive(Clone, Default)]
pub struct RtMetrics {
    recorder: Arc<Mutex<LatencyRecorder>>,
    delivered: Arc<AtomicU64>,
}

impl RtMetrics {
    /// A fresh metrics handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivery (called by the sink closure).
    pub fn record(&self, latency: millstream_types::TimeDelta) {
        self.recorder.lock().record(latency);
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of data tuples delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Snapshot summary of the latency population.
    pub fn summary(&self) -> LatencySummary {
        self.recorder.lock().summarize()
    }
}

/// Owns the threads of one running real-time pipeline.
pub struct RtEngine {
    handles: Vec<JoinHandle<()>>,
}

impl RtEngine {
    /// An engine with no threads yet.
    pub fn new() -> Self {
        RtEngine {
            handles: Vec::new(),
        }
    }

    /// Registers a stage thread.
    pub fn add(&mut self, handle: JoinHandle<()>) {
        self.handles.push(handle);
    }

    /// Joins every stage. Call after closing all sources.
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

impl Default for RtEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// A running instance of the paper's Fig. 4 pipeline in real time:
/// two sources → filter each → union → sink.
pub struct Fig4Rt {
    /// The fast stream's producer handle.
    pub fast: Arc<RtSource>,
    /// The slow stream's producer handle.
    pub slow: Arc<RtSource>,
    /// Shared latency metrics (fed by the sink).
    pub metrics: RtMetrics,
    /// The shared wall clock.
    pub clock: WallClock,
    engine: RtEngine,
}

impl Fig4Rt {
    /// Builds and starts the pipeline. `heartbeat` adds a periodic
    /// punctuation thread on the slow stream (line B).
    pub fn start(strategy: RtStrategy, heartbeat: Option<Duration>) -> Fig4Rt {
        Fig4Rt::start_with_batch(strategy, heartbeat, 1)
    }

    /// Like [`Fig4Rt::start`], with the filter stages draining up to
    /// `encore_batch` queued tuples per channel wake (the real-time
    /// analogue of `ExecOptions::encore_batch`; `1` = per-tuple).
    pub fn start_with_batch(
        strategy: RtStrategy,
        heartbeat: Option<Duration>,
        encore_batch: usize,
    ) -> Fig4Rt {
        let clock = WallClock::new();
        let kind = if strategy == RtStrategy::Latent {
            TimestampKind::Latent
        } else {
            TimestampKind::Internal
        };
        let (fast, fast_rx) = RtSource::new("fast", kind, clock.clone(), None);
        let (slow, slow_rx) = RtSource::new("slow", kind, clock.clone(), None);

        let mut engine = RtEngine::new();
        let (f1_tx, f1_rx) = crossbeam::channel::unbounded();
        let (f2_tx, f2_rx) = crossbeam::channel::unbounded();
        // 95% selectivity on a [0, 1000) value column, like the simulator.
        let pass = |row: &[Value]| matches!(row.first(), Some(Value::Int(v)) if *v < 950);
        engine.add(spawn_filter_batched(
            "fast",
            fast_rx,
            f1_tx,
            pass,
            encore_batch,
        ));
        engine.add(spawn_filter_batched(
            "slow",
            slow_rx,
            f2_tx,
            pass,
            encore_batch,
        ));

        let (u_tx, u_rx) = crossbeam::channel::unbounded();
        engine.add(spawn_union2(
            "merge",
            [(f1_rx, fast.clone()), (f2_rx, slow.clone())],
            u_tx,
            strategy,
            clock.clone(),
        ));

        let metrics = RtMetrics::new();
        let sink_metrics = metrics.clone();
        engine.add(spawn_sink("out", u_rx, clock.clone(), move |t, now| {
            sink_metrics.record(now.duration_since(t.entry));
        }));

        if let Some(period) = heartbeat {
            engine.add(spawn_heartbeat(slow.clone(), period));
        }

        Fig4Rt {
            fast,
            slow,
            metrics,
            clock,
            engine,
        }
    }

    /// Closes both sources and joins all stage threads.
    pub fn shutdown(self) {
        self.fast.close();
        self.slow.close();
        self.engine.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_types::TimeDelta;

    /// Pushes `n` fast tuples with small gaps while the slow stream stays
    /// silent, then returns the metrics.
    fn run_fast_only(
        strategy: RtStrategy,
        heartbeat: Option<Duration>,
        n: u64,
    ) -> (u64, LatencySummary) {
        let rig = Fig4Rt::start(strategy, heartbeat);
        for i in 0..n {
            rig.fast
                .push_row(vec![Value::Int((i % 900) as i64)])
                .unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        // Give the pipeline a moment to drain what it can.
        std::thread::sleep(Duration::from_millis(50));
        let delivered = rig.metrics.delivered();
        let summary = rig.metrics.summary();
        rig.shutdown();
        (delivered, summary)
    }

    #[test]
    fn on_demand_delivers_promptly() {
        let (delivered, summary) = run_fast_only(RtStrategy::OnDemand, None, 30);
        assert!(delivered >= 25, "delivered {delivered}");
        assert!(
            summary.mean_ms < 20.0,
            "mean latency {} ms should be small under on-demand ETS",
            summary.mean_ms
        );
    }

    #[test]
    fn no_ets_blocks_until_peer_speaks() {
        let rig = Fig4Rt::start(
            RtStrategy::NoEts {
                poll: Duration::from_millis(5),
            },
            None,
        );
        for i in 0..10 {
            rig.fast.push_row(vec![Value::Int(i)]).unwrap();
        }
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(
            rig.metrics.delivered(),
            0,
            "nothing may be delivered while the slow stream is silent"
        );
        // One slow tuple unblocks the backlog.
        rig.slow.push_row(vec![Value::Int(1)]).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(rig.metrics.delivered() >= 10);
        let summary = rig.metrics.summary();
        assert!(
            summary.mean_ms > 20.0,
            "blocked tuples must show the waiting time, got {} ms",
            summary.mean_ms
        );
        rig.shutdown();
    }

    #[test]
    fn latent_never_waits() {
        let (delivered, summary) = run_fast_only(RtStrategy::Latent, None, 20);
        assert!(delivered >= 18, "delivered {delivered}");
        assert!(summary.mean_ms < 20.0, "mean {} ms", summary.mean_ms);
    }

    #[test]
    fn heartbeats_unblock_line_b() {
        let (delivered, summary) = run_fast_only(
            RtStrategy::NoEts {
                poll: Duration::from_millis(2),
            },
            Some(Duration::from_millis(10)),
            40,
        );
        assert!(delivered >= 30, "delivered {delivered}");
        // Latency is bounded by roughly the heartbeat period.
        assert!(
            summary.mean_ms < 60.0,
            "heartbeats should bound latency, got {} ms",
            summary.mean_ms
        );
    }

    #[test]
    fn output_is_ordered_and_complete_on_shutdown() {
        let rig = Fig4Rt::start(RtStrategy::OnDemand, None);
        // Interleave both producers; counts verify completeness (ordering
        // is covered by the union unit tests and the simulator).
        for i in 0..50 {
            rig.fast.push_row(vec![Value::Int(i % 900)]).unwrap();
            if i % 10 == 0 {
                rig.slow.push_row(vec![Value::Int(i % 900)]).unwrap();
            }
        }
        std::thread::sleep(Duration::from_millis(100));
        let delivered = rig.metrics.delivered();
        assert!(delivered >= 50, "delivered {delivered} of 55");
        rig.shutdown();
    }

    #[test]
    fn ets_rate_is_bounded_by_demand() {
        let rig = Fig4Rt::start(RtStrategy::OnDemand, None);
        for i in 0..20 {
            rig.fast.push_row(vec![Value::Int(i)]).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(50));
        let ets = rig.slow.ets_generated();
        // At least one per starvation wave, but not a flood: far fewer than
        // thousands of polls would produce.
        assert!(ets >= 1, "ets {ets}");
        assert!(ets <= 200, "ets {ets} should be bounded by demand");
        rig.shutdown();
        let _ = TimeDelta::ZERO;
    }
}
