//! Loopback soak: several producer threads drive a real `msq serve`
//! instance over real sockets — with injected disconnects, delayed
//! frames, and retransmitted duplicates — under `MILLSTREAM_CHECK=strict`
//! wire sentinels, and the subscriber's output must be **byte-identical**
//! (frame-encoding equality) to an in-process serial-executor oracle fed
//! the same tuples.
//!
//! The chaos is deterministic: link failures are injected by frame count
//! via [`StreamClient::fail_link_after`], so every run exercises the
//! reconnect → resume → retransmit → server-side dedup path.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use millstream_buffer::CheckMode;
use millstream_exec::{CostModel, EtsPolicy, Executor, VirtualClock};
use millstream_net::{ClientConfig, Frame, Server, ServerConfig, StreamClient, Subscription};
use millstream_ops::SinkCollector;
use millstream_query::plan_program;
use millstream_types::{Timestamp, Tuple, TupleBody, Value};

const STREAMS: usize = 3;
const TUPLES_PER_STREAM: u64 = 120;

const PROGRAM: &str = "\
CREATE STREAM s0 (v INT);
CREATE STREAM s1 (v INT);
CREATE STREAM s2 (v INT);
SELECT v FROM s0 UNION SELECT v FROM s1 UNION SELECT v FROM s2;";

/// Globally distinct, per-stream strictly increasing timestamps, so the
/// IWP union's output order is deterministic and the wire resume contract
/// (strictly increasing data timestamps per producer) holds.
fn ts_of(stream: usize, i: u64) -> u64 {
    (i * STREAMS as u64 + stream as u64 + 1) * 10
}

fn tuple_of(stream: usize, i: u64) -> Tuple {
    Tuple::data(
        Timestamp::from_micros(ts_of(stream, i)),
        vec![Value::Int((stream as i64) * 1_000_000 + i as i64)],
    )
}

/// The oracle's sink: records every data delivery in order.
#[derive(Clone, Default)]
struct VecSink(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for VecSink {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

/// Runs the same program in-process through the serial executor, feeding
/// every tuple in global timestamp order (the order the union's ETS
/// discipline enforces at the output no matter how arrivals interleave).
fn oracle_output() -> Vec<Tuple> {
    let sink = VecSink::default();
    let planned = plan_program(PROGRAM, sink.clone()).expect("plan oracle");
    let mut exec = Executor::new(
        planned.graph,
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    );
    let mut feed: Vec<(usize, u64)> = (0..STREAMS)
        .flat_map(|s| (0..TUPLES_PER_STREAM).map(move |i| (s, i)))
        .collect();
    feed.sort_by_key(|&(s, i)| ts_of(s, i));
    for (s, i) in feed {
        let t = tuple_of(s, i);
        exec.clock().advance_to(t.ts);
        exec.ingest(planned.sources[s].id, t)
            .expect("oracle ingest");
        exec.run_until_quiescent(u64::MAX).expect("oracle run");
    }
    for src in &planned.sources {
        exec.close_source(src.id).expect("oracle close");
    }
    exec.run_until_quiescent(u64::MAX).expect("oracle drain");
    let out = sink.0.lock().unwrap().clone();
    out.into_iter().filter(Tuple::is_data).collect()
}

/// Frame-encoding bytes for a tuple: the strongest equality the wire can
/// express — if these match, a subscriber literally received the same
/// bytes the oracle would have produced.
fn wire_bytes(tuple: &Tuple) -> Vec<u8> {
    Frame::Output {
        tuple: tuple.clone(),
    }
    .encode()
    .expect("encode")
}

#[test]
fn loopback_soak_matches_in_process_oracle() {
    let mut cfg = ServerConfig::new(PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");

    let mut threads = Vec::new();
    for s in 0..STREAMS {
        threads.push(std::thread::spawn(move || {
            let mut cc = ClientConfig::new(addr.to_string(), format!("s{s}"));
            // Small, per-thread-distinct windows keep frames in flight
            // across the injected link failures.
            cc.ack_window = 3 + s;
            let mut client = StreamClient::connect(cc).expect("connect");
            // Two deterministic link severances per producer, at
            // thread-distinct points in the stream.
            client.fail_link_after(10 + 3 * s as u64);
            let mut second_failure = false;
            for i in 0..TUPLES_PER_STREAM {
                if i == TUPLES_PER_STREAM / 2 + s as u64 && !second_failure {
                    second_failure = true;
                    client.fail_link_after(2);
                }
                if i % 40 == 7 {
                    // Delayed frames: a stalled producer must not corrupt
                    // ordering, only slow the union down.
                    std::thread::sleep(Duration::from_millis(3));
                }
                client.send(tuple_of(s, i)).expect("send");
            }
            client.close().expect("close")
        }));
    }
    let reports: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("producer thread"))
        .collect();
    for (s, r) in reports.iter().enumerate() {
        assert_eq!(
            r.sent,
            TUPLES_PER_STREAM + 1,
            "stream s{s}: every tuple plus the close handed to the client"
        );
        assert_eq!(r.acked, r.sent, "stream s{s}: everything acked");
        assert!(
            r.reconnects >= 2,
            "stream s{s}: both injected severances fired: {r:?}"
        );
    }

    // Collect the subscriber's stream: all data rows, then the final mark.
    let total = (STREAMS as u64 * TUPLES_PER_STREAM) as usize;
    let mut got = Vec::new();
    while got.len() < total {
        match sub.next(Duration::from_secs(30)).expect("subscription") {
            Some(t) if t.is_data() => got.push(t),
            Some(_) => {}
            None => panic!("stream ended early: {} of {total} rows", got.len()),
        }
    }
    let report = server.shutdown().expect("shutdown");
    let mut final_puncts = 0;
    while let Some(t) = sub.next(Duration::from_secs(10)).expect("drain") {
        match t.body {
            TupleBody::Punctuation => final_puncts += 1,
            TupleBody::Data(_) => panic!("data after the final drain: {t}"),
        }
    }
    assert!(final_puncts >= 1, "final ETS mark reaches the subscriber");

    // Byte-identical to the oracle: same rows, same order, same encoding.
    let oracle = oracle_output();
    assert_eq!(got.len(), oracle.len(), "row count matches the oracle");
    for (i, (network, local)) in got.iter().zip(&oracle).enumerate() {
        assert_eq!(
            wire_bytes(network),
            wire_bytes(local),
            "row {i}: wire bytes diverge (network {network}, oracle {local})"
        );
    }

    // The chaos actually happened — and the strict wire sentinels saw a
    // clean stream anyway.
    assert_eq!(report.stats.tuples_ingested, total as u64);
    assert_eq!(report.wire_sentinel_violations, 0, "strict sentinels clean");
    let retransmitted: u64 = reports.iter().map(|r| r.retransmitted).sum();
    let resumed: u64 = reports.iter().map(|r| r.resume_skipped).sum();
    assert!(
        retransmitted + resumed + report.stats.duplicates_dropped > 0,
        "the failure injection exercised retransmission: clients {reports:?}, server {:?}",
        report.stats
    );
    assert!(report.ports.iter().all(|p| p.closed), "all sources closed");
    assert_eq!(
        report.stats.delivered, total as u64,
        "every row delivered exactly once"
    );
}
