//! Differential fuzzing as a CI gate.
//!
//! Two layers of coverage:
//!
//! * a fixed deterministic seed range, so every CI run exercises the
//!   generator × policy × scheduler × worker matrix from scratch;
//! * the regression corpus under `fuzz-corpus/*.seeds` — seeds that
//!   once exposed a real bug, replayed forever.
//!
//! Each seed runs the generated graph under strict invariant checking
//! across every execution cell and compares the outputs against the
//! naive single-queue oracle (see `millstream_sim::fuzz_seed`).

use std::path::PathBuf;

use millstream_sim::{describe_seed, fuzz_seed};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz-corpus")
}

/// Parses a `.seeds` file: one decimal seed per line, `#` comments and
/// blank lines ignored.
fn parse_seeds(text: &str) -> Vec<u64> {
    text.lines()
        .map(|line| line.split('#').next().unwrap_or("").trim())
        .filter(|line| !line.is_empty())
        .map(|line| {
            line.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad seed line in corpus: `{line}`"))
        })
        .collect()
}

fn assert_seed_clean(seed: u64) {
    let failures = fuzz_seed(seed);
    assert!(
        failures.is_empty(),
        "seed {seed} failed:\n{}\n{}",
        failures.join("\n"),
        describe_seed(seed)
    );
}

#[test]
fn fuzz_graphs_fixed_range() {
    for seed in 0..32 {
        assert_seed_clean(seed);
    }
}

#[test]
fn fuzz_graphs_regression_corpus() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fuzz-corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("read corpus entry").path();
            (path.extension().is_some_and(|ext| ext == "seeds")).then_some(path)
        })
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no *.seeds files in {}", dir.display());
    let mut replayed = 0usize;
    for path in entries {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for seed in parse_seeds(&text) {
            assert_seed_clean(seed);
            replayed += 1;
        }
    }
    assert!(replayed > 0, "corpus files contained no seeds");
}
