//! Feedback soak: bursty producers × a stalled-then-slow subscriber over
//! real sockets, under `MILLSTREAM_CHECK=strict` wire sentinels and the
//! default shed policy.
//!
//! This is the overflow-disconnect bug's survival scenario: the
//! subscriber cannot keep up, the server's bounded queue fills, and the
//! run must end with the connection **alive**, the peak queue depth
//! bounded by configuration, every dropped tuple declared (server-side
//! `sub_shed` == the subscriber's cumulative drop notices, and
//! `received + dropped == produced` exactly), the survivors still in
//! timestamp order, the final `Timestamp::MAX` mark delivered, and zero
//! sentinel violations — no silent loss anywhere.

use std::time::Duration;

use millstream_buffer::CheckMode;
use millstream_net::{ClientConfig, Server, ServerConfig, StreamClient, Subscription};
use millstream_types::{Timestamp, Tuple, TupleBody, Value};

const STREAMS: usize = 3;
/// Per stream. Sized so the total (~57 MiB of wide tuples) overruns any
/// socket-buffer slack the kernel can grant a stalled subscriber, forcing
/// real queue overflow and shedding on every platform.
const TUPLES_PER_STREAM: u64 = 600;
const PAYLOAD: usize = 32 * 1024;
const QUEUE_CAP: usize = 64;

const PROGRAM: &str = "\
CREATE STREAM s0 (v STRING);
CREATE STREAM s1 (v STRING);
CREATE STREAM s2 (v STRING);
SELECT v FROM s0 UNION SELECT v FROM s1 UNION SELECT v FROM s2;";

/// Globally distinct, per-stream strictly increasing timestamps (the wire
/// resume contract), so survivor order at the sink is fully determined.
fn ts_of(stream: usize, i: u64) -> u64 {
    (i * STREAMS as u64 + stream as u64 + 1) * 10
}

fn tuple_of(stream: usize, i: u64) -> Tuple {
    let head = format!("{stream}:{i}:");
    let mut payload = String::with_capacity(PAYLOAD);
    payload.push_str(&head);
    while payload.len() < PAYLOAD {
        payload.push('x');
    }
    Tuple::data(
        Timestamp::from_micros(ts_of(stream, i)),
        vec![Value::str(payload)],
    )
}

#[test]
fn stalled_subscriber_survives_with_exact_drop_accounting() {
    let mut cfg = ServerConfig::new(PROGRAM);
    cfg.check = Some(CheckMode::Strict);
    cfg.subscriber_queue = QUEUE_CAP;
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    // Subscribe, then stall: nothing is read until the flood is over.
    let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");

    let mut threads = Vec::new();
    for s in 0..STREAMS {
        threads.push(std::thread::spawn(move || {
            let mut cc = ClientConfig::new(addr.to_string(), format!("s{s}"));
            cc.ack_window = 8 + s;
            let mut client = StreamClient::connect(cc).expect("connect");
            for i in 0..TUPLES_PER_STREAM {
                if i % 64 == 11 {
                    // Bursty cadence: short stalls between bursts.
                    std::thread::sleep(Duration::from_millis(1));
                }
                client.send(tuple_of(s, i)).expect("send");
            }
            client.close().expect("close")
        }));
    }
    let reports: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("producer thread"))
        .collect();
    let total = STREAMS as u64 * TUPLES_PER_STREAM;
    for (s, r) in reports.iter().enumerate() {
        assert_eq!(
            r.sent,
            TUPLES_PER_STREAM + 1,
            "stream s{s}: all handed over"
        );
        assert_eq!(r.acked, r.sent, "stream s{s}: everything acked");
        assert_eq!(
            r.reconnects, 0,
            "stream s{s}: backpressure must not kill links"
        );
    }
    let mid = server.stats();
    assert_eq!(
        mid.tuples_ingested, total,
        "backpressure never drops producer data"
    );
    assert!(
        mid.sub_shed > 0,
        "a stalled subscriber behind a {QUEUE_CAP}-deep queue must shed: {mid:?}"
    );
    assert_eq!(
        mid.subscriber_overflows, 0,
        "shed policy keeps the subscriber"
    );
    assert!(
        mid.feedback_frames > 0,
        "sustained pressure must emit producer pacing frames: {mid:?}"
    );
    let paced: u64 = reports.iter().map(|r| r.feedback_frames).sum();
    assert!(
        paced > 0,
        "no producer observed a pacing frame: {reports:?}"
    );

    // Now drain slowly (the "slow subscriber" half of the soak) while the
    // server shuts down concurrently — the final mark and Bye only go out
    // once the broadcast finishes.
    let reader = std::thread::spawn(move || {
        let mut survivors: Vec<u64> = Vec::new();
        let mut marks = 0u64;
        while let Some(t) = sub.next(Duration::from_secs(30)).expect("subscription") {
            match t.body {
                TupleBody::Data(_) => survivors.push(t.ts.as_micros()),
                TupleBody::Punctuation => {
                    assert_eq!(t.ts, Timestamp::MAX, "only the final mark is expected");
                    marks += 1;
                }
            }
            if survivors.len().is_multiple_of(16) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        (survivors, marks, sub.dropped(), sub.feedback_frames())
    });
    let report = server.shutdown().expect("shutdown");
    let (survivors, marks, dropped, notices) = reader.join().expect("reader thread");

    // Exact accounting: every produced tuple was either received or
    // declared dropped — and both sides agree on the count.
    assert!(dropped > 0, "drops must be declared to the subscriber");
    assert!(notices > 0, "drop notices must actually arrive");
    assert_eq!(
        survivors.len() as u64 + dropped,
        total,
        "received + declared drops must reconcile with production"
    );
    assert_eq!(
        report.stats.sub_shed, dropped,
        "server shed accounting and client drop notices must agree"
    );
    assert_eq!(
        report.stats.subscriber_overflows, 0,
        "no disconnects on this path"
    );
    assert_eq!(
        report.exec.shed_tuples, 0,
        "engine-side shedding is off by default; only the subscriber queue sheds"
    );

    // Bounded by construction, and the survivors keep the order contract:
    // oldest-first shedding never reorders what remains.
    assert!(
        report.sub_peak_queue <= QUEUE_CAP,
        "peak queue {} exceeded its bound {QUEUE_CAP}",
        report.sub_peak_queue
    );
    assert!(
        survivors.windows(2).all(|w| w[0] < w[1]),
        "survivor timestamps must stay strictly increasing"
    );
    assert!(
        marks >= 1,
        "the final ETS mark reaches a shedding subscriber"
    );
    assert_eq!(report.wire_sentinel_violations, 0, "strict sentinels clean");
    assert!(report.ports.iter().all(|p| p.closed), "all sources closed");
}
