//! Stochastic workload generators.
//!
//! The paper generated "input data tuples … randomly … under a Poisson
//! arrival process with the desired average arrival rates" (§6). This
//! module provides that generator plus two extensions exercised by the
//! ablation benches:
//!
//! * constant-rate arrivals (deterministic inter-arrival gap), and
//! * bursty arrivals (compound Poisson: a Poisson process of burst epochs,
//!   each delivering a geometric batch of tuples), which drives the
//!   Fig. 8(b) observation that high periodic-punctuation rates inflate
//!   memory "when bursts of data tuples are being processed".

use rand::rngs::SmallRng;
use rand::Rng;

use millstream_types::{Error, Result, TimeDelta, Value};

/// An arrival process: a (possibly random) sequence of inter-arrival gaps
/// and batch sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_hz` tuples per second (exponential
    /// inter-arrival times, batch size 1).
    Poisson {
        /// Mean arrival rate in tuples per second.
        rate_hz: f64,
    },
    /// One tuple every `1/rate_hz` seconds exactly.
    Constant {
        /// Arrival rate in tuples per second.
        rate_hz: f64,
    },
    /// Bursts at Poisson epochs; each burst carries a geometrically
    /// distributed number of tuples with mean `mean_burst` (all sharing the
    /// epoch's arrival instant). The average tuple rate is still `rate_hz`.
    Bursty {
        /// Mean arrival rate in tuples per second (across bursts).
        rate_hz: f64,
        /// Mean tuples per burst (≥ 1).
        mean_burst: f64,
    },
    /// A two-state Markov-modulated process: Poisson arrivals at `on_rate_hz`
    /// during ON periods, silence during OFF periods, with exponentially
    /// distributed period lengths. Models duty-cycled sensors and diurnal
    /// traffic — long OFF periods are idle-waiting at its worst.
    OnOff {
        /// Arrival rate while ON.
        on_rate_hz: f64,
        /// Mean ON period length in seconds.
        mean_on_s: f64,
        /// Mean OFF period length in seconds.
        mean_off_s: f64,
    },
}

impl ArrivalProcess {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        let rate = self.rate_hz();
        if !rate.is_finite() || rate <= 0.0 {
            return Err(Error::config(format!(
                "arrival rate must be positive, got {rate}"
            )));
        }
        // NaN-aware bounds: `is_finite` first so NaN parameters are caught
        // explicitly rather than slipping through a comparison.
        match self {
            ArrivalProcess::Bursty { mean_burst, .. }
                if !mean_burst.is_finite() || *mean_burst < 1.0 =>
            {
                return Err(Error::config(format!(
                    "mean burst size must be >= 1, got {mean_burst}"
                )));
            }
            ArrivalProcess::OnOff {
                mean_on_s,
                mean_off_s,
                ..
            } if !mean_on_s.is_finite()
                || !mean_off_s.is_finite()
                || *mean_on_s <= 0.0
                || *mean_off_s <= 0.0 =>
            {
                return Err(Error::config(
                    "on/off period means must be positive".to_string(),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Mean tuple rate of the process in tuples per second.
    pub fn rate_hz(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_hz }
            | ArrivalProcess::Constant { rate_hz }
            | ArrivalProcess::Bursty { rate_hz, .. } => *rate_hz,
            ArrivalProcess::OnOff {
                on_rate_hz,
                mean_on_s,
                mean_off_s,
            } => on_rate_hz * mean_on_s / (mean_on_s + mean_off_s),
        }
    }

    /// Samples the gap to the next arrival epoch and the number of tuples
    /// delivered at that epoch.
    pub fn next_arrival(&self, rng: &mut SmallRng) -> (TimeDelta, u32) {
        match *self {
            ArrivalProcess::Constant { rate_hz } => (TimeDelta::from_secs_f64(1.0 / rate_hz), 1),
            ArrivalProcess::Poisson { rate_hz } => {
                (TimeDelta::from_secs_f64(sample_exp(rng, rate_hz)), 1)
            }
            ArrivalProcess::Bursty {
                rate_hz,
                mean_burst,
            } => {
                // Burst epochs arrive at rate_hz / mean_burst so the tuple
                // rate averages rate_hz.
                let epoch_rate = rate_hz / mean_burst;
                let gap = TimeDelta::from_secs_f64(sample_exp(rng, epoch_rate));
                (gap, sample_geometric(rng, mean_burst))
            }
            ArrivalProcess::OnOff {
                on_rate_hz,
                mean_on_s,
                mean_off_s,
            } => {
                // Memorylessness of the exponential lets the process be
                // sampled without tracking state: each inter-arrival is an
                // ON-rate gap, plus an OFF excursion with the probability
                // that the ON period expires first.
                let mut gap = sample_exp(rng, on_rate_hz);
                let p_silence = 1.0 - (-gap / mean_on_s).exp();
                if rng.gen_range(0.0..1.0) < p_silence {
                    gap += sample_exp(rng, 1.0 / mean_off_s);
                }
                (TimeDelta::from_secs_f64(gap), 1)
            }
        }
    }
}

/// Exponential sample with rate `lambda` (mean 1/lambda seconds).
fn sample_exp(rng: &mut SmallRng, lambda: f64) -> f64 {
    // Inversion; guard u=0.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / lambda
}

/// Geometric sample on {1, 2, ...} with the given mean.
fn sample_geometric(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean; // success prob; mean of geometric-on-{1,..} is 1/p
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let k = (u.ln() / (1.0 - p).ln()).floor() as u32 + 1;
    k.max(1)
}

/// Generates tuple payloads for a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadGen {
    /// One INT column: a uniform value in `[0, modulus)`. The paper's 95%
    /// selectivity filter is `v < 95` with `modulus = 100`.
    UniformInt {
        /// Exclusive upper bound of the value.
        modulus: i64,
    },
    /// Two INT columns: a uniform key in `[0, keys)` and a sequence number.
    /// Used by join and aggregation workloads.
    KeyedSeq {
        /// Number of distinct keys.
        keys: i64,
    },
}

impl PayloadGen {
    /// Number of columns produced.
    pub fn width(&self) -> usize {
        match self {
            PayloadGen::UniformInt { .. } => 1,
            PayloadGen::KeyedSeq { .. } => 2,
        }
    }

    /// Generates the row for the `seq`-th tuple of the stream.
    pub fn generate(&self, rng: &mut SmallRng, seq: u64) -> Vec<Value> {
        match *self {
            PayloadGen::UniformInt { modulus } => {
                vec![Value::Int(rng.gen_range(0..modulus.max(1)))]
            }
            PayloadGen::KeyedSeq { keys } => vec![
                Value::Int(rng.gen_range(0..keys.max(1))),
                Value::Int(seq as i64),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn constant_process_is_exact() {
        let p = ArrivalProcess::Constant { rate_hz: 50.0 };
        let mut r = rng();
        let (gap, n) = p.next_arrival(&mut r);
        assert_eq!(gap, TimeDelta::from_micros(20_000));
        assert_eq!(n, 1);
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let p = ArrivalProcess::Poisson { rate_hz: 50.0 };
        let mut r = rng();
        let mut total = TimeDelta::ZERO;
        let samples = 20_000;
        for _ in 0..samples {
            total += p.next_arrival(&mut r).0;
        }
        let mean_gap_s = total.as_secs_f64() / samples as f64;
        assert!(
            (mean_gap_s - 0.02).abs() < 0.002,
            "mean gap {mean_gap_s} should approach 20ms"
        );
    }

    #[test]
    fn bursty_preserves_tuple_rate() {
        let p = ArrivalProcess::Bursty {
            rate_hz: 50.0,
            mean_burst: 8.0,
        };
        let mut r = rng();
        let mut time = 0.0;
        let mut tuples = 0u64;
        for _ in 0..20_000 {
            let (gap, n) = p.next_arrival(&mut r);
            time += gap.as_secs_f64();
            tuples += n as u64;
        }
        let rate = tuples as f64 / time;
        assert!(
            (rate - 50.0).abs() < 5.0,
            "empirical tuple rate {rate} should approach 50/s"
        );
        // Burst sizes average ~8.
        let mean_burst = tuples as f64 / 20_000.0;
        assert!((mean_burst - 8.0).abs() < 0.5, "mean burst {mean_burst}");
    }

    #[test]
    fn on_off_produces_long_silences_and_roughly_the_duty_cycled_rate() {
        let p = ArrivalProcess::OnOff {
            on_rate_hz: 100.0,
            mean_on_s: 1.0,
            mean_off_s: 4.0,
        };
        p.validate().unwrap();
        assert!((p.rate_hz() - 20.0).abs() < 1e-9, "duty-cycled mean rate");
        let mut r = rng();
        let mut time = 0.0;
        let mut tuples = 0u64;
        let mut long_gaps = 0;
        for _ in 0..50_000 {
            let (gap, n) = p.next_arrival(&mut r);
            if gap.as_secs_f64() > 1.0 {
                long_gaps += 1;
            }
            time += gap.as_secs_f64();
            tuples += n as u64;
        }
        let rate = tuples as f64 / time;
        assert!((rate - 20.0).abs() < 4.0, "empirical rate {rate}");
        assert!(long_gaps > 50, "OFF periods appear: {long_gaps}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ArrivalProcess::Poisson { rate_hz: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { rate_hz: -3.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson {
            rate_hz: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            rate_hz: 1.0,
            mean_burst: 0.5
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            rate_hz: 1.0,
            mean_burst: 4.0
        }
        .validate()
        .is_ok());
        assert!(ArrivalProcess::OnOff {
            on_rate_hz: 10.0,
            mean_on_s: 0.0,
            mean_off_s: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn payload_shapes() {
        let mut r = rng();
        let p = PayloadGen::UniformInt { modulus: 100 };
        assert_eq!(p.width(), 1);
        for _ in 0..1000 {
            let row = p.generate(&mut r, 0);
            let v = row[0].as_int().unwrap();
            assert!((0..100).contains(&v));
        }
        let p = PayloadGen::KeyedSeq { keys: 10 };
        assert_eq!(p.width(), 2);
        let row = p.generate(&mut r, 42);
        assert!((0..10).contains(&row[0].as_int().unwrap()));
        assert_eq!(row[1], Value::Int(42));
    }

    #[test]
    fn determinism_under_seed() {
        let p = ArrivalProcess::Poisson { rate_hz: 5.0 };
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(p.next_arrival(&mut a), p.next_arrival(&mut b));
        }
    }
}
