//! Trace replay: drive a query graph from recorded streams instead of
//! stochastic workloads.
//!
//! Real DSMS evaluations frequently replay captured traces (the paper's
//! lineage system, Gigascope, ran on recorded network traffic). This module
//! provides a minimal trace format — CSV lines of
//! `timestamp_micros,stream,v1,v2,…` — and a deterministic replayer that
//! delivers the trace through the same executor/ETS machinery as the
//! stochastic driver.

use millstream_exec::{Activity, Executor, SourceId};
use millstream_types::{DataType, Error, Result, Schema, Timestamp, Tuple, Value};

use crate::driver::SharedLatencyCollector;

/// One trace record: arrival instant, stream index, row values.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Arrival time (microseconds on the virtual timeline).
    pub at: Timestamp,
    /// Index into the replayer's stream table.
    pub stream: usize,
    /// Row values (must match the stream's schema).
    pub values: Vec<Value>,
}

/// Parses the trace text format.
///
/// Each non-empty, non-`#` line is `timestamp_micros,stream_name,v1,v2,…`.
/// Values are parsed against the named stream's schema: INT/FLOAT/BOOL
/// literals, anything else as a string; a lone `\N` is NULL.
pub fn parse_trace(text: &str, streams: &[(&str, &Schema)]) -> Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let err = |msg: String| Error::parse(msg, (lineno + 1) as u32, 1);
        let ts: u64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        let name = parts
            .next()
            .ok_or_else(|| err("missing stream name".into()))?
            .trim();
        let (stream, schema) = streams
            .iter()
            .enumerate()
            .find_map(|(i, (n, s))| (*n == name).then_some((i, *s)))
            .ok_or_else(|| err(format!("unknown stream `{name}`")))?;
        let raw: Vec<&str> = parts.map(str::trim).collect();
        if raw.len() != schema.len() {
            return Err(err(format!(
                "stream `{name}` expects {} values, line has {}",
                schema.len(),
                raw.len()
            )));
        }
        let mut values = Vec::with_capacity(raw.len());
        for (cell, field) in raw.iter().zip(schema.fields()) {
            if *cell == "\\N" {
                values.push(Value::Null);
                continue;
            }
            let v = match field.data_type {
                DataType::Int => Value::Int(
                    cell.parse()
                        .map_err(|e| err(format!("bad INT `{cell}`: {e}")))?,
                ),
                DataType::Float => Value::Float(
                    cell.parse()
                        .map_err(|e| err(format!("bad FLOAT `{cell}`: {e}")))?,
                ),
                DataType::Bool => match cell.to_ascii_lowercase().as_str() {
                    "true" | "1" | "t" => Value::Bool(true),
                    "false" | "0" | "f" => Value::Bool(false),
                    other => return Err(err(format!("bad BOOL `{other}`"))),
                },
                DataType::Str => Value::str(*cell),
            };
            values.push(v);
        }
        out.push(TraceRecord {
            at: Timestamp::from_micros(ts),
            stream,
            values,
        });
    }
    // The replayer requires a time-ordered trace (arrival order).
    if !out.windows(2).all(|w| w[0].at <= w[1].at) {
        return Err(Error::config(
            "trace records must be sorted by arrival timestamp",
        ));
    }
    Ok(out)
}

/// The result of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Data tuples delivered at the sink.
    pub delivered: u64,
    /// Mean output latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Records ingested.
    pub ingested: u64,
    /// On-demand ETS generated during the replay.
    pub ets_generated: u64,
}

/// Replays a trace through an executor. `sources[i]` receives the records
/// with `stream == i`; internal timestamps are stamped on delivery.
pub fn replay(
    executor: &mut Executor,
    sources: &[SourceId],
    trace: &[TraceRecord],
    collector: &SharedLatencyCollector,
) -> Result<ReplayReport> {
    let mut ingested = 0;
    for rec in trace {
        let Some(&source) = sources.get(rec.stream) else {
            return Err(Error::config(format!(
                "trace references stream {} but only {} sources are wired",
                rec.stream,
                sources.len()
            )));
        };
        executor.clock().advance_to(rec.at);
        let ts = executor.clock().now();
        executor.ingest(source, Tuple::data(ts, rec.values.clone()))?;
        ingested += 1;
        // Drain the wave exactly like the stochastic driver does.
        loop {
            if matches!(executor.step()?, Activity::Quiescent) {
                break;
            }
        }
    }
    let recorder = collector.recorder();
    Ok(ReplayReport {
        delivered: collector.delivered(),
        mean_latency_ms: recorder.mean().map_or(f64::NAN, |d| d.as_millis_f64()),
        ingested,
        ets_generated: executor.stats().ets_generated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_exec::{CostModel, EtsPolicy, GraphBuilder, Input, VirtualClock};
    use millstream_ops::{Sink, Union};
    use millstream_types::{Field, TimestampKind};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("v", DataType::Int),
            Field::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn parses_the_trace_format() {
        let s = schema();
        let trace = parse_trace(
            "# comment line\n\
             100,web,1,alpha\n\
             \n\
             250,api,2,\\N\n\
             300,web,3,gamma\n",
            &[("web", &s), ("api", &s)],
        )
        .unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].at.as_micros(), 100);
        assert_eq!(trace[1].stream, 1);
        assert_eq!(trace[1].values[1], Value::Null);
        assert_eq!(trace[2].values[1], Value::str("gamma"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let s = schema();
        let streams = [("web", &s)];
        assert!(parse_trace("abc,web,1,x", &streams).is_err());
        assert!(parse_trace("100,nope,1,x", &streams).is_err());
        assert!(parse_trace("100,web,1", &streams).is_err());
        assert!(parse_trace("100,web,notint,x", &streams).is_err());
        // Out-of-order trace.
        assert!(parse_trace("200,web,1,a\n100,web,2,b", &streams).is_err());
    }

    #[test]
    fn replays_through_a_union() {
        let s = schema();
        let mut b = GraphBuilder::new();
        let s1 = b.source("web", s.clone(), TimestampKind::Internal);
        let s2 = b.source("api", s.clone(), TimestampKind::Internal);
        let u = b
            .operator(
                Box::new(Union::new("∪", s.clone(), 2)),
                vec![Input::Source(s1), Input::Source(s2)],
            )
            .unwrap();
        let collector = SharedLatencyCollector::new();
        b.operator(
            Box::new(Sink::new("sink", s.clone(), collector.clone())),
            vec![Input::Op(u)],
        )
        .unwrap();
        let mut exec = Executor::new(
            b.build().unwrap(),
            VirtualClock::shared(),
            CostModel::default(),
            EtsPolicy::on_demand(),
        );
        let trace = parse_trace(
            "100,web,1,a\n5000,api,2,b\n9000,web,3,c\n",
            &[("web", &s), ("api", &s)],
        )
        .unwrap();
        let report = replay(&mut exec, &[s1, s2], &trace, &collector).unwrap();
        assert_eq!(report.ingested, 3);
        assert_eq!(report.delivered, 3, "on-demand ETS flushes every wave");
        assert!(report.ets_generated > 0);
        assert!(report.mean_latency_ms < 1.0);
    }
}
