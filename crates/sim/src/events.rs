//! The discrete-event calendar.
//!
//! Arrival and heartbeat events are kept in a binary-heap calendar ordered
//! by virtual time, with a monotone sequence number breaking ties so
//! simulation runs are fully deterministic under a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use millstream_types::Timestamp;

/// What happens at an event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A data tuple arrives at stream `stream`.
    Arrival {
        /// Index of the stream (driver-local).
        stream: usize,
    },
    /// A periodic heartbeat fires for stream `stream` (experiment line B).
    Heartbeat {
        /// Index of the stream.
        stream: usize,
    },
}

/// One calendar entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event occurs (virtual time).
    pub time: Timestamp,
    /// What occurs.
    pub kind: EventKind,
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    event: Event,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .event
            .time
            .cmp(&self.event.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event calendar.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { event, seq });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.event.time)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<Event> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| e.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, stream: usize) -> Event {
        Event {
            time: Timestamp::from_micros(t),
            kind: EventKind::Arrival { stream },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(ev(5, 0));
        q.push(ev(5, 1));
        q.push(ev(5, 2));
        let streams: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { stream } => stream,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(streams, vec![0, 1, 2], "FIFO among simultaneous events");
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        assert!(q.pop_due(Timestamp::from_micros(5)).is_none());
        assert!(q.pop_due(Timestamp::from_micros(10)).is_some());
        assert!(q.pop_due(Timestamp::from_micros(15)).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(ev(42, 0));
        assert_eq!(q.peek_time(), Some(Timestamp::from_micros(42)));
    }
}
