//! Differential stream fuzzer — randomized query graphs × adversarial
//! workloads, every run under `MILLSTREAM_CHECK=strict` semantics.
//!
//! Each seed deterministically generates (via a hand-rolled SplitMix64
//! generator, so runs are reproducible across platforms and never depend
//! on ambient entropy):
//!
//! * a small query graph — one or two independent components, each with
//!   1–3 sources feeding optional filters, an optional out-of-order
//!   source behind a [`Reorder`], and a [`Union`] when a component has
//!   more than one source; roughly half the seeds additionally append a
//!   3-way [`MultiWindowJoin`] component (hash-keyed or with the
//!   equivalent explicit condition) checked against a combination oracle;
//! * a workload mixing bursty arrivals, simultaneous timestamps (ties),
//!   bounded disorder on the unordered source, and heartbeats that are
//!   valid by construction (each promises the minimum timestamp still to
//!   come on its source).
//!
//! The workload then runs under **every cell of the engine matrix** —
//! `EtsPolicy` × `SchedPolicy` × workers ∈ {1 (serial [`Executor`]),
//! 4 ([`ParallelExecutor`])} × feedback ∈ {off, advisory-on} (harsh
//! watermarks, shedding and slack tightening disabled, so the feedback
//! channel must be output-invariant), plus `EtsPolicy` × `SchedPolicy` ×
//! shards ∈ {1, 2, 4} through the key-partitioned [`ShardedExecutor`]
//! (each component sharded whole-row across exchange edges, re-merged by
//! timestamp, with per-shard frontier floors checked for consistency) —
//! with the sentinel layer in strict mode, and
//! each sink's output is compared against a naive single-queue oracle
//! (all surviving data tuples of the component, merged into one queue and
//! sorted by timestamp). Any engine error, invariant violation, ordering
//! regression at a sink, or oracle mismatch is reported as a failure.
//!
//! Two disorder regimes are generated for the unordered source:
//!
//! * **exact** — `Reorder` slack ≥ the maximum jitter, so no tuple is
//!   late and the oracle compares the exact `(timestamp, value)`
//!   multiset;
//! * **clamped** — slack below the jitter bound with
//!   [`LatePolicy::Clamp`], where late tuples keep their values but get
//!   clamped timestamps, so the oracle compares the value multiset and
//!   still requires non-decreasing sink timestamps. (`LatePolicy::Drop`
//!   is excluded here: which tuples are dropped depends on scheduling
//!   interleavings, so there is no engine-independent oracle for it.)
//!
//! On-demand ETS is skipped for workloads containing an unordered source:
//! the §5 external skew rule promises `t + τ − δ` monotonized against the
//! last data timestamp, a promise bounded disorder legitimately breaks —
//! pairing them is a configuration error, not an engine bug, and would
//! drown the fuzzer in false punctuation-dominance findings.

use std::sync::{Arc, Mutex};

use millstream_exec::{
    CheckMode, CostModel, EtsPolicy, Executor, FeedbackConfig, GraphBuilder, Input, ParallelConfig,
    ParallelExecutor, QueryGraph, SchedPolicy, ShardKey, ShardOutput, ShardedConfig,
    ShardedExecutor, SourceId, VirtualClock, Watermarks,
};
use millstream_ops::{
    Filter, LatePolicy, MultiWindowJoin, Project, Reorder, Sink, SinkCollector, TierConfig, Union,
};
use millstream_types::{
    DataType, Expr, Field, Schema, TimeDelta, Timestamp, TimestampKind, Tuple, Value,
    INLINE_ROW_CAP,
};

/// Step budget per quiescence drain; hitting it means a livelock.
const MAX_STEPS: u64 = 2_000_000;

/// SplitMix64 — tiny, fast, and excellent dispersion for fuzzing. Keeping
/// it local (rather than using the `rand` shim) pins the byte-for-byte
/// seed → workload mapping, which the regression corpus depends on.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant at fuzzing
    /// sizes).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// One generated event at a source.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A data tuple: ingested at `arrival`, carrying application
    /// timestamp `ts` (equal to `arrival` for ordered sources) and an
    /// integer payload.
    Data { arrival: u64, ts: u64, v: i64 },
    /// A heartbeat promising no future data below `ts` on this source.
    Heartbeat { arrival: u64, ts: u64 },
}

impl Ev {
    fn arrival(&self) -> u64 {
        match *self {
            Ev::Data { arrival, .. } | Ev::Heartbeat { arrival, .. } => arrival,
        }
    }
}

/// One generated source and its workload.
#[derive(Debug, Clone)]
struct SrcSpec {
    /// Out-of-order external stream behind a `Reorder`?
    unordered: bool,
    /// Reorder slack (µs); meaningful only when `unordered`.
    slack: u64,
    /// Reorder late policy is Clamp (always true when `!exact`).
    clamp: bool,
    /// Slack covers the jitter bound — no tuple can be late.
    exact: bool,
    /// Optional `col0 >= k` filter on this source's path.
    filter_min: Option<i64>,
    /// Wide rows: the source carries `INLINE_ROW_CAP + 2` columns, so
    /// every tuple uses `Row`'s spilled (shared-heap) representation all
    /// the way to a `Project` that narrows it back to one inline column.
    wide: bool,
    events: Vec<Ev>,
}

/// How a join component combines its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum JoinKind {
    /// Hash-partitioned equi-keys: `with_keys([0, 0, 0])`, no condition.
    Keyed,
    /// Keyless scan stores with the same equality as an explicit
    /// condition (`c0 = c1 AND c1 = c2`) — exercises the conjunct
    /// scheduler and the ordered-scan path; same oracle as `Keyed`.
    Conditioned,
}

/// One independent query-graph component (its own sink).
#[derive(Debug, Clone)]
struct CompSpec {
    sources: Vec<SrcSpec>,
    /// When set, the component is a 3-way [`MultiWindowJoin`] over its
    /// (exactly three, ordered, narrow) sources with this kind and a
    /// shared window length in µs.
    join: Option<(JoinKind, u64)>,
}

/// A full generated scenario.
#[derive(Debug, Clone)]
struct FuzzSpec {
    comps: Vec<CompSpec>,
}

impl FuzzSpec {
    fn any_unordered(&self) -> bool {
        self.comps
            .iter()
            .any(|c| c.sources.iter().any(|s| s.unordered))
    }
}

/// What the oracle asserts about a component's sink output.
enum Expected {
    /// Exact `(ts, value)` multiset (no clamping possible).
    Exact(Vec<(u64, i64)>),
    /// Value multiset only (clamping may rewrite late timestamps).
    ValuesOnly(Vec<i64>),
}

fn gen_source(rng: &mut SplitMix64, unordered: bool) -> SrcSpec {
    let n = 4 + rng.below(28);
    let jitter = 2 + rng.below(10);
    let exact = !unordered || rng.chance(2, 3);
    let slack = if exact { jitter } else { jitter / 2 };
    let clamp = if exact { rng.chance(1, 2) } else { true };

    let mut events = Vec::new();
    let mut arrival = 1 + rng.below(8);
    for _ in 0..n {
        let v = rng.below(16) as i64;
        let ts = if unordered {
            // ts ∈ [arrival, arrival + jitter]: a later arrival can carry
            // an earlier timestamp, with lateness bounded by `jitter`.
            arrival + jitter - rng.below(jitter + 1)
        } else {
            arrival
        };
        events.push(Ev::Data { arrival, ts, v });
        // Bursty gaps; zero gaps create simultaneous timestamps.
        const GAPS: [u64; 8] = [0, 0, 1, 1, 2, 3, 5, 9];
        arrival += GAPS[rng.below(8) as usize];
    }

    // Interleave heartbeats that are valid by construction: each promises
    // the minimum application timestamp still to come on this source.
    let data: Vec<(u64, u64)> = events
        .iter()
        .map(|e| match *e {
            Ev::Data { arrival, ts, .. } => (arrival, ts),
            Ev::Heartbeat { .. } => unreachable!("only data generated so far"),
        })
        .collect();
    let mut with_hb = Vec::with_capacity(events.len() + 4);
    for (i, ev) in events.into_iter().enumerate() {
        let arrival = ev.arrival();
        with_hb.push(ev);
        if rng.chance(1, 6) {
            if let Some(&min_future) = data[i + 1..]
                .iter()
                .map(|(_, ts)| ts)
                .min()
                .filter(|&&ts| ts > 0)
            {
                with_hb.push(Ev::Heartbeat {
                    arrival,
                    ts: min_future,
                });
            }
        }
    }

    SrcSpec {
        unordered,
        slack,
        clamp,
        exact,
        filter_min: rng.chance(1, 2).then(|| rng.below(12) as i64),
        wide: false,
        events: with_hb,
    }
}

fn gen_spec(seed: u64) -> FuzzSpec {
    let mut rng = SplitMix64::new(seed);
    let ncomps = if rng.chance(1, 3) { 2 } else { 1 };
    let comps = (0..ncomps)
        .map(|_| {
            let nsources = 1 + rng.below(3) as usize;
            let unordered_at = rng
                .chance(1, 3)
                .then(|| rng.below(nsources as u64) as usize);
            let sources = (0..nsources)
                .map(|si| gen_source(&mut rng, unordered_at == Some(si)))
                .collect();
            CompSpec {
                sources,
                join: None,
            }
        })
        .collect();
    let mut spec = FuzzSpec { comps };
    // Wide-row flags are drawn *after* every structural draw above, so
    // the historic seed → graph/workload mapping — which the regression
    // corpus under fuzz-corpus/ pins — is unchanged; wideness only adds
    // padding columns and a narrowing Project on top of the same spec.
    for comp in &mut spec.comps {
        for s in &mut comp.sources {
            s.wide = rng.chance(1, 4);
        }
    }
    // Join components draw from a *separately derived* generator so every
    // historic draw above stays byte-identical — the corpus seeds keep
    // their exact graphs and workloads, and a 3-way join component is
    // appended on top for roughly half the seeds.
    let mut jrng = SplitMix64::new(seed ^ 0xA5A5_5A5A_C3C3_3C3C);
    if jrng.chance(1, 2) {
        let kind = if jrng.chance(1, 2) {
            JoinKind::Keyed
        } else {
            JoinKind::Conditioned
        };
        let window = 3 + jrng.below(10);
        let sources = (0..3).map(|_| gen_join_source(&mut jrng)).collect();
        spec.comps.push(CompSpec {
            sources,
            join: Some((kind, window)),
        });
    }
    spec
}

/// A join input: ordered, narrow, data-only, with a small value domain so
/// equi-keys collide often enough to produce matches.
fn gen_join_source(rng: &mut SplitMix64) -> SrcSpec {
    let n = 3 + rng.below(10);
    let mut events = Vec::new();
    let mut arrival = 1 + rng.below(4);
    for _ in 0..n {
        let v = rng.below(4) as i64;
        events.push(Ev::Data {
            arrival,
            ts: arrival,
            v,
        });
        const GAPS: [u64; 8] = [0, 1, 1, 2, 2, 3, 5, 8];
        arrival += GAPS[rng.below(8) as usize];
    }
    SrcSpec {
        unordered: false,
        slack: 0,
        clamp: false,
        exact: true,
        filter_min: None,
        wide: false,
        events,
    }
}

/// One-line digest of the scenario a seed generates (CLI diagnostics and
/// corpus curation).
pub fn describe_seed(seed: u64) -> String {
    let spec = gen_spec(seed);
    let comps: Vec<String> = spec
        .comps
        .iter()
        .map(|c| {
            let srcs: Vec<String> = c
                .sources
                .iter()
                .map(|s| {
                    let n = s
                        .events
                        .iter()
                        .filter(|e| matches!(e, Ev::Data { .. }))
                        .count();
                    let hb = s.events.len() - n;
                    let wide = if s.wide { " wide" } else { "" };
                    if s.unordered {
                        let mode = if s.exact { "exact" } else { "clamped" };
                        format!("unordered({n}d/{hb}h slack={} {mode}{wide})", s.slack)
                    } else {
                        format!("ordered({n}d/{hb}h{wide})")
                    }
                })
                .collect();
            match c.join {
                Some((kind, w)) => {
                    let kind = match kind {
                        JoinKind::Keyed => "keyed",
                        JoinKind::Conditioned => "conditioned",
                    };
                    format!("join3[{kind} w={w}: {}]", srcs.join(" + "))
                }
                None => format!("[{}]", srcs.join(" + ")),
            }
        })
        .collect();
    format!("seed {seed}: {}", comps.join(" | "))
}

/// The naive single-queue oracle: every data tuple that survives its
/// source's filter, merged into one queue and sorted by timestamp. Join
/// components use the combination oracle instead.
fn expected(comp: &CompSpec) -> Expected {
    if let Some((_, w)) = comp.join {
        return expected_join(comp, w);
    }
    let inexact = comp.sources.iter().any(|s| s.unordered && !s.exact);
    let mut rows: Vec<(u64, i64)> = Vec::new();
    for s in &comp.sources {
        for ev in &s.events {
            if let Ev::Data { ts, v, .. } = *ev {
                if s.filter_min.is_none_or(|k| v >= k) {
                    rows.push((ts, v));
                }
            }
        }
    }
    rows.sort_unstable();
    if inexact {
        let mut vs: Vec<i64> = rows.iter().map(|r| r.1).collect();
        vs.sort_unstable();
        Expected::ValuesOnly(vs)
    } else {
        Expected::Exact(rows)
    }
}

/// Thread-safe sink collector capturing `(ts, value)` rows.
#[derive(Clone, Default)]
struct CollectedSink(Arc<Mutex<Vec<(u64, i64)>>>);

impl SinkCollector for CollectedSink {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        let v = match tuple.values().and_then(|vs| vs.first()) {
            Some(&Value::Int(v)) => v,
            _ => i64::MIN,
        };
        self.0.lock().unwrap().push((tuple.ts.as_micros(), v));
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// Wide variant: `INLINE_ROW_CAP + 2` columns, guaranteed past the inline
/// cap so every row on a wide source's path is spilled.
const WIDE_COLS: usize = INLINE_ROW_CAP + 2;

fn wide_schema() -> Schema {
    Schema::new(
        (0..WIDE_COLS)
            .map(|i| Field::new(format!("c{i}"), DataType::Int))
            .collect::<Vec<_>>(),
    )
}

/// The payload a source ingests for value `v`: the padding columns carry
/// values derived from `v` so a corrupted or torn spill would change what
/// the narrowing `Project` emits and trip the oracle.
fn payload(s: &SrcSpec, v: i64) -> Vec<Value> {
    if s.wide {
        (0..WIDE_COLS as i64).map(|i| Value::Int(v + i)).collect()
    } else {
        vec![Value::Int(v)]
    }
}

struct Built {
    graph: QueryGraph,
    /// Per component: its global source ids (in spec order) and its sink.
    handles: Vec<(Vec<SourceId>, CollectedSink)>,
}

/// Appends one component's pipeline — sources, optional `Reorder` /
/// `Filter` / narrowing `Project` stages, a `Union` when multi-source,
/// and a sink delivering to `out` — to the builder. Returns the
/// component's source ids in spec order. Shared between the full
/// multi-component graph ([`build`]) and the per-shard replica factories
/// ([`run_sharded`]), so every engine cell executes the same plan.
fn append_component<C: SinkCollector + 'static>(
    b: &mut GraphBuilder,
    comp: &CompSpec,
    ci: usize,
    tier: Option<TierConfig>,
    out: C,
) -> Result<Vec<SourceId>, String> {
    if let Some((kind, w)) = comp.join {
        return append_join_component(b, comp, ci, kind, w, tier, out);
    }
    let mut tails = Vec::new();
    let mut src_ids = Vec::new();
    for (si, s) in comp.sources.iter().enumerate() {
        let name = format!("S{ci}_{si}");
        let src_schema = if s.wide { wide_schema() } else { schema() };
        let sid = if s.unordered {
            b.unordered_source(&name, src_schema.clone(), TimestampKind::External)
        } else {
            b.source(&name, src_schema.clone(), TimestampKind::Internal)
        };
        src_ids.push(sid);
        let mut tail = Input::Source(sid);
        if s.unordered {
            let policy = if s.clamp {
                LatePolicy::Clamp
            } else {
                LatePolicy::Drop
            };
            let r = Reorder::new(
                format!("reorder{ci}_{si}"),
                src_schema.clone(),
                TimeDelta::from_micros(s.slack),
            )
            .with_late_policy(policy);
            tail = Input::Op(
                b.operator(Box::new(r), vec![tail])
                    .map_err(|e| e.to_string())?,
            );
        }
        if let Some(k) = s.filter_min {
            let f = Filter::new(
                format!("filter{ci}_{si}"),
                src_schema.clone(),
                Expr::col(0).ge(Expr::lit(k)),
            );
            tail = Input::Op(
                b.operator(Box::new(f), vec![tail])
                    .map_err(|e| e.to_string())?,
            );
        }
        if s.wide {
            // Narrow the spilled rows back to the one-column schema the
            // union and sink (and the oracle) expect.
            let p = Project::new(format!("narrow{ci}_{si}"), schema(), vec![Expr::col(0)]);
            tail = Input::Op(
                b.operator(Box::new(p), vec![tail])
                    .map_err(|e| e.to_string())?,
            );
        }
        tails.push(tail);
    }
    let tail = if tails.len() > 1 {
        let u = Union::new(format!("union{ci}"), schema(), tails.len());
        Input::Op(b.operator(Box::new(u), tails).map_err(|e| e.to_string())?)
    } else {
        tails.pop().expect("component has at least one source")
    };
    b.operator(
        Box::new(Sink::new(format!("sink{ci}"), schema(), out)),
        vec![tail],
    )
    .map_err(|e| e.to_string())?;
    Ok(src_ids)
}

/// Output schema of a 3-way join component: the concatenated input
/// columns.
fn join_out_schema() -> Schema {
    Schema::new(
        (0..3)
            .map(|i| Field::new(format!("v{i}"), DataType::Int))
            .collect::<Vec<_>>(),
    )
}

/// Appends a 3-way [`MultiWindowJoin`] component: three ordered narrow
/// sources straight into the join, then the sink.
fn append_join_component<C: SinkCollector + 'static>(
    b: &mut GraphBuilder,
    comp: &CompSpec,
    ci: usize,
    kind: JoinKind,
    w: u64,
    tier: Option<TierConfig>,
    out: C,
) -> Result<Vec<SourceId>, String> {
    let mut inputs = Vec::new();
    let mut src_ids = Vec::new();
    for si in 0..comp.sources.len() {
        let sid = b.source(format!("S{ci}_{si}"), schema(), TimestampKind::Internal);
        src_ids.push(sid);
        inputs.push(Input::Source(sid));
    }
    let windows = vec![TimeDelta::from_micros(w); comp.sources.len()];
    let schemas = vec![schema(); comp.sources.len()];
    let join = match kind {
        JoinKind::Keyed => MultiWindowJoin::new(format!("join{ci}"), &schemas, windows, None)
            .with_keys(vec![0; comp.sources.len()]),
        JoinKind::Conditioned => MultiWindowJoin::new(
            format!("join{ci}"),
            &schemas,
            windows,
            Some(
                Expr::col(0)
                    .eq(Expr::col(1))
                    .and(Expr::col(1).eq(Expr::col(2))),
            ),
        ),
    };
    let join = join.with_tier(tier);
    let jn = b
        .operator(Box::new(join), inputs)
        .map_err(|e| e.to_string())?;
    b.operator(
        Box::new(Sink::new(format!("sink{ci}"), join_out_schema(), out)),
        vec![Input::Op(jn)],
    )
    .map_err(|e| e.to_string())?;
    Ok(src_ids)
}

fn build(spec: &FuzzSpec, tier: Option<TierConfig>) -> Result<Built, String> {
    let mut b = GraphBuilder::new();
    let mut handles = Vec::new();
    for (ci, comp) in spec.comps.iter().enumerate() {
        let out = CollectedSink::default();
        let src_ids = append_component(&mut b, comp, ci, tier, out.clone())?;
        handles.push((src_ids, out));
    }
    let graph = b.build().map_err(|e| e.to_string())?;
    Ok(Built { graph, handles })
}

/// A globally ordered ingest schedule: all events of all sources, sorted
/// by arrival instant, stable within each source.
struct GEvent {
    arrival: u64,
    comp: usize,
    src: usize,
    ev: Ev,
}

fn merged_events(spec: &FuzzSpec) -> Vec<GEvent> {
    let mut all = Vec::new();
    for (ci, comp) in spec.comps.iter().enumerate() {
        for (si, s) in comp.sources.iter().enumerate() {
            for ev in &s.events {
                all.push(GEvent {
                    arrival: ev.arrival(),
                    comp: ci,
                    src: si,
                    ev: *ev,
                });
            }
        }
    }
    // Stable sort preserves each source's own event order under arrival
    // ties while interleaving sources deterministically.
    all.sort_by_key(|g| (g.arrival, g.comp, g.src));
    all
}

/// The feedback configuration the `fb=on` matrix cells run under:
/// deliberately harsh watermarks (any queued tuple is pressure, two are
/// critical) so signals fire constantly — with both degradation knobs
/// (shedding, slack tightening) off, the engine's output must still be
/// byte-identical to the no-feedback oracle. That is the advisory-path
/// equivalence guarantee.
fn advisory_feedback() -> FeedbackConfig {
    FeedbackConfig::new(Watermarks::new(1, 2))
}

fn run_serial(
    spec: &FuzzSpec,
    policy: EtsPolicy,
    sched: SchedPolicy,
    feedback: Option<FeedbackConfig>,
    tier: Option<TierConfig>,
) -> Result<Vec<Vec<(u64, i64)>>, String> {
    let built = build(spec, tier)?;
    let mut exec = Executor::new(
        built.graph,
        VirtualClock::shared(),
        CostModel::free(),
        policy,
    )
    .with_sched_policy(sched)
    .with_check_mode(CheckMode::Strict);
    if let Some(fb) = feedback {
        exec = exec.with_feedback(fb);
    }

    let drain = |exec: &mut Executor| -> Result<(), String> {
        let taken = exec
            .run_until_quiescent(MAX_STEPS)
            .map_err(|e| e.to_string())?;
        if taken >= MAX_STEPS {
            return Err(format!(
                "step budget ({MAX_STEPS}) exhausted without quiescence"
            ));
        }
        Ok(())
    };

    let mut pending: Option<u64> = None;
    for g in merged_events(spec) {
        if pending.is_some_and(|a| a != g.arrival) {
            drain(&mut exec)?;
        }
        pending = Some(g.arrival);
        exec.clock().advance_to(Timestamp::from_micros(g.arrival));
        let sid = built.handles[g.comp].0[g.src];
        let src = &spec.comps[g.comp].sources[g.src];
        match g.ev {
            Ev::Data { ts, v, .. } => exec
                .ingest(
                    sid,
                    Tuple::data(Timestamp::from_micros(ts), payload(src, v)),
                )
                .map_err(|e| e.to_string())?,
            Ev::Heartbeat { ts, .. } => exec
                .ingest_heartbeat(sid, Timestamp::from_micros(ts))
                .map_err(|e| e.to_string())?,
        }
    }
    drain(&mut exec)?;
    for (src_ids, _) in &built.handles {
        for &sid in src_ids {
            exec.close_source(sid).map_err(|e| e.to_string())?;
        }
    }
    drain(&mut exec)?;
    let violations = exec.stats().invariant_violations;
    if violations != 0 {
        return Err(format!("{violations} invariant violation(s) counted"));
    }
    Ok(built
        .handles
        .iter()
        .map(|(_, out)| out.0.lock().unwrap().clone())
        .collect())
}

fn run_parallel(
    spec: &FuzzSpec,
    policy: EtsPolicy,
    sched: SchedPolicy,
    workers: usize,
    feedback: Option<FeedbackConfig>,
) -> Result<Vec<Vec<(u64, i64)>>, String> {
    let built = build(spec, None)?;
    let mut config = ParallelConfig::new(CostModel::free(), policy, workers)
        .with_sched_policy(sched)
        .with_check_mode(CheckMode::Strict);
    config.feedback = feedback;
    let pex = ParallelExecutor::new(built.graph, config);

    let mut pending: Option<u64> = None;
    for g in merged_events(spec) {
        if pending.is_some_and(|a| a != g.arrival) {
            pex.run_until_quiescent(MAX_STEPS)
                .map_err(|e| e.to_string())?;
        }
        pending = Some(g.arrival);
        pex.advance_to(Timestamp::from_micros(g.arrival))
            .map_err(|e| e.to_string())?;
        let sid = built.handles[g.comp].0[g.src];
        let src = &spec.comps[g.comp].sources[g.src];
        match g.ev {
            Ev::Data { ts, v, .. } => pex
                .ingest(
                    sid,
                    Tuple::data(Timestamp::from_micros(ts), payload(src, v)),
                )
                .map_err(|e| e.to_string())?,
            Ev::Heartbeat { ts, .. } => pex
                .ingest_heartbeat(sid, Timestamp::from_micros(ts))
                .map_err(|e| e.to_string())?,
        }
    }
    pex.run_until_quiescent(MAX_STEPS)
        .map_err(|e| e.to_string())?;
    for (src_ids, _) in &built.handles {
        for &sid in src_ids {
            pex.close_source(sid).map_err(|e| e.to_string())?;
        }
    }
    pex.run_until_quiescent(MAX_STEPS)
        .map_err(|e| e.to_string())?;
    let snap = pex.snapshot().map_err(|e| e.to_string())?;
    if snap.stats.invariant_violations != 0 {
        return Err(format!(
            "{} invariant violation(s) counted",
            snap.stats.invariant_violations
        ));
    }
    Ok(built
        .handles
        .iter()
        .map(|(_, out)| out.0.lock().unwrap().clone())
        .collect())
}

/// Runs each component through a [`ShardedExecutor`]: tuples whole-row
/// key-partitioned across `shards` exchange queues, each shard a full
/// replica of the component pipeline, outputs timestamp-merged back into
/// one stream whose per-shard frontier floors the sentinel layer checks
/// for consistency. Components are independent, so each gets its own
/// sharded engine while the global arrival schedule is replayed across
/// all of them (quiescence barriers between arrival epochs, as in the
/// serial and parallel cells).
fn run_sharded(
    spec: &FuzzSpec,
    policy: EtsPolicy,
    sched: SchedPolicy,
    shards: usize,
) -> Result<Vec<Vec<(u64, i64)>>, String> {
    let mut execs = Vec::new();
    let mut outs = Vec::new();
    let mut src_ids: Vec<Vec<SourceId>> = Vec::new();
    for (ci, comp) in spec.comps.iter().enumerate() {
        let out = CollectedSink::default();
        let mut config = ShardedConfig::new(CostModel::free(), policy, shards)
            .with_sched_policy(sched)
            .with_check_mode(CheckMode::Strict);
        if comp.join.is_some() {
            // Every matching combination has equal values across inputs
            // (hash keys or the explicit equality condition), so routing
            // each input on column 0 keeps combinations whole per shard.
            config = config.with_keys(vec![ShardKey::Column(0); comp.sources.len()]);
        }
        let merge_schema = if comp.join.is_some() {
            join_out_schema()
        } else {
            schema()
        };
        let mut ids = Vec::new();
        let sx = ShardedExecutor::new(
            |replica, shard_out: ShardOutput| {
                let mut b = GraphBuilder::new();
                let sids = append_component(&mut b, comp, ci, None, shard_out).map_err(|e| {
                    millstream_types::Error::graph(format!("shard replica build: {e}"))
                })?;
                if replica == 0 {
                    ids = sids;
                }
                b.build()
            },
            merge_schema,
            Box::new(out.clone()),
            config,
        )
        .map_err(|e| e.to_string())?;
        execs.push(sx);
        outs.push(out);
        src_ids.push(ids);
    }

    let drain_all = |execs: &mut [ShardedExecutor]| -> Result<(), String> {
        for sx in execs.iter_mut() {
            let taken = sx
                .run_until_quiescent(MAX_STEPS)
                .map_err(|e| e.to_string())?;
            if taken >= MAX_STEPS {
                return Err(format!(
                    "step budget ({MAX_STEPS}) exhausted without quiescence"
                ));
            }
        }
        Ok(())
    };

    let mut pending: Option<u64> = None;
    for g in merged_events(spec) {
        if pending.is_some_and(|a| a != g.arrival) {
            drain_all(&mut execs)?;
        }
        pending = Some(g.arrival);
        let sid = src_ids[g.comp][g.src];
        let src = &spec.comps[g.comp].sources[g.src];
        let sx = &mut execs[g.comp];
        sx.advance_to(Timestamp::from_micros(g.arrival))
            .map_err(|e| e.to_string())?;
        match g.ev {
            Ev::Data { ts, v, .. } => sx
                .ingest(
                    sid,
                    Tuple::data(Timestamp::from_micros(ts), payload(src, v)),
                )
                .map_err(|e| e.to_string())?,
            Ev::Heartbeat { ts, .. } => sx
                .ingest_heartbeat(sid, Timestamp::from_micros(ts))
                .map_err(|e| e.to_string())?,
        }
    }
    drain_all(&mut execs)?;
    for (ci, ids) in src_ids.iter().enumerate() {
        for &sid in ids {
            execs[ci].close_source(sid).map_err(|e| e.to_string())?;
        }
    }
    drain_all(&mut execs)?;
    for sx in &execs {
        let snap = sx.snapshot().map_err(|e| e.to_string())?;
        if snap.stats.invariant_violations != 0 {
            return Err(format!(
                "{} invariant violation(s) counted",
                snap.stats.invariant_violations
            ));
        }
        if snap.frontier_violations != 0 {
            return Err(format!(
                "{} frontier-consistency violation(s) at the merge input",
                snap.frontier_violations
            ));
        }
    }
    Ok(outs
        .iter()
        .map(|out| out.0.lock().unwrap().clone())
        .collect())
}

/// Checks one engine run's sink outputs against the oracle.
fn check_outputs(
    spec: &FuzzSpec,
    outputs: &[Vec<(u64, i64)>],
    label: &str,
    failures: &mut Vec<String>,
) {
    for (ci, comp) in spec.comps.iter().enumerate() {
        let out = &outputs[ci];
        if let Some(w) = out.windows(2).find(|w| w[0].0 > w[1].0) {
            failures.push(format!(
                "{label}: component {ci} sink order regression ({} then {})",
                w[0].0, w[1].0
            ));
            continue;
        }
        match expected(comp) {
            Expected::Exact(want) => {
                let mut got = out.clone();
                got.sort_unstable();
                if got != want {
                    failures.push(format!(
                        "{label}: component {ci} mismatch: {} row(s) delivered, {} expected{}",
                        got.len(),
                        want.len(),
                        first_diff(&got, &want)
                    ));
                }
            }
            Expected::ValuesOnly(want) => {
                let mut got: Vec<i64> = out.iter().map(|r| r.1).collect();
                got.sort_unstable();
                if got != want {
                    failures.push(format!(
                        "{label}: component {ci} value-multiset mismatch: {} row(s) delivered, {} expected",
                        got.len(),
                        want.len()
                    ));
                }
            }
        }
    }
}

/// Oracle for a 3-way join component: every combination of one data tuple
/// per input whose members all lie within `w` of the combination's
/// maximum timestamp M — the symmetric-window containment the probe
/// enforces — with all three values equal (hash keys for `Keyed`, the
/// explicit condition for `Conditioned`). Each combination is emitted
/// exactly once, when its last member probes, at timestamp M, and the
/// sink records the first output column: input 0's value.
fn expected_join(comp: &CompSpec, w: u64) -> Expected {
    let input = |i: usize| -> Vec<(u64, i64)> {
        comp.sources[i]
            .events
            .iter()
            .filter_map(|e| match *e {
                Ev::Data { ts, v, .. } => Some((ts, v)),
                Ev::Heartbeat { .. } => None,
            })
            .collect()
    };
    let (a, b, c) = (input(0), input(1), input(2));
    let mut rows = Vec::new();
    for &(ta, va) in &a {
        for &(tb, vb) in &b {
            if vb != va {
                continue;
            }
            for &(tc, vc) in &c {
                if vc != va {
                    continue;
                }
                let m = ta.max(tb).max(tc);
                if m - ta <= w && m - tb <= w && m - tc <= w {
                    rows.push((m, va));
                }
            }
        }
    }
    rows.sort_unstable();
    Expected::Exact(rows)
}

fn first_diff(got: &[(u64, i64)], want: &[(u64, i64)]) -> String {
    for i in 0..got.len().max(want.len()) {
        let g = got.get(i);
        let w = want.get(i);
        if g != w {
            return format!("; first diff at row {i}: got {g:?}, want {w:?}");
        }
    }
    String::new()
}

/// Runs the full engine matrix for one seed; returns failure descriptions
/// (empty = clean).
pub fn fuzz_seed(seed: u64) -> Vec<String> {
    let spec = gen_spec(seed);
    let mut policies = vec![EtsPolicy::None];
    if !spec.any_unordered() {
        policies.push(EtsPolicy::on_demand());
    }
    let mut failures = Vec::new();
    for &policy in &policies {
        for sched in [SchedPolicy::DepthFirst, SchedPolicy::RoundRobin] {
            for workers in [1usize, 4] {
                for feedback in [None, Some(advisory_feedback())] {
                    let fb = if feedback.is_some() { "on" } else { "off" };
                    let label = format!(
                        "seed {seed} [policy={policy:?} sched={sched:?} workers={workers} fb={fb}]"
                    );
                    let result = if workers == 1 {
                        run_serial(&spec, policy, sched, feedback, None)
                    } else {
                        run_parallel(&spec, policy, sched, workers, feedback)
                    };
                    match result {
                        Err(e) => failures.push(format!("{label}: {e}")),
                        Ok(outputs) => check_outputs(&spec, &outputs, &label, &mut failures),
                    }
                }
            }
            // Exchange-edge cells: the same spec sharded across worker
            // threads behind whole-row key partitioning, including the
            // shards=1 degenerate path (router + merge stage with a
            // single queue behind them).
            for shards in [1usize, 2, 4] {
                let label =
                    format!("seed {seed} [policy={policy:?} sched={sched:?} shards={shards}]");
                match run_sharded(&spec, policy, sched, shards) {
                    Err(e) => failures.push(format!("{label}: {e}")),
                    Ok(outputs) => check_outputs(&spec, &outputs, &label, &mut failures),
                }
            }
        }
    }
    // Tiered-join cells: every join spec reruns with the join state
    // compacting aged rows into columnar runs — once never spilling
    // (unbounded) and once spilling every run (budget 0, an aggressive
    // hot fraction so compaction fires constantly). Output must stay
    // byte-identical to the untiered cells above; the oracle check pins
    // that.
    if spec.comps.iter().any(|c| c.join.is_some()) {
        for (label_budget, budget) in [("unbounded", u64::MAX), ("tiny", 0)] {
            let tier = TierConfig {
                budget,
                hot_fraction: 0.25,
                min_run_rows: 4,
            };
            let label = format!("seed {seed} [tier={label_budget}]");
            match run_serial(
                &spec,
                EtsPolicy::None,
                SchedPolicy::DepthFirst,
                None,
                Some(tier),
            ) {
                Err(e) => failures.push(format!("{label}: {e}")),
                Ok(outputs) => check_outputs(&spec, &outputs, &label, &mut failures),
            }
        }
    }
    failures
}

/// Aggregate result of a fuzz campaign.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Seeds exercised.
    pub seeds: u64,
    /// Engine runs executed (matrix cells across all seeds).
    pub runs: u64,
    /// Failure descriptions, each prefixed with its seed and matrix cell.
    pub failures: Vec<String>,
}

/// Fuzzes `count` consecutive seeds starting at `base`.
pub fn fuzz_range(base: u64, count: u64) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    for seed in base..base.saturating_add(count) {
        let spec = gen_spec(seed);
        // policies × scheds × (workers × feedback {off, advisory-on}
        // + shards {1, 2, 4}), plus the two tiered-join cells for join
        // specs (unbounded and always-spill budgets).
        let mut cells = if spec.any_unordered() { 14 } else { 28 };
        if spec.comps.iter().any(|c| c.join.is_some()) {
            cells += 2;
        }
        summary.seeds += 1;
        summary.runs += cells;
        summary.failures.extend(fuzz_seed(seed));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = format!("{:?}", gen_spec(42));
        let b = format!("{:?}", gen_spec(42));
        assert_eq!(a, b);
        assert_ne!(a, format!("{:?}", gen_spec(43)), "seeds diverge");
        assert_eq!(describe_seed(42), describe_seed(42));
    }

    #[test]
    fn heartbeats_are_valid_by_construction() {
        for seed in 0..64 {
            for comp in gen_spec(seed).comps {
                for s in comp.sources {
                    for (i, ev) in s.events.iter().enumerate() {
                        if let Ev::Heartbeat { ts, .. } = *ev {
                            let min_future = s.events[i + 1..]
                                .iter()
                                .filter_map(|e| match *e {
                                    Ev::Data { ts, .. } => Some(ts),
                                    Ev::Heartbeat { .. } => None,
                                })
                                .min();
                            assert!(
                                min_future.is_none_or(|m| m >= ts),
                                "seed {seed}: heartbeat at {ts} overtakes future data"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn small_seed_range_is_clean() {
        for seed in 0..8 {
            let failures = fuzz_seed(seed);
            assert!(failures.is_empty(), "{}", failures.join("\n"));
        }
    }

    /// Both join-component kinds must actually be exercised: the first
    /// keyed and the first conditioned join seed each run the full matrix
    /// clean (serial, parallel, and key-sharded cells against the
    /// combination oracle).
    #[test]
    fn join_components_are_generated_and_clean() {
        let find = |kind: JoinKind| {
            (0..64).find(|&seed| {
                gen_spec(seed)
                    .comps
                    .iter()
                    .any(|c| c.join.is_some_and(|(k, _)| k == kind))
            })
        };
        for kind in [JoinKind::Keyed, JoinKind::Conditioned] {
            let Some(seed) = find(kind) else {
                panic!("no {kind:?} join component in the first 64 seeds")
            };
            assert!(describe_seed(seed).contains("join3"));
            let failures = fuzz_seed(seed);
            assert!(failures.is_empty(), "{}", failures.join("\n"));
        }
    }

    /// The spill representation must actually be exercised: some seed in
    /// the default sweep generates a wide source, and the first such seed
    /// runs the full matrix clean.
    #[test]
    fn wide_row_sources_are_generated_and_clean() {
        let wide_seed = (0..64).find(|&seed| {
            gen_spec(seed)
                .comps
                .iter()
                .any(|c| c.sources.iter().any(|s| s.wide))
        });
        let Some(seed) = wide_seed else {
            panic!("no wide source in the first 64 seeds — spill path untested")
        };
        assert!(describe_seed(seed).contains("wide"));
        let failures = fuzz_seed(seed);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }
}
