//! The discrete-event simulation driver.
//!
//! Plays the role of the paper's external wrappers and of wall-clock time:
//! it schedules stochastic arrivals (and, for experiment line B, periodic
//! heartbeats), delivers them to the executor's source buffers, and
//! interleaves event delivery with single executor steps so that CPU
//! contention is modelled at microsecond granularity. When the executor is
//! quiescent the virtual clock jumps to the next event — this jump *is* the
//! idle-waiting the paper measures.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use millstream_exec::{Activity, ExecStats, Executor, NodeId, SourceId};
use millstream_metrics::{LatencyRecorder, RunMetrics};
use millstream_ops::SinkCollector;
use millstream_types::{Result, Schema, TimeDelta, Timestamp, TimestampKind, Tuple};

use crate::events::{Event, EventKind, EventQueue};
use crate::workload::{ArrivalProcess, PayloadGen};

/// Description of one input stream fed by the driver.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream name (matches the graph source).
    pub name: String,
    /// Row schema.
    pub schema: Schema,
    /// Timestamp discipline.
    pub kind: TimestampKind,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Payload generator.
    pub payload: PayloadGen,
    /// If set, periodic heartbeat punctuation is injected into this stream
    /// at the given period (experiment line B).
    pub heartbeat_period: Option<TimeDelta>,
    /// For [`TimestampKind::External`] streams: fixed transfer delay
    /// between the application timestamp and physical arrival at the DSMS.
    pub external_delay: TimeDelta,
    /// For [`TimestampKind::External`] streams: additional *random* delay
    /// sampled uniformly in `[0, external_jitter]` per tuple. A non-zero
    /// jitter produces genuinely out-of-order application timestamps, so
    /// the graph source must be unordered and feed a `Reorder` stage.
    pub external_jitter: TimeDelta,
}

impl StreamSpec {
    /// A minimal internal-timestamped stream.
    pub fn internal(
        name: impl Into<String>,
        schema: Schema,
        process: ArrivalProcess,
        payload: PayloadGen,
    ) -> Self {
        StreamSpec {
            name: name.into(),
            schema,
            kind: TimestampKind::Internal,
            process,
            payload,
            heartbeat_period: None,
            external_delay: TimeDelta::ZERO,
            external_jitter: TimeDelta::ZERO,
        }
    }
}

/// Sink collector that records latency into a shared recorder, usable both
/// by the driver (to read) and the sink (to write).
#[derive(Clone, Default)]
pub struct SharedLatencyCollector {
    recorder: Rc<RefCell<LatencyRecorder>>,
    delivered: Rc<Cell<u64>>,
}

impl SharedLatencyCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of data tuples delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Snapshot of the recorder.
    pub fn recorder(&self) -> LatencyRecorder {
        self.recorder.borrow().clone()
    }
}

impl SinkCollector for SharedLatencyCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.recorder
            .borrow_mut()
            .record(now.duration_since(tuple.entry));
        self.delivered.set(self.delivered.get() + 1);
    }
}

struct StreamRuntime {
    spec: StreamSpec,
    source: SourceId,
    seq: u64,
    /// Tuples delivered at the pending arrival epoch.
    pending_batch: u32,
    /// Monotonization floor for external application timestamps.
    last_app_ts: Timestamp,
    ingested: u64,
    heartbeats: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The paper-style combined metrics.
    pub metrics: RunMetrics,
    /// Executor counters.
    pub exec: ExecStats,
    /// On-demand ETS generated per source (by stream index).
    pub ets_per_stream: Vec<u64>,
    /// Heartbeats injected per stream (line B).
    pub heartbeats_per_stream: Vec<u64>,
    /// Data tuples ingested per stream.
    pub ingested_per_stream: Vec<u64>,
}

/// Drives an [`Executor`] with stochastic arrivals on a virtual timeline.
pub struct Simulation {
    executor: Executor,
    events: EventQueue,
    rng: SmallRng,
    streams: Vec<StreamRuntime>,
    collector: SharedLatencyCollector,
    monitor: Option<NodeId>,
    end: Timestamp,
}

impl Simulation {
    /// Creates a simulation over a prepared executor.
    ///
    /// * `streams` pairs each graph source with its workload spec;
    /// * `collector` must be the collector installed in the graph's sink;
    /// * `monitor` selects the IWP node whose idle-waiting is tracked.
    pub fn new(
        mut executor: Executor,
        streams: Vec<(SourceId, StreamSpec)>,
        collector: SharedLatencyCollector,
        monitor: Option<NodeId>,
        seed: u64,
    ) -> Result<Self> {
        for (_, spec) in &streams {
            spec.process.validate()?;
        }
        if let Some(node) = monitor {
            executor.monitor_idle(node);
        }
        Ok(Simulation {
            executor,
            events: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            streams: streams
                .into_iter()
                .map(|(source, spec)| StreamRuntime {
                    spec,
                    source,
                    seq: 0,
                    pending_batch: 1,
                    last_app_ts: Timestamp::ZERO,
                    ingested: 0,
                    heartbeats: 0,
                })
                .collect(),
            collector,
            monitor,
            end: Timestamp::ZERO,
        })
    }

    /// Access to the executor (e.g. for graph inspection after a run).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Runs for `duration` of virtual time and reports the metrics.
    pub fn run(&mut self, duration: TimeDelta) -> Result<SimReport> {
        self.end = self.executor.clock().now() + duration;
        self.schedule_initial();

        loop {
            // Deliver everything due at the current instant.
            let now = self.executor.clock().now();
            while let Some(event) = self.events.pop_due(now) {
                self.handle(event)?;
            }
            if self.executor.step()? == Activity::Quiescent {
                match self.events.peek_time() {
                    Some(t) => self.executor.clock().advance_to(t),
                    None => break,
                }
            }
        }
        self.executor.finish_idle();
        Ok(self.report())
    }

    fn schedule_initial(&mut self) {
        let start = self.executor.clock().now();
        for (i, s) in self.streams.iter_mut().enumerate() {
            let (gap, batch) = s.spec.process.next_arrival(&mut self.rng);
            s.pending_batch = batch;
            let t = start + gap;
            if t <= self.end {
                self.events.push(Event {
                    time: t,
                    kind: EventKind::Arrival { stream: i },
                });
            }
            if let Some(period) = s.spec.heartbeat_period {
                let t = start + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream: i },
                    });
                }
            }
        }
    }

    fn handle(&mut self, event: Event) -> Result<()> {
        match event.kind {
            EventKind::Arrival { stream } => {
                let batch = self.streams[stream].pending_batch;
                for _ in 0..batch {
                    self.ingest_one(stream, event.time)?;
                }
                // Schedule the next epoch relative to this one's nominal
                // time (the arrival process is exogenous to CPU load).
                let (gap, next_batch) = self.streams[stream]
                    .spec
                    .process
                    .next_arrival(&mut self.rng);
                let t = event.time + gap;
                if t <= self.end {
                    self.streams[stream].pending_batch = next_batch;
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Arrival { stream },
                    });
                }
            }
            EventKind::Heartbeat { stream } => {
                // Heartbeats are stamped by the wrapper's clock on entry.
                let now = self.executor.clock().now();
                let source = self.streams[stream].source;
                self.executor.ingest_heartbeat(source, now)?;
                self.streams[stream].heartbeats += 1;
                let period = self.streams[stream]
                    .spec
                    .heartbeat_period
                    .expect("heartbeat event only scheduled with a period");
                let t = event.time + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream },
                    });
                }
            }
        }
        Ok(())
    }

    fn ingest_one(&mut self, stream: usize, event_time: Timestamp) -> Result<()> {
        let now = self.executor.clock().now();
        let s = &mut self.streams[stream];
        let row = s.spec.payload.generate(&mut self.rng, s.seq);
        s.seq += 1;
        s.ingested += 1;
        let tuple = match s.spec.kind {
            // Internal timestamps are assigned from the system clock on
            // entry; entry time equals the timestamp.
            TimestampKind::Internal => Tuple::data(now, row),
            // Latent streams carry no meaningful timestamp yet; stamp the
            // entry clock so ordering bookkeeping stays trivial.
            TimestampKind::Latent => Tuple::data(now, row),
            TimestampKind::External => {
                let jitter = s.spec.external_jitter.as_micros();
                if jitter == 0 {
                    // Application timestamp precedes physical arrival by the
                    // configured transfer delay; monotonized defensively.
                    let app = event_time
                        .saturating_sub(s.spec.external_delay)
                        .max(s.last_app_ts);
                    s.last_app_ts = app;
                    Tuple::data_with_entry(app, now, row)
                } else {
                    // Random per-tuple delay: application timestamps arrive
                    // genuinely out of order (bounded by the jitter span);
                    // the graph's Reorder stage restores the contract.
                    use rand::Rng;
                    let extra = TimeDelta::from_micros(self.rng.gen_range(0..=jitter));
                    let app = event_time
                        .saturating_sub(s.spec.external_delay)
                        .saturating_sub(extra);
                    Tuple::data_with_entry(app, now, row)
                }
            }
        };
        self.executor.ingest(s.source, tuple)
    }

    fn report(&self) -> SimReport {
        let clock_end = self.executor.clock().now();
        let graph = self.executor.graph();
        let idle = self
            .monitor
            .and_then(|n| self.executor.idle_tracker(n))
            .map(|t| t.summarize(clock_end))
            .unwrap_or(millstream_metrics::IdleSummary {
                idle_fraction: 0.0,
                episodes: 0,
                longest_episode_ms: 0.0,
                total_idle_ms: 0.0,
            });
        let exec = self.executor.stats();
        SimReport {
            metrics: RunMetrics {
                latency: self.collector.recorder().summarize(),
                idle,
                peak_queue_tuples: graph.tracker().peak(),
                punctuation_enqueued: graph.tracker().punctuation_enqueued(),
                delivered: self.collector.delivered(),
                run_seconds: clock_end.as_secs_f64(),
                work_units: exec.work_units,
            },
            exec,
            ets_per_stream: self
                .streams
                .iter()
                .map(|s| graph.source(s.source).ets_generated)
                .collect(),
            heartbeats_per_stream: self.streams.iter().map(|s| s.heartbeats).collect(),
            ingested_per_stream: self.streams.iter().map(|s| s.ingested).collect(),
        }
    }
}
