//! The discrete-event simulation driver.
//!
//! Plays the role of the paper's external wrappers and of wall-clock time:
//! it schedules stochastic arrivals (and, for experiment line B, periodic
//! heartbeats), delivers them to the executor's source buffers, and
//! interleaves event delivery with single executor steps so that CPU
//! contention is modelled at microsecond granularity. When the executor is
//! quiescent the virtual clock jumps to the next event — this jump *is* the
//! idle-waiting the paper measures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use millstream_exec::{
    Activity, ExecStats, Executor, NodeId, ParallelConfig, ParallelExecutor, QueryGraph, SourceId,
};
use millstream_metrics::{LatencyRecorder, RunMetrics};
use millstream_ops::SinkCollector;
use millstream_types::{Result, Schema, TimeDelta, Timestamp, TimestampKind, Tuple};

use crate::events::{Event, EventKind, EventQueue};
use crate::workload::{ArrivalProcess, PayloadGen};

/// Description of one input stream fed by the driver.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream name (matches the graph source).
    pub name: String,
    /// Row schema.
    pub schema: Schema,
    /// Timestamp discipline.
    pub kind: TimestampKind,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Payload generator.
    pub payload: PayloadGen,
    /// If set, periodic heartbeat punctuation is injected into this stream
    /// at the given period (experiment line B).
    pub heartbeat_period: Option<TimeDelta>,
    /// For [`TimestampKind::External`] streams: fixed transfer delay
    /// between the application timestamp and physical arrival at the DSMS.
    pub external_delay: TimeDelta,
    /// For [`TimestampKind::External`] streams: additional *random* delay
    /// sampled uniformly in `[0, external_jitter]` per tuple. A non-zero
    /// jitter produces genuinely out-of-order application timestamps, so
    /// the graph source must be unordered and feed a `Reorder` stage.
    pub external_jitter: TimeDelta,
}

impl StreamSpec {
    /// A minimal internal-timestamped stream.
    pub fn internal(
        name: impl Into<String>,
        schema: Schema,
        process: ArrivalProcess,
        payload: PayloadGen,
    ) -> Self {
        StreamSpec {
            name: name.into(),
            schema,
            kind: TimestampKind::Internal,
            process,
            payload,
            heartbeat_period: None,
            external_delay: TimeDelta::ZERO,
            external_jitter: TimeDelta::ZERO,
        }
    }
}

/// Sink collector that records latency into a shared recorder, usable both
/// by the driver (to read) and the sink (to write).
#[derive(Clone, Default)]
pub struct SharedLatencyCollector {
    recorder: Arc<Mutex<LatencyRecorder>>,
    delivered: Arc<AtomicU64>,
}

impl SharedLatencyCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of data tuples delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Snapshot of the recorder.
    pub fn recorder(&self) -> LatencyRecorder {
        self.recorder.lock().unwrap().clone()
    }
}

impl SinkCollector for SharedLatencyCollector {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.recorder
            .lock()
            .unwrap()
            .record(now.duration_since(tuple.entry));
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

struct StreamRuntime {
    spec: StreamSpec,
    source: SourceId,
    seq: u64,
    /// Tuples delivered at the pending arrival epoch.
    pending_batch: u32,
    /// Monotonization floor for external application timestamps.
    last_app_ts: Timestamp,
    ingested: u64,
    heartbeats: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The paper-style combined metrics.
    pub metrics: RunMetrics,
    /// Executor counters.
    pub exec: ExecStats,
    /// On-demand ETS generated per source (by stream index).
    pub ets_per_stream: Vec<u64>,
    /// Heartbeats injected per stream (line B).
    pub heartbeats_per_stream: Vec<u64>,
    /// Data tuples ingested per stream.
    pub ingested_per_stream: Vec<u64>,
}

/// Drives an [`Executor`] with stochastic arrivals on a virtual timeline.
pub struct Simulation {
    executor: Executor,
    events: EventQueue,
    rng: SmallRng,
    streams: Vec<StreamRuntime>,
    collector: SharedLatencyCollector,
    monitor: Option<NodeId>,
    end: Timestamp,
}

impl Simulation {
    /// Creates a simulation over a prepared executor.
    ///
    /// * `streams` pairs each graph source with its workload spec;
    /// * `collector` must be the collector installed in the graph's sink;
    /// * `monitor` selects the IWP node whose idle-waiting is tracked.
    pub fn new(
        mut executor: Executor,
        streams: Vec<(SourceId, StreamSpec)>,
        collector: SharedLatencyCollector,
        monitor: Option<NodeId>,
        seed: u64,
    ) -> Result<Self> {
        for (_, spec) in &streams {
            spec.process.validate()?;
        }
        if let Some(node) = monitor {
            executor.monitor_idle(node);
        }
        Ok(Simulation {
            executor,
            events: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            streams: streams
                .into_iter()
                .map(|(source, spec)| StreamRuntime {
                    spec,
                    source,
                    seq: 0,
                    pending_batch: 1,
                    last_app_ts: Timestamp::ZERO,
                    ingested: 0,
                    heartbeats: 0,
                })
                .collect(),
            collector,
            monitor,
            end: Timestamp::ZERO,
        })
    }

    /// Access to the executor (e.g. for graph inspection after a run).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Runs for `duration` of virtual time and reports the metrics.
    pub fn run(&mut self, duration: TimeDelta) -> Result<SimReport> {
        self.end = self.executor.clock().now() + duration;
        self.schedule_initial();

        loop {
            // Deliver everything due at the current instant.
            let now = self.executor.clock().now();
            while let Some(event) = self.events.pop_due(now) {
                self.handle(event)?;
            }
            if self.executor.step()? == Activity::Quiescent {
                match self.events.peek_time() {
                    Some(t) => self.executor.clock().advance_to(t),
                    None => break,
                }
            }
        }
        self.executor.finish_idle();
        Ok(self.report())
    }

    fn schedule_initial(&mut self) {
        let start = self.executor.clock().now();
        for (i, s) in self.streams.iter_mut().enumerate() {
            let (gap, batch) = s.spec.process.next_arrival(&mut self.rng);
            s.pending_batch = batch;
            let t = start + gap;
            if t <= self.end {
                self.events.push(Event {
                    time: t,
                    kind: EventKind::Arrival { stream: i },
                });
            }
            if let Some(period) = s.spec.heartbeat_period {
                let t = start + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream: i },
                    });
                }
            }
        }
    }

    fn handle(&mut self, event: Event) -> Result<()> {
        match event.kind {
            EventKind::Arrival { stream } => {
                let batch = self.streams[stream].pending_batch;
                for _ in 0..batch {
                    self.ingest_one(stream, event.time)?;
                }
                // Schedule the next epoch relative to this one's nominal
                // time (the arrival process is exogenous to CPU load).
                let (gap, next_batch) = self.streams[stream]
                    .spec
                    .process
                    .next_arrival(&mut self.rng);
                let t = event.time + gap;
                if t <= self.end {
                    self.streams[stream].pending_batch = next_batch;
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Arrival { stream },
                    });
                }
            }
            EventKind::Heartbeat { stream } => {
                // Heartbeats are stamped by the wrapper's clock on entry.
                let now = self.executor.clock().now();
                let source = self.streams[stream].source;
                self.executor.ingest_heartbeat(source, now)?;
                self.streams[stream].heartbeats += 1;
                let period = self.streams[stream]
                    .spec
                    .heartbeat_period
                    .expect("heartbeat event only scheduled with a period");
                let t = event.time + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream },
                    });
                }
            }
        }
        Ok(())
    }

    fn ingest_one(&mut self, stream: usize, event_time: Timestamp) -> Result<()> {
        let now = self.executor.clock().now();
        let tuple = synthesize_tuple(&mut self.streams[stream], &mut self.rng, event_time, now);
        self.executor.ingest(self.streams[stream].source, tuple)
    }

    fn report(&self) -> SimReport {
        let clock_end = self.executor.clock().now();
        let graph = self.executor.graph();
        let idle = self
            .monitor
            .and_then(|n| self.executor.idle_tracker(n))
            .map(|t| t.summarize(clock_end))
            .unwrap_or(millstream_metrics::IdleSummary {
                idle_fraction: 0.0,
                episodes: 0,
                longest_episode_ms: 0.0,
                total_idle_ms: 0.0,
            });
        let exec = self.executor.stats();
        SimReport {
            metrics: RunMetrics {
                latency: self.collector.recorder().summarize(),
                idle,
                peak_queue_tuples: graph.tracker().peak(),
                punctuation_enqueued: graph.tracker().punctuation_enqueued(),
                delivered: self.collector.delivered(),
                run_seconds: clock_end.as_secs_f64(),
                work_units: exec.work_units,
            },
            exec,
            ets_per_stream: self
                .streams
                .iter()
                .map(|s| graph.source(s.source).ets_generated)
                .collect(),
            heartbeats_per_stream: self.streams.iter().map(|s| s.heartbeats).collect(),
            ingested_per_stream: self.streams.iter().map(|s| s.ingested).collect(),
        }
    }
}

/// Builds the next tuple for `s` arriving nominally at `event_time`, with
/// `now` as the wrapper's entry clock. Shared by the serial and parallel
/// drivers so both synthesize identical payload/timestamp sequences from
/// the same seed.
fn synthesize_tuple(
    s: &mut StreamRuntime,
    rng: &mut SmallRng,
    event_time: Timestamp,
    now: Timestamp,
) -> Tuple {
    let row = s.spec.payload.generate(rng, s.seq);
    s.seq += 1;
    s.ingested += 1;
    match s.spec.kind {
        // Internal timestamps are assigned from the system clock on
        // entry; entry time equals the timestamp.
        TimestampKind::Internal => Tuple::data(now, row),
        // Latent streams carry no meaningful timestamp yet; stamp the
        // entry clock so ordering bookkeeping stays trivial.
        TimestampKind::Latent => Tuple::data(now, row),
        TimestampKind::External => {
            let jitter = s.spec.external_jitter.as_micros();
            if jitter == 0 {
                // Application timestamp precedes physical arrival by the
                // configured transfer delay; monotonized defensively.
                let app = event_time
                    .saturating_sub(s.spec.external_delay)
                    .max(s.last_app_ts);
                s.last_app_ts = app;
                Tuple::data_with_entry(app, now, row)
            } else {
                // Random per-tuple delay: application timestamps arrive
                // genuinely out of order (bounded by the jitter span);
                // the graph's Reorder stage restores the contract.
                use rand::Rng;
                let extra = TimeDelta::from_micros(rng.gen_range(0..=jitter));
                let app = event_time
                    .saturating_sub(s.spec.external_delay)
                    .saturating_sub(extra);
                Tuple::data_with_entry(app, now, row)
            }
        }
    }
}

/// Drives a [`ParallelExecutor`] with the same stochastic event calendar
/// as [`Simulation`], one arrival epoch at a time.
///
/// Where the serial driver interleaves event delivery with *single*
/// executor steps (modelling one CPU contended by every operator), the
/// parallel driver has no shared CPU to contend for: each component runs
/// on its own worker with a private virtual clock. The driver therefore
/// advances in **epochs** — deliver everything due at the next event time,
/// then run every component to quiescence in parallel — and stamps
/// entry/internal timestamps with the nominal event time rather than a
/// CPU-lagged clock. With the same seed, payload and arrival sequences are
/// identical to the serial driver's; only the CPU-contention model
/// differs.
pub struct ParallelSimulation {
    pex: ParallelExecutor,
    events: EventQueue,
    rng: SmallRng,
    streams: Vec<StreamRuntime>,
    collector: SharedLatencyCollector,
    monitor: Option<NodeId>,
    end: Timestamp,
}

impl ParallelSimulation {
    /// Creates a parallel simulation over a query graph.
    ///
    /// The graph is partitioned into connected components and spread over
    /// at most `config.workers` threads. Arguments mirror
    /// [`Simulation::new`].
    pub fn new(
        graph: QueryGraph,
        config: ParallelConfig,
        streams: Vec<(SourceId, StreamSpec)>,
        collector: SharedLatencyCollector,
        monitor: Option<NodeId>,
        seed: u64,
    ) -> Result<Self> {
        for (_, spec) in &streams {
            spec.process.validate()?;
        }
        let pex = ParallelExecutor::new(graph, config);
        if let Some(node) = monitor {
            pex.monitor_idle(node)?;
        }
        Ok(ParallelSimulation {
            pex,
            events: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            streams: streams
                .into_iter()
                .map(|(source, spec)| StreamRuntime {
                    spec,
                    source,
                    seq: 0,
                    pending_batch: 1,
                    last_app_ts: Timestamp::ZERO,
                    ingested: 0,
                    heartbeats: 0,
                })
                .collect(),
            collector,
            monitor,
            end: Timestamp::ZERO,
        })
    }

    /// Access to the parallel executor (e.g. to inspect the partition).
    pub fn executor(&self) -> &ParallelExecutor {
        &self.pex
    }

    /// Runs for `duration` of virtual time and reports the metrics.
    pub fn run(&mut self, duration: TimeDelta) -> Result<SimReport> {
        self.end = Timestamp::ZERO + duration;
        self.schedule_initial(Timestamp::ZERO);

        while let Some(t) = self.events.peek_time() {
            // Every component clock reaches the epoch time before its
            // events land, so entry stamps are monotone per source.
            self.pex.advance_to(t)?;
            while let Some(event) = self.events.pop_due(t) {
                self.handle(event)?;
            }
            self.pex.run_until_quiescent(u64::MAX)?;
        }
        self.pex.finish_idle()?;
        self.report()
    }

    fn schedule_initial(&mut self, start: Timestamp) {
        for (i, s) in self.streams.iter_mut().enumerate() {
            let (gap, batch) = s.spec.process.next_arrival(&mut self.rng);
            s.pending_batch = batch;
            let t = start + gap;
            if t <= self.end {
                self.events.push(Event {
                    time: t,
                    kind: EventKind::Arrival { stream: i },
                });
            }
            if let Some(period) = s.spec.heartbeat_period {
                let t = start + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream: i },
                    });
                }
            }
        }
    }

    fn handle(&mut self, event: Event) -> Result<()> {
        match event.kind {
            EventKind::Arrival { stream } => {
                let batch = self.streams[stream].pending_batch;
                for _ in 0..batch {
                    let tuple = synthesize_tuple(
                        &mut self.streams[stream],
                        &mut self.rng,
                        event.time,
                        event.time,
                    );
                    self.pex.ingest(self.streams[stream].source, tuple)?;
                }
                let (gap, next_batch) = self.streams[stream]
                    .spec
                    .process
                    .next_arrival(&mut self.rng);
                let t = event.time + gap;
                if t <= self.end {
                    self.streams[stream].pending_batch = next_batch;
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Arrival { stream },
                    });
                }
            }
            EventKind::Heartbeat { stream } => {
                // The wrapper's clock is the event calendar itself here:
                // heartbeats are stamped with their nominal emission time.
                let source = self.streams[stream].source;
                self.pex.ingest_heartbeat(source, event.time)?;
                self.streams[stream].heartbeats += 1;
                let period = self.streams[stream]
                    .spec
                    .heartbeat_period
                    .expect("heartbeat event only scheduled with a period");
                let t = event.time + period;
                if t <= self.end {
                    self.events.push(Event {
                        time: t,
                        kind: EventKind::Heartbeat { stream },
                    });
                }
            }
        }
        Ok(())
    }

    fn report(&self) -> Result<SimReport> {
        let snap = self.pex.snapshot()?;
        // Components finish at different virtual times; the run extends to
        // the latest of them.
        let clock_end = snap
            .component_clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(Timestamp::ZERO);
        let idle = self
            .monitor
            .and_then(|n| snap.idle.iter().find(|(id, _)| *id == n))
            .map(|(_, t)| t.summarize(clock_end))
            .unwrap_or(millstream_metrics::IdleSummary {
                idle_fraction: 0.0,
                episodes: 0,
                longest_episode_ms: 0.0,
                total_idle_ms: 0.0,
            });
        Ok(SimReport {
            metrics: RunMetrics {
                latency: self.collector.recorder().summarize(),
                idle,
                // Sum of per-component peaks: an upper bound on the
                // whole-graph peak, since component peaks need not
                // coincide in time.
                peak_queue_tuples: snap.component_peaks.iter().sum(),
                punctuation_enqueued: snap.punctuation_enqueued,
                delivered: self.collector.delivered(),
                run_seconds: clock_end.as_secs_f64(),
                work_units: snap.stats.work_units,
            },
            exec: snap.stats,
            ets_per_stream: self
                .streams
                .iter()
                .map(|s| snap.ets_per_source[s.source.index()])
                .collect(),
            heartbeats_per_stream: self.streams.iter().map(|s| s.heartbeats).collect(),
            ingested_per_stream: self.streams.iter().map(|s| s.ingested).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_exec::{CostModel, EtsPolicy, GraphBuilder, Input, VirtualClock};
    use millstream_ops::{Filter, Sink};
    use millstream_types::{DataType, Expr, Field, Schema};

    use crate::workload::{ArrivalProcess, PayloadGen};

    fn value_schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    /// Two independent filter→sink chains — a 2-component graph. Both
    /// sinks share the collector so `delivered` counts the whole graph.
    fn two_chain_graph(collector: SharedLatencyCollector) -> (QueryGraph, Vec<SourceId>) {
        let schema = value_schema();
        let mut b = GraphBuilder::new();
        let mut sources = Vec::new();
        for name in ["a", "b"] {
            let s = b.source(name, schema.clone(), TimestampKind::Internal);
            let f = b
                .operator(
                    Box::new(Filter::new(
                        format!("filter_{name}"),
                        schema.clone(),
                        Expr::col(0).lt(Expr::lit(500)),
                    )),
                    vec![Input::Source(s)],
                )
                .unwrap();
            b.operator(
                Box::new(Sink::new(
                    format!("sink_{name}"),
                    schema.clone(),
                    collector.clone(),
                )),
                vec![Input::Op(f)],
            )
            .unwrap();
            sources.push(s);
        }
        (b.build().unwrap(), sources)
    }

    fn specs(sources: &[SourceId]) -> Vec<(SourceId, StreamSpec)> {
        sources
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (
                    s,
                    StreamSpec::internal(
                        format!("s{i}"),
                        value_schema(),
                        ArrivalProcess::Poisson {
                            rate_hz: 40.0 + 10.0 * i as f64,
                        },
                        PayloadGen::UniformInt { modulus: 1000 },
                    ),
                )
            })
            .collect()
    }

    /// Same seed → the parallel driver ingests the same tuples and the
    /// payload-deterministic filters deliver the same number of rows as
    /// the serial driver, despite the different CPU-contention model.
    #[test]
    fn parallel_driver_matches_serial_delivery() {
        let duration = TimeDelta::from_secs(20);
        let seed = 7;

        let serial_collector = SharedLatencyCollector::new();
        let (graph, sources) = two_chain_graph(serial_collector.clone());
        let executor = Executor::new(
            graph,
            VirtualClock::shared(),
            CostModel::default(),
            EtsPolicy::on_demand(),
        );
        let mut sim =
            Simulation::new(executor, specs(&sources), serial_collector, None, seed).unwrap();
        let serial = sim.run(duration).unwrap();

        let par_collector = SharedLatencyCollector::new();
        let (graph, sources) = two_chain_graph(par_collector.clone());
        let config = ParallelConfig::new(CostModel::default(), EtsPolicy::on_demand(), 2);
        let mut psim =
            ParallelSimulation::new(graph, config, specs(&sources), par_collector, None, seed)
                .unwrap();
        let parallel = psim.run(duration).unwrap();

        assert_eq!(psim.executor().num_components(), 2);
        assert_eq!(serial.ingested_per_stream, parallel.ingested_per_stream);
        assert_eq!(serial.metrics.delivered, parallel.metrics.delivered);
        assert!(parallel.metrics.run_seconds > 0.0);
    }
}
