//! # millstream-sim
//!
//! The discrete-event simulation substrate that stands in for the paper's
//! wall-clock testbed (a P4 2.8 GHz Linux host running Stream Mill):
//!
//! * [`EventQueue`] — a deterministic event calendar on virtual time;
//! * [`ArrivalProcess`] / [`PayloadGen`] — Poisson, constant-rate and
//!   bursty workload generators (§6's tuple generator);
//! * [`Simulation`] — the driver that plays external wrappers, feeding the
//!   executor and jumping the clock across idle periods;
//! * [`ParallelSimulation`] — the same event calendar driving a
//!   [`millstream_exec::ParallelExecutor`], one worker thread per plan
//!   component;
//! * [`run_union_experiment`] / [`run_join_experiment`] — the prebuilt
//!   Fig. 4 experiment in its four §6 variants (lines A/B/C/D), the basis
//!   for every figure reproduction in `millstream-bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod driver;
mod events;
mod experiment;
mod fuzz;
mod replay;
mod workload;

pub use driver::{ParallelSimulation, SharedLatencyCollector, SimReport, Simulation, StreamSpec};
pub use events::{Event, EventKind, EventQueue};
pub use experiment::{
    run_disorder_experiment, run_join_experiment, run_union_experiment, DisorderExperiment,
    DisorderReport, JoinExperiment, Strategy, UnionExperiment,
};
pub use fuzz::{describe_seed, fuzz_range, fuzz_seed, FuzzSummary};
pub use replay::{parse_trace, replay, ReplayReport, TraceRecord};
pub use workload::{ArrivalProcess, PayloadGen};
