//! Differential test: the ingest-path semantics of [`ParallelExecutor`]
//! must match the serial [`Executor`] exactly — closed-source errors,
//! punctuation-misuse errors, stale-heartbeat drops and the
//! `dropped_stale_heartbeats` counter all have to survive the command
//! channel and merge correctly into [`ParallelSnapshot`].
//!
//! The only sanctioned difference is *when* an error is observed: the
//! serial executor reports it from the ingest call itself, the parallel
//! executor from the next quiescence barrier (fire-and-forget sends).

use std::sync::{Arc, Mutex};

use millstream_exec::{
    CostModel, EtsPolicy, ExecStats, Executor, GraphBuilder, Input, ParallelConfig,
    ParallelExecutor, QueryGraph, SourceId, VirtualClock,
};
use millstream_ops::{Sink, SinkCollector, Union};
use millstream_types::{DataType, Error, Field, Schema, Timestamp, TimestampKind, Tuple, Value};

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// S1, S2 → ∪ → sink — one component, so serial and parallel host the
/// same graph shape.
fn union_graph() -> (QueryGraph, [SourceId; 2], Out) {
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema(), TimestampKind::Internal);
    let s2 = b.source("S2", schema(), TimestampKind::Internal);
    let u = b
        .operator(
            Box::new(Union::new("∪", schema(), 2)),
            vec![Input::Source(s1), Input::Source(s2)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema(), out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    (b.build().unwrap(), [s1, s2], out)
}

fn data(ts: u64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
}

/// A uniform driver interface over both executors so the same script runs
/// verbatim against each backend.
enum Backend {
    Serial(Box<Executor>),
    Parallel(Box<ParallelExecutor>),
}

impl Backend {
    fn serial(graph: QueryGraph) -> Backend {
        Backend::Serial(Box::new(Executor::new(
            graph,
            VirtualClock::shared(),
            CostModel::free(),
            EtsPolicy::None,
        )))
    }

    fn parallel(graph: QueryGraph) -> Backend {
        Backend::Parallel(Box::new(ParallelExecutor::new(
            graph,
            ParallelConfig::new(CostModel::free(), EtsPolicy::None, 2),
        )))
    }

    /// Ingest + run to quiescence, reporting any error either side raises.
    fn ingest(&mut self, s: SourceId, t: Tuple) -> Result<(), Error> {
        match self {
            Backend::Serial(e) => {
                e.clock().advance_to(t.ts);
                e.ingest(s, t)?;
                e.run_until_quiescent(1_000_000).map(|_| ())
            }
            Backend::Parallel(p) => {
                p.advance_to(t.ts)?;
                p.ingest(s, t)?;
                p.run_until_quiescent(1_000_000).map(|_| ())
            }
        }
    }

    fn heartbeat(&mut self, s: SourceId, ts: Timestamp) -> Result<(), Error> {
        match self {
            Backend::Serial(e) => {
                e.ingest_heartbeat(s, ts)?;
                e.run_until_quiescent(1_000_000).map(|_| ())
            }
            Backend::Parallel(p) => {
                p.ingest_heartbeat(s, ts)?;
                p.run_until_quiescent(1_000_000).map(|_| ())
            }
        }
    }

    fn close(&mut self, s: SourceId) -> Result<(), Error> {
        match self {
            Backend::Serial(e) => {
                e.close_source(s)?;
                e.run_until_quiescent(1_000_000).map(|_| ())
            }
            Backend::Parallel(p) => {
                p.close_source(s)?;
                p.run_until_quiescent(1_000_000).map(|_| ())
            }
        }
    }

    fn stats(&self) -> ExecStats {
        match self {
            Backend::Serial(e) => e.stats(),
            Backend::Parallel(p) => p.snapshot().unwrap().stats,
        }
    }
}

/// Runs the same ingest script against a backend, returning per-step
/// outcomes (Ok/Err with message) plus the final stats and deliveries.
fn run_script(
    mut b: Backend,
    [s1, s2]: [SourceId; 2],
    out: &Out,
) -> (Vec<Result<(), String>>, ExecStats, Vec<Tuple>) {
    let mut log = Vec::new();
    let step = |r: Result<(), Error>| -> Result<(), String> { r.map_err(|e| e.to_string()) };

    // Normal data flow.
    log.push(step(b.ingest(s1, data(10))));
    log.push(step(b.ingest(s2, data(20))));
    // Stale heartbeats: below S1's data high-water, then at (== duplicate
    // of) an already-asserted punctuation mark. Both are silent drops that
    // must bump the counter.
    log.push(step(b.heartbeat(s1, Timestamp::from_micros(5))));
    log.push(step(b.heartbeat(s1, Timestamp::from_micros(30))));
    log.push(step(b.heartbeat(s1, Timestamp::from_micros(30))));
    // Punctuation misuse through the data path: a structured error.
    log.push(step(
        b.ingest(s2, Tuple::punctuation(Timestamp::from_micros(40))),
    ));
    // Close S2, then every further touch of it errors.
    log.push(step(b.close(s2)));
    log.push(step(b.ingest(s2, data(50))));
    log.push(step(b.heartbeat(s2, Timestamp::from_micros(60))));
    // Closing twice stays idempotent, and S1 still works.
    log.push(step(b.close(s2)));
    log.push(step(b.ingest(s1, data(70))));
    log.push(step(b.close(s1)));

    let stats = b.stats();
    let delivered = out.0.lock().unwrap().clone();
    (log, stats, delivered)
}

#[test]
fn parallel_ingest_semantics_match_serial() {
    let (sg, s_ids, s_out) = union_graph();
    let (pg, p_ids, p_out) = union_graph();
    let (s_log, s_stats, s_del) = run_script(Backend::serial(sg), s_ids, &s_out);
    let (p_log, p_stats, p_del) = run_script(Backend::parallel(pg), p_ids, &p_out);

    assert_eq!(s_log, p_log, "identical per-step outcomes (incl. messages)");
    assert_eq!(s_del, p_del, "identical deliveries");
    assert_eq!(s_stats, p_stats, "identical merged stats");

    // Spot-check the interesting outcomes are what the serial contract
    // promises (so the differential test cannot vacuously pass on two
    // equally wrong backends).
    assert!(s_log[0].is_ok() && s_log[1].is_ok());
    assert!(
        s_log[2].is_ok() && s_log[3].is_ok() && s_log[4].is_ok(),
        "stale heartbeats are silent drops"
    );
    assert_eq!(
        s_stats.dropped_stale_heartbeats, 2,
        "one below data high-water, one duplicate punctuation; the first \
         heartbeat at 30 is fresh"
    );
    let misuse = s_log[5].as_ref().unwrap_err();
    assert!(misuse.contains("ingest_heartbeat"), "{misuse}");
    assert!(s_log[6].is_ok(), "close is clean");
    let closed = s_log[7].as_ref().unwrap_err();
    assert!(closed.contains("closed"), "{closed}");
    let closed_hb = s_log[8].as_ref().unwrap_err();
    assert!(closed_hb.contains("closed"), "{closed_hb}");
    assert!(s_log[9].is_ok(), "double close is idempotent");
    assert!(s_log[10].is_ok(), "the open source still ingests");
}

/// The counter must also merge across *components*: two independent
/// streams each dropping stale heartbeats on different workers sum into
/// one `ParallelSnapshot` figure.
#[test]
fn stale_heartbeat_counter_merges_across_components() {
    let mut b = GraphBuilder::new();
    let s1 = b.source("A", schema(), TimestampKind::Internal);
    let s2 = b.source("B", schema(), TimestampKind::Internal);
    for (s, name) in [(s1, "sink-a"), (s2, "sink-b")] {
        b.operator(
            Box::new(Sink::new(name, schema(), Out::default())),
            vec![Input::Source(s)],
        )
        .unwrap();
    }
    let pex = ParallelExecutor::new(
        b.build().unwrap(),
        ParallelConfig::new(CostModel::free(), EtsPolicy::None, 2),
    );
    assert_eq!(pex.num_components(), 2);
    for s in [s1, s2] {
        pex.ingest(s, data(100)).unwrap();
        pex.ingest_heartbeat(s, Timestamp::from_micros(10)).unwrap(); // stale
    }
    pex.run_until_quiescent(1_000_000).unwrap();
    let snap = pex.snapshot().unwrap();
    assert_eq!(snap.stats.dropped_stale_heartbeats, 2);
    assert_eq!(
        snap.component_stats
            .iter()
            .map(|s| s.dropped_stale_heartbeats)
            .collect::<Vec<_>>(),
        vec![1, 1],
        "one drop on each worker"
    );
}

/// `ingest_batch` (coordinator and handle flavors) must be equivalent to
/// the same tuples fed one at a time — identical deliveries and stats —
/// while crossing the worker channel in far fewer commands.
#[test]
fn batched_ingest_matches_tuple_at_a_time() {
    const N: u64 = 100;
    let ts = |src: u64, i: u64| (i * 2 + src + 1) * 10;

    // Reference: tuple-at-a-time through the coalescing `ingest` path.
    let (graph, [a1, a2], out_a) = union_graph();
    let pex_a = ParallelExecutor::new(
        graph,
        ParallelConfig::new(CostModel::free(), EtsPolicy::None, 2),
    );
    for i in 0..N {
        pex_a.ingest(a1, data(ts(0, i))).unwrap();
        pex_a.ingest(a2, data(ts(1, i))).unwrap();
    }

    // Batched: the same tuples in runs of 25, S1 through the coordinator
    // (merging with its coalescing buffer), S2 through a handle.
    let (graph, [b1, b2], out_b) = union_graph();
    let pex_b = ParallelExecutor::new(
        graph,
        ParallelConfig::new(CostModel::free(), EtsPolicy::None, 2),
    );
    let h2 = pex_b.ingest_handle(b2);
    // Seed the coalescing buffer so at least one batch exercises the
    // merge-with-pending branch instead of the ship-as-is fast path.
    pex_b.ingest(b1, data(ts(0, 0))).unwrap();
    for chunk in 0..4 {
        let run = |src: u64, skip: u64| -> Vec<Tuple> {
            (chunk * 25..(chunk + 1) * 25)
                .filter(|&i| i >= skip)
                .map(|i| data(ts(src, i)))
                .collect()
        };
        pex_b.ingest_batch(b1, run(0, 1)).unwrap();
        h2.ingest_batch(run(1, 0)).unwrap();
    }

    for (pex, [s1, s2]) in [(&pex_a, [a1, a2]), (&pex_b, [b1, b2])] {
        pex.advance_to(Timestamp::from_micros(ts(1, N - 1)))
            .unwrap();
        pex.close_source(s1).unwrap();
        pex.close_source(s2).unwrap();
        pex.run_until_quiescent(1_000_000).unwrap();
    }

    let del_a = out_a.0.lock().unwrap().clone();
    let del_b = out_b.0.lock().unwrap().clone();
    assert_eq!(del_a.len(), (2 * N) as usize);
    assert_eq!(del_a, del_b, "batched ingest changes no delivery");
    assert_eq!(
        pex_a.snapshot().unwrap().stats,
        pex_b.snapshot().unwrap().stats,
        "batched ingest changes no counter"
    );
    // 100 coordinator-side tuples crossed in ≤ 5 IngestBatch commands
    // (1 seed-flush + 4 runs); everything else is advance/close/run
    // traffic, nowhere near one command per tuple.
    assert!(
        pex_b.commands_sent() <= 20,
        "batched path sent {} commands",
        pex_b.commands_sent()
    );
}
