//! Property tests over the executor itself: for randomized pipeline
//! shapes, workloads and scheduling policies, the engine must
//!
//! * deliver every tuple that passes its filters (conservation, under
//!   on-demand ETS + end-of-stream),
//! * keep sink streams timestamp-ordered,
//! * never leave data queued after EOS, and
//! * behave identically under depth-first and round-robin scheduling with
//!   respect to *what* is delivered (scheduling changes only the order of
//!   execution, never the result set).

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use millstream_exec::{
    CostModel, EtsPolicy, Executor, GraphBuilder, Input, SchedPolicy, VirtualClock,
};
use millstream_ops::{Filter, Project, Sink, SinkCollector, Union};
use millstream_types::{DataType, Expr, Field, Schema, Timestamp, Tuple, Value};

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// A per-branch stage chain: each element is a filter threshold (None = a
/// pass-through projection instead).
type BranchSpec = Vec<Option<i64>>;

/// Builds: per branch, source → (σ|π)* → ∪ → sink. Returns the executor,
/// the source ids and the output collector.
fn build(
    branches: &[BranchSpec],
    sched: SchedPolicy,
) -> (Executor, Vec<millstream_exec::SourceId>, Out) {
    let mut b = GraphBuilder::new();
    let mut inputs = Vec::new();
    let mut sources = Vec::new();
    for (bi, stages) in branches.iter().enumerate() {
        let s = b.source(
            format!("s{bi}"),
            schema(),
            millstream_types::TimestampKind::Internal,
        );
        sources.push(s);
        let mut input = Input::Source(s);
        for (si, stage) in stages.iter().enumerate() {
            let node = match stage {
                Some(threshold) => b
                    .operator(
                        Box::new(Filter::new(
                            format!("σ{bi}.{si}"),
                            schema(),
                            Expr::col(0).lt(Expr::lit(*threshold)),
                        )),
                        vec![input],
                    )
                    .unwrap(),
                None => b
                    .operator(
                        Box::new(Project::new(
                            format!("π{bi}.{si}"),
                            schema(),
                            vec![Expr::col(0)],
                        )),
                        vec![input],
                    )
                    .unwrap(),
            };
            input = Input::Op(node);
        }
        inputs.push(input);
    }
    let out = Out::default();
    let top = if inputs.len() == 1 {
        inputs.pop().expect("one branch")
    } else {
        let u = b
            .operator(Box::new(Union::new("∪", schema(), inputs.len())), inputs)
            .unwrap();
        Input::Op(u)
    };
    // A bare source cannot feed a sink directly in one-branch/zero-stage
    // shapes; pad with an identity projection.
    let top = match top {
        Input::Source(_) => Input::Op(
            b.operator(
                Box::new(Project::new("π_id", schema(), vec![Expr::col(0)])),
                vec![top],
            )
            .unwrap(),
        ),
        other => other,
    };
    b.operator(
        Box::new(Sink::new("sink", schema(), out.clone())),
        vec![top],
    )
    .unwrap();
    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::on_demand(),
    )
    .with_sched_policy(sched);
    (exec, sources, out)
}

/// How many of the branch's filters a value survives.
fn survives(stages: &BranchSpec, v: i64) -> bool {
    stages
        .iter()
        .all(|s| s.is_none_or(|threshold| v < threshold))
}

fn branch_spec() -> impl Strategy<Value = BranchSpec> {
    prop::collection::vec(prop::option::of(0i64..100), 0..3)
}

/// Arrivals: (branch selector, gap µs, value).
fn arrivals() -> impl Strategy<Value = Vec<(usize, u64, i64)>> {
    prop::collection::vec((0usize..4, 1u64..5_000, 0i64..100), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn conservation_order_and_schedule_equivalence(
        branches in prop::collection::vec(branch_spec(), 1..4),
        arrivals in arrivals(),
    ) {
        let mut per_sched = Vec::new();
        for sched in [SchedPolicy::DepthFirst, SchedPolicy::RoundRobin] {
            let (mut exec, sources, out) = build(&branches, sched);
            let mut expected = 0usize;
            let mut ts = 0u64;
            for &(sel, gap, v) in &arrivals {
                let bi = sel % branches.len();
                ts += gap;
                exec.clock().advance_to(Timestamp::from_micros(ts));
                let stamp = exec.clock().now();
                exec.ingest(sources[bi], Tuple::data(stamp, vec![Value::Int(v)]))
                    .unwrap();
                exec.run_until_quiescent(100_000).unwrap();
                if survives(&branches[bi], v) {
                    expected += 1;
                }
            }
            for &s in &sources {
                exec.close_source(s).unwrap();
            }
            exec.run_until_quiescent(1_000_000).unwrap();

            let delivered = out.0.lock().unwrap().clone();
            // Conservation: exactly the surviving tuples arrive.
            prop_assert_eq!(
                delivered.len(),
                expected,
                "sched {:?}, branches {:?}",
                sched,
                branches
            );
            // Ordering at the sink.
            let stamps: Vec<_> = delivered.iter().map(|t| t.ts).collect();
            let mut sorted = stamps.clone();
            sorted.sort();
            prop_assert_eq!(&stamps, &sorted);
            // Nothing (data) left anywhere.
            prop_assert_eq!(exec.graph().tracker().data_total(), 0);
            // Multiset of delivered values for cross-schedule comparison.
            let mut values: Vec<i64> = delivered
                .iter()
                .map(|t| t.values().unwrap()[0].as_int().unwrap())
                .collect();
            values.sort();
            per_sched.push(values);
        }
        prop_assert_eq!(
            &per_sched[0],
            &per_sched[1],
            "depth-first and round-robin must deliver the same multiset"
        );
    }
}
