//! Property tests over `QueryGraph::partition_components`: for randomized
//! multi-chain graphs (with component construction interleaved, so global
//! ids do not come in component order), the partition must
//!
//! * place every operator node and every source in exactly one component,
//!   and never share a buffer between components,
//! * preserve the relative (bottom-up) node order inside each component,
//! * be deterministic — building the same graph twice partitions it
//!   identically, and
//! * route ingest correctly — a tuple pushed at a global source comes out
//!   of that chain's sink under the `ParallelExecutor`, exactly as under
//!   the serial `Executor`.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use millstream_exec::{
    CostModel, EtsPolicy, Executor, GraphBuilder, Input, NodeId, ParallelConfig, ParallelExecutor,
    QueryGraph, SourceId, VirtualClock,
};
use millstream_ops::{Filter, Sink, SinkCollector, Union};
use millstream_types::{DataType, Expr, Field, Schema, Timestamp, TimestampKind, Tuple, Value};

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// One independent chain: `sources` parallel inputs (unioned when > 1),
/// then `filters` pass-all filter stages, then a sink.
#[derive(Debug, Clone)]
struct ChainSpec {
    sources: usize,
    filters: usize,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (1usize..3, 0usize..4).prop_map(|(sources, filters)| ChainSpec { sources, filters })
}

/// Builds the chains **interleaved**: all sources first, then one operator
/// stage per chain per round. Global node ids therefore alternate between
/// components, exercising the id remapping rather than a trivial
/// contiguous split.
fn build(chains: &[ChainSpec]) -> (QueryGraph, Vec<Vec<SourceId>>, Vec<Out>) {
    let mut b = GraphBuilder::new();
    let sources: Vec<Vec<SourceId>> = chains
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            (0..c.sources)
                .map(|si| b.source(format!("s{ci}.{si}"), schema(), TimestampKind::Internal))
                .collect()
        })
        .collect();

    // Stage 0: per chain, the merge point (union, or a single pass filter).
    let mut tops: Vec<NodeId> = Vec::new();
    for (ci, chain_sources) in sources.iter().enumerate() {
        let inputs: Vec<Input> = chain_sources.iter().map(|&s| Input::Source(s)).collect();
        let top = if inputs.len() > 1 {
            b.operator(
                Box::new(Union::new(format!("∪{ci}"), schema(), inputs.len())),
                inputs,
            )
            .unwrap()
        } else {
            b.operator(
                Box::new(Filter::new(
                    format!("σ{ci}.in"),
                    schema(),
                    Expr::col(0).ge(Expr::lit(i64::MIN)),
                )),
                inputs,
            )
            .unwrap()
        };
        tops.push(top);
    }
    // Filter stages, round-robin across chains.
    let max_filters = chains.iter().map(|c| c.filters).max().unwrap_or(0);
    for round in 0..max_filters {
        for (ci, c) in chains.iter().enumerate() {
            if round < c.filters {
                tops[ci] = b
                    .operator(
                        Box::new(Filter::new(
                            format!("σ{ci}.{round}"),
                            schema(),
                            Expr::col(0).ge(Expr::lit(i64::MIN)),
                        )),
                        vec![Input::Op(tops[ci])],
                    )
                    .unwrap();
            }
        }
    }
    let outs: Vec<Out> = chains.iter().map(|_| Out::default()).collect();
    for (ci, &top) in tops.iter().enumerate() {
        b.operator(
            Box::new(Sink::new(format!("sink{ci}"), schema(), outs[ci].clone())),
            vec![Input::Op(top)],
        )
        .unwrap();
    }
    (b.build().unwrap(), sources, outs)
}

/// The partition's assignment, flattened for comparison: per component,
/// its global node ids and global source ids.
fn assignment(graph: QueryGraph) -> Vec<(Vec<usize>, Vec<usize>)> {
    graph
        .partition_components()
        .components
        .iter()
        .map(|c| {
            (
                c.nodes.iter().map(|n| n.index()).collect(),
                c.sources.iter().map(|s| s.index()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn every_id_lands_in_exactly_one_component(
        chains in prop::collection::vec(chain_spec(), 1..5),
    ) {
        let (graph, _, _) = build(&chains);
        let (num_ops, num_sources) = (graph.num_ops(), graph.num_sources());
        let partition = graph.partition_components();
        prop_assert_eq!(partition.components.len(), chains.len());

        let mut nodes: Vec<usize> = Vec::new();
        let mut sources: Vec<usize> = Vec::new();
        let mut buffers = HashSet::new();
        for comp in &partition.components {
            // Bottom-up order is preserved: local ids ascend with global.
            prop_assert!(
                comp.nodes.windows(2).all(|w| w[0] < w[1]),
                "node order not preserved: {:?}", comp.nodes
            );
            nodes.extend(comp.nodes.iter().map(|n| n.index()));
            sources.extend(comp.sources.iter().map(|s| s.index()));
            for &buf in &comp.buffers {
                prop_assert!(buffers.insert(buf), "buffer shared between components");
            }
            // The sub-graph is self-contained and sized consistently.
            prop_assert_eq!(comp.graph.num_ops(), comp.nodes.len());
            prop_assert_eq!(comp.graph.num_sources(), comp.sources.len());
        }
        nodes.sort_unstable();
        sources.sort_unstable();
        prop_assert_eq!(nodes, (0..num_ops).collect::<Vec<_>>());
        prop_assert_eq!(sources, (0..num_sources).collect::<Vec<_>>());

        // The routing table agrees with component membership.
        for (comp_idx, comp) in partition.components.iter().enumerate() {
            for (local, &global) in comp.sources.iter().enumerate() {
                let (c, l) = partition.route(global);
                prop_assert_eq!(c, comp_idx);
                prop_assert_eq!(l.index(), local);
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic(
        chains in prop::collection::vec(chain_spec(), 1..5),
    ) {
        let (first, _, _) = build(&chains);
        let (second, _, _) = build(&chains);
        prop_assert_eq!(assignment(first), assignment(second));
    }

    #[test]
    fn routed_ingest_reaches_the_same_sink(
        chains in prop::collection::vec(chain_spec(), 1..5),
        arrivals in prop::collection::vec((0usize..8, 0i64..1000), 1..40),
    ) {
        // Serial reference run.
        let (graph, sources, outs) = build(&chains);
        let mut exec = Executor::new(
            graph,
            VirtualClock::shared(),
            CostModel::default(),
            EtsPolicy::on_demand(),
        );
        let flat: Vec<SourceId> = sources.iter().flatten().copied().collect();
        for (i, &(sel, v)) in arrivals.iter().enumerate() {
            let ts = Timestamp::from_millis(i as u64);
            exec.ingest(flat[sel % flat.len()], Tuple::data(ts, vec![Value::Int(v)]))
                .unwrap();
        }
        for &s in &flat {
            exec.close_source(s).unwrap();
        }
        exec.run_until_quiescent(1_000_000).unwrap();
        let expected: Vec<Vec<Tuple>> =
            outs.iter().map(|o| o.0.lock().unwrap().clone()).collect();

        // Parallel run over the identically built graph.
        let (graph, sources, outs) = build(&chains);
        let pex = ParallelExecutor::new(
            graph,
            ParallelConfig::new(CostModel::default(), EtsPolicy::on_demand(), chains.len()),
        );
        prop_assert_eq!(pex.num_components(), chains.len());
        let flat: Vec<SourceId> = sources.iter().flatten().copied().collect();
        for (i, &(sel, v)) in arrivals.iter().enumerate() {
            let ts = Timestamp::from_millis(i as u64);
            pex.ingest(flat[sel % flat.len()], Tuple::data(ts, vec![Value::Int(v)]))
                .unwrap();
        }
        for &s in &flat {
            pex.close_source(s).unwrap();
        }
        pex.run_until_quiescent(1_000_000).unwrap();

        for (ci, out) in outs.iter().enumerate() {
            let got = out.0.lock().unwrap().clone();
            prop_assert_eq!(
                &got, &expected[ci],
                "chain {} delivered a different stream under the partition", ci
            );
        }
    }
}
