//! Feedback-punctuation integration tests: upstream pressure propagation,
//! declared load shedding, and the parallel executor's lock-free pressure
//! surface.

use std::sync::{Arc, Mutex};

use millstream_exec::{
    CostModel, EtsPolicy, Executor, FeedbackConfig, GraphBuilder, Input, ParallelConfig,
    ParallelExecutor, PressureLevel, VirtualClock, Watermarks,
};
use millstream_ops::{Filter, Reorder, Sink, SinkCollector};
use millstream_types::{
    DataType, Expr, Field, Schema, TimeDelta, Timestamp, TimestampKind, Tuple, Value,
};

#[derive(Clone, Default)]
struct Out(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Out {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

fn data(ts: u64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
}

/// source → σ → sink, with the sink collector returned for inspection.
fn build_chain() -> (millstream_exec::QueryGraph, millstream_exec::SourceId, Out) {
    let mut b = GraphBuilder::new();
    let s = b.source("S", schema(), TimestampKind::Internal);
    let f = b
        .operator(
            Box::new(Filter::new("σ", schema(), Expr::col(0).ge(Expr::lit(0)))),
            vec![Input::Source(s)],
        )
        .unwrap();
    let out = Out::default();
    b.operator(
        Box::new(Sink::new("sink", schema(), out.clone())),
        vec![Input::Op(f)],
    )
    .unwrap();
    (b.build().unwrap(), s, out)
}

/// Queue growth past the watermarks raises the source's published pressure
/// level; draining the queues restores it to Normal.
#[test]
fn pressure_rises_with_occupancy_and_recovers() {
    let (g, s, out) = build_chain();
    let mut exec = Executor::new(
        g,
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    )
    .with_feedback(FeedbackConfig::new(Watermarks::new(4, 8)));
    assert_eq!(exec.source_pressure(s), PressureLevel::Normal);

    for i in 0..6u64 {
        exec.ingest(s, data(i)).unwrap();
    }
    // Zero-step "run": no execution, just a feedback sweep over the queues.
    exec.run_until_quiescent(0).unwrap();
    assert_eq!(exec.source_pressure(s), PressureLevel::High);

    for i in 6..12u64 {
        exec.ingest(s, data(i)).unwrap();
    }
    exec.run_until_quiescent(0).unwrap();
    assert_eq!(exec.source_pressure(s), PressureLevel::Critical);

    exec.run_until_quiescent(u64::MAX).unwrap();
    assert_eq!(exec.source_pressure(s), PressureLevel::Normal);
    assert_eq!(out.0.lock().unwrap().len(), 12);
    assert!(exec.stats().feedback_signals > 0);
    assert_eq!(exec.stats().shed_tuples, 0);
}

/// With `shed` enabled, ingest under Critical pressure drops the tuple at
/// the source and counts it — never silently, never a punctuation.
#[test]
fn critical_pressure_sheds_declared_and_accounted() {
    let (g, s, out) = build_chain();
    let mut exec = Executor::new(
        g,
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    )
    .with_feedback(FeedbackConfig::new(Watermarks::new(2, 4)).with_shed(true));

    for i in 0..6u64 {
        exec.ingest(s, data(i)).unwrap();
    }
    exec.run_until_quiescent(0).unwrap();
    assert_eq!(exec.source_pressure(s), PressureLevel::Critical);

    // Under Critical: data is shed (accepted but counted, not enqueued)...
    for i in 6..11u64 {
        exec.ingest(s, data(i)).unwrap();
    }
    assert_eq!(exec.stats().shed_tuples, 5);
    assert_eq!(exec.graph().source(s).shed_tuples, 5);
    assert_eq!(exec.graph().source(s).ingested, 6);
    // ...but punctuation still flows: a heartbeat is never shed.
    exec.ingest_heartbeat(s, Timestamp::from_micros(100))
        .unwrap();

    exec.run_until_quiescent(u64::MAX).unwrap();
    // Only the pre-pressure tuples reach the sink; accounting reconciles.
    assert_eq!(out.0.lock().unwrap().len(), 6);
    assert_eq!(
        exec.graph().source(s).ingested + exec.graph().source(s).shed_tuples,
        11
    );
    // Queues drained, so pressure recovered and new data flows again.
    assert_eq!(exec.source_pressure(s), PressureLevel::Normal);
    exec.ingest(s, data(200)).unwrap();
    exec.run_until_quiescent(u64::MAX).unwrap();
    assert_eq!(out.0.lock().unwrap().len(), 7);
    assert_eq!(exec.stats().shed_tuples, 5);
}

/// Feedback with shedding and slack tightening both off must not change
/// output: pressure signalling alone is non-semantic.
#[test]
fn advisory_feedback_is_output_invariant() {
    let run = |feedback: Option<FeedbackConfig>| {
        let mut b = GraphBuilder::new();
        let s = b.unordered_source("S", schema(), TimestampKind::External);
        let r = b
            .operator(
                Box::new(Reorder::new("↻", schema(), TimeDelta::from_micros(50))),
                vec![Input::Source(s)],
            )
            .unwrap();
        let out = Out::default();
        b.operator(
            Box::new(Sink::new("sink", schema(), out.clone())),
            vec![Input::Op(r)],
        )
        .unwrap();
        let mut exec = Executor::new(
            b.build().unwrap(),
            VirtualClock::shared(),
            CostModel::free(),
            EtsPolicy::None,
        );
        if let Some(cfg) = feedback {
            exec = exec.with_feedback(cfg);
        }
        for ts in [30u64, 10, 60, 40, 90, 20, 120, 80, 150, 110] {
            exec.ingest(s, data(ts)).unwrap();
            exec.run_until_quiescent(u64::MAX).unwrap();
        }
        exec.close_source(s).unwrap();
        exec.run_until_quiescent(u64::MAX).unwrap();
        let released: Vec<u64> = out
            .0
            .lock()
            .unwrap()
            .iter()
            .map(|t| t.ts.as_micros())
            .collect();
        released
    };
    let baseline = run(None);
    // Watermark of 1 keeps the signal permanently elevated — the harshest
    // advisory case — yet output must match the no-feedback baseline.
    let advisory = run(Some(FeedbackConfig::new(Watermarks::new(1, 1))));
    assert_eq!(baseline, advisory);
}

/// The parallel executor surfaces per-source pressure and shed accounting
/// across component boundaries, lock-free.
#[test]
fn parallel_pressure_and_shed_accounting() {
    // Two independent chains → two components.
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema(), TimestampKind::Internal);
    let s2 = b.source("S2", schema(), TimestampKind::Internal);
    let out1 = Out::default();
    let out2 = Out::default();
    let f1 = b
        .operator(
            Box::new(Filter::new("σ1", schema(), Expr::col(0).ge(Expr::lit(0)))),
            vec![Input::Source(s1)],
        )
        .unwrap();
    b.operator(
        Box::new(Sink::new("sink1", schema(), out1.clone())),
        vec![Input::Op(f1)],
    )
    .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new("σ2", schema(), Expr::col(0).ge(Expr::lit(0)))),
            vec![Input::Source(s2)],
        )
        .unwrap();
    b.operator(
        Box::new(Sink::new("sink2", schema(), out2.clone())),
        vec![Input::Op(f2)],
    )
    .unwrap();

    let pex = ParallelExecutor::new(
        b.build().unwrap(),
        ParallelConfig::new(CostModel::free(), EtsPolicy::None, 2)
            .with_feedback(FeedbackConfig::new(Watermarks::new(2, 4)).with_shed(true)),
    );
    assert_eq!(pex.num_components(), 2);
    assert_eq!(pex.max_pressure(), PressureLevel::Normal);

    // Flood only S1; S2 stays calm.
    for i in 0..6u64 {
        pex.ingest(s1, data(i)).unwrap();
    }
    pex.ingest(s2, data(0)).unwrap();
    pex.run_until_quiescent(0).unwrap();
    assert_eq!(pex.source_pressure(s1), PressureLevel::Critical);
    assert_eq!(pex.source_pressure(s2), PressureLevel::Normal);
    assert_eq!(pex.max_pressure(), PressureLevel::Critical);
    assert!(pex.queued_total() >= 6);

    // Shed lands on S1 only, and the snapshot reconciles it per source.
    for i in 6..9u64 {
        pex.ingest(s1, data(i)).unwrap();
    }
    pex.barrier().unwrap();
    pex.run_until_quiescent(u64::MAX).unwrap();
    let snap = pex.snapshot().unwrap();
    assert_eq!(snap.shed_per_source, vec![3, 0]);
    assert_eq!(snap.ingested_per_source, vec![6, 1]);
    assert_eq!(snap.stats.shed_tuples, 3);
    assert_eq!(out1.0.lock().unwrap().len(), 6);
    assert_eq!(out2.0.lock().unwrap().len(), 1);
    assert_eq!(pex.max_pressure(), PressureLevel::Normal);
    assert_eq!(pex.queued_total(), 0);
}
