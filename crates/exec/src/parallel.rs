//! Parallel multi-component execution — one worker thread per connected
//! component of the query graph.
//!
//! The paper's §3 execution model is strictly single-threaded, but its
//! scheduling rules never cross a component boundary: Forward walks output
//! arcs, Encore stays on the current operator, and Backtrack walks *input*
//! arcs back to a starved source — all arcs internal to one connected
//! component. On-demand ETS generation (§4) likewise happens at the
//! starved component's own sources. Independent components are therefore
//! embarrassingly parallel, and [`ParallelExecutor`] exploits exactly
//! that: [`QueryGraph::partition_components`] splits the graph, and each
//! component's sub-graph runs on its **own unmodified single-threaded
//! [`Executor`]** hosted by a worker thread. The `RefCell` hot path is
//! untouched; only the leaf counters (clock, occupancy tracker) are
//! atomics so a component can move across the thread boundary.
//!
//! ## Cross-thread surface
//!
//! Everything crosses on **one FIFO command channel per worker** — the
//! same serialized-send discipline as `crates/rt`'s pipeline, so a
//! heartbeat or `advance_to` can never be undercut by a later data tuple
//! sent on the same worker. Workers mutate state on ingest-class commands
//! but only *execute* on an explicit [`Cmd::Run`], which preserves the
//! serial baseline's ingest-then-run interleaving exactly — queues form
//! identically, so `tests/parallel_equivalence.rs` can assert equality of
//! steps, work units, ETS counts and final clocks, not just delivery.
//!
//! ## Quiescence barrier
//!
//! [`ParallelExecutor::run_until_quiescent`] broadcasts [`Cmd::Run`] and
//! then blocks on every worker's reply. Because components are
//! independent, a component that reports quiescence cannot be re-awakened
//! by another component's progress, so one pass per component is a true
//! global quiescence check. Worker-side errors (e.g. out-of-order ingest
//! through a fire-and-forget handle) are stashed and surfaced at the next
//! barrier.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};

use std::sync::Arc;

use millstream_buffer::{CheckMode, FeedbackRegisters, OccupancyTracker, PressureLevel};
use millstream_metrics::IdleTracker;
use millstream_types::{Error, Result, Timestamp, Tuple};

use crate::clock::{CostModel, VirtualClock};
use crate::executor::{ExecOptions, ExecStats, Executor, FeedbackConfig, OpProfile, SchedPolicy};
use crate::graph::{ComponentGraph, NodeId, QueryGraph, SourceId};
use crate::strategy::EtsPolicy;

/// Construction-time configuration for a [`ParallelExecutor`] — the same
/// knobs [`Executor`] takes, plus the worker count.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Virtual CPU cost model, applied per component.
    pub cost: CostModel,
    /// Timestamp-management policy.
    pub policy: EtsPolicy,
    /// Operator-scheduling discipline inside each component.
    pub sched: SchedPolicy,
    /// Execution tuning knobs (Encore batching).
    pub opts: ExecOptions,
    /// Worker threads to spawn. Components are multiplexed round-robin
    /// onto `min(workers, components)` threads, so any positive value is
    /// valid; extra workers beyond the component count are not spawned.
    pub workers: usize,
    /// Invariant-checking override for every component executor. `None`
    /// (default) inherits the `MILLSTREAM_CHECK` environment variable.
    pub check: Option<CheckMode>,
    /// Feedback-punctuation configuration applied to every component
    /// executor. `None` (default) disables pressure signalling entirely.
    pub feedback: Option<FeedbackConfig>,
}

impl ParallelConfig {
    /// A config with default scheduling/tuning and the given essentials.
    pub fn new(cost: CostModel, policy: EtsPolicy, workers: usize) -> Self {
        ParallelConfig {
            cost,
            policy,
            sched: SchedPolicy::default(),
            opts: ExecOptions::default(),
            workers,
            check: None,
            feedback: None,
        }
    }

    /// Overrides the invariant-checking mode (builder style); the default
    /// comes from the `MILLSTREAM_CHECK` environment variable.
    pub fn with_check_mode(mut self, mode: CheckMode) -> Self {
        self.check = Some(mode);
        self
    }

    /// Selects the operator-scheduling discipline (builder style).
    pub fn with_sched_policy(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the Encore batch size (builder style).
    pub fn with_encore_batch(mut self, encore_batch: usize) -> Self {
        self.opts.encore_batch = encore_batch.max(1);
        self
    }

    /// Enables feedback punctuation on every component executor
    /// (builder style).
    pub fn with_feedback(mut self, feedback: FeedbackConfig) -> Self {
        self.feedback = Some(feedback);
        self
    }
}

/// A pool of worker threads fed by one FIFO command channel each.
///
/// This is the single home of the spawn/teardown protocol shared by
/// [`ParallelExecutor`] (per-component parallelism) and
/// [`crate::ShardedExecutor`] (intra-component exchange edges): on drop the
/// pool sends an explicit stop command to every worker and joins the
/// threads. The explicit stop beats dropping the senders — cloned handles
/// (e.g. [`IngestHandle`]) may still hold a channel open, and a worker
/// blocked in `recv()` would never observe a disconnect.
pub(crate) struct WorkerPool<C: Send + 'static> {
    senders: Vec<Sender<C>>,
    threads: Vec<JoinHandle<()>>,
    stop: fn() -> C,
}

impl<C: Send + 'static> WorkerPool<C> {
    /// Spawns one thread per entry of `states`, each running
    /// `body(receiver, state)` until the body returns (on its stop
    /// command). Threads are named `{name_prefix}-{index}`.
    pub fn spawn<S: Send + 'static>(
        name_prefix: &str,
        states: Vec<S>,
        stop: fn() -> C,
        body: fn(Receiver<C>, S),
    ) -> WorkerPool<C> {
        let mut senders = Vec::with_capacity(states.len());
        let mut threads = Vec::with_capacity(states.len());
        for (w, state) in states.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{name_prefix}-{w}"))
                    .spawn(move || body(rx, state))
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool {
            senders,
            threads,
            stop,
        }
    }

    /// The command senders, indexed by worker.
    pub fn senders(&self) -> &[Sender<C>] {
        &self.senders
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.senders.len()
    }
}

impl<C: Send + 'static> Drop for WorkerPool<C> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send((self.stop)());
        }
        self.senders.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Commands crossing from the coordinator (or ingest handles) to a worker.
enum Cmd {
    /// Ingest a data tuple at a component's local source.
    Ingest {
        comp: usize,
        source: SourceId,
        tuple: Tuple,
    },
    /// Ingest a run of data tuples at a component's local source in one
    /// command — the coordinator's coalesced fast path. Applied via
    /// [`Executor::ingest_batch`], so it is semantically one `Ingest` per
    /// tuple at a fraction of the channel round trips.
    IngestBatch {
        comp: usize,
        source: SourceId,
        tuples: Vec<Tuple>,
    },
    /// Ingest a heartbeat punctuation.
    Heartbeat {
        comp: usize,
        source: SourceId,
        ts: Timestamp,
    },
    /// Declare end-of-stream on a source.
    Close { comp: usize, source: SourceId },
    /// Advance every hosted component's clock to `ts`.
    AdvanceTo(Timestamp),
    /// Begin idle-waiting tracking for a component-local node.
    MonitorIdle { comp: usize, node: NodeId },
    /// Finalize idle trackers at the current component clocks.
    FinishIdle,
    /// Run every hosted component until quiescent (or `max_steps` each)
    /// and reply with the total steps taken, or the first stashed error.
    Run {
        max_steps: u64,
        reply: Sender<Result<u64>>,
    },
    /// Reply with a state snapshot of every hosted component plus the
    /// worker's cumulative busy nanoseconds.
    Snapshot {
        reply: Sender<(Vec<CompSnapshot>, u64)>,
    },
    /// Exit the worker loop. Sent by [`ParallelExecutor::drop`] so workers
    /// retire even while cloned [`IngestHandle`]s keep the channel open.
    Stop,
}

/// Per-component state snapshot shipped back over the snapshot barrier.
struct CompSnapshot {
    comp: usize,
    stats: ExecStats,
    profile: Vec<OpProfile>,
    /// Per local source: (on-demand ETS generated, data tuples ingested,
    /// tuples shed by feedback-declared load shedding).
    sources: Vec<(u64, u64, u64)>,
    clock: Timestamp,
    peak_queued: usize,
    total_queued: usize,
    punct_enqueued: u64,
    idle: Vec<(NodeId, IdleTracker)>,
}

/// A component hosted by a worker thread.
struct Slot {
    comp: usize,
    exec: Executor,
}

/// Converts a caught panic payload into a barrier-reportable error.
pub(crate) fn panic_error(payload: Box<dyn std::any::Any + Send>) -> Error {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    Error::runtime(format!("worker panicked: {msg}"))
}

/// Worker main loop: apply ingest-class commands in arrival order, execute
/// only on [`Cmd::Run`], stash the first error until the next barrier.
///
/// A panicking operator must not take the whole process down (the default
/// for a panic on a detached thread is an abort-on-join-less-exit or a
/// deadlocked barrier): every state-mutating command runs under
/// `catch_unwind`, the payload is converted into a runtime error, and the
/// thread keeps serving its channel so the coordinator sees the failure at
/// the next barrier like any other stashed error.
fn worker_loop(rx: Receiver<Cmd>, mut slots: Vec<Slot>) {
    let mut pending_err: Option<Error> = None;
    // Wall-clock nanoseconds spent processing commands (as opposed to
    // blocked in `recv()`): the honest busy/idle split benchmarks report.
    let mut busy_nanos: u64 = 0;
    let stash = |r: std::result::Result<(), Error>, pending: &mut Option<Error>| {
        if let Err(e) = r {
            pending.get_or_insert(e);
        }
    };
    while let Ok(cmd) = rx.recv() {
        let started = std::time::Instant::now();
        match cmd {
            Cmd::Ingest {
                comp,
                source,
                tuple,
            } => {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let slot = slots.iter_mut().find(|s| s.comp == comp).expect("routed");
                    slot.exec.ingest(source, tuple)
                }))
                .unwrap_or_else(|p| Err(panic_error(p)));
                stash(r, &mut pending_err);
            }
            Cmd::IngestBatch {
                comp,
                source,
                tuples,
            } => {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let slot = slots.iter_mut().find(|s| s.comp == comp).expect("routed");
                    slot.exec.ingest_batch(source, tuples)
                }))
                .unwrap_or_else(|p| Err(panic_error(p)));
                stash(r, &mut pending_err);
            }
            Cmd::Heartbeat { comp, source, ts } => {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let slot = slots.iter_mut().find(|s| s.comp == comp).expect("routed");
                    slot.exec.ingest_heartbeat(source, ts)
                }))
                .unwrap_or_else(|p| Err(panic_error(p)));
                stash(r, &mut pending_err);
            }
            Cmd::Close { comp, source } => {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let slot = slots.iter_mut().find(|s| s.comp == comp).expect("routed");
                    slot.exec.close_source(source)
                }))
                .unwrap_or_else(|p| Err(panic_error(p)));
                stash(r, &mut pending_err);
            }
            Cmd::AdvanceTo(ts) => {
                for slot in &mut slots {
                    slot.exec.clock().advance_to(ts);
                    slot.exec.refresh_idle();
                }
            }
            Cmd::MonitorIdle { comp, node } => {
                let slot = slots.iter_mut().find(|s| s.comp == comp).expect("routed");
                slot.exec.monitor_idle(node);
            }
            Cmd::FinishIdle => {
                for slot in &mut slots {
                    slot.exec.finish_idle();
                }
            }
            Cmd::Run { max_steps, reply } => {
                let result = match pending_err.take() {
                    Some(e) => Err(e),
                    None => {
                        // Hosted components are mutually independent, so
                        // one quiescence pass each is a complete check.
                        std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let mut taken = 0;
                            let mut outcome = Ok(());
                            for slot in &mut slots {
                                match slot.exec.run_until_quiescent(max_steps) {
                                    Ok(n) => taken += n,
                                    Err(e) => {
                                        outcome = Err(e);
                                        break;
                                    }
                                }
                            }
                            outcome.map(|()| taken)
                        }))
                        .unwrap_or_else(|p| Err(panic_error(p)))
                    }
                };
                let _ = reply.send(result);
            }
            Cmd::Snapshot { reply } => {
                let snaps = slots
                    .iter()
                    .map(|slot| CompSnapshot {
                        comp: slot.comp,
                        stats: slot.exec.stats(),
                        profile: slot.exec.profile().to_vec(),
                        sources: slot
                            .exec
                            .graph()
                            .source_ids()
                            .map(|s| {
                                let st = slot.exec.graph().source(s);
                                (st.ets_generated, st.ingested, st.shed_tuples)
                            })
                            .collect(),
                        clock: slot.exec.clock().now(),
                        peak_queued: slot.exec.graph().tracker().peak(),
                        total_queued: slot.exec.graph().total_queued(),
                        punct_enqueued: slot.exec.graph().tracker().punctuation_enqueued(),
                        idle: slot
                            .exec
                            .graph()
                            .node_ids()
                            .filter_map(|n| slot.exec.idle_tracker(n).map(|t| (n, t.clone())))
                            .collect(),
                    })
                    .collect();
                let _ = reply.send((snaps, busy_nanos));
            }
            Cmd::Stop => break,
        }
        busy_nanos += started.elapsed().as_nanos() as u64;
    }
}

/// A cloneable, `Send`-able ingest handle bound to one source. Sends are
/// fire-and-forget over the owning worker's FIFO channel; errors (closed
/// source, out-of-order tuple) surface at the next
/// [`ParallelExecutor::run_until_quiescent`] barrier.
#[derive(Clone)]
pub struct IngestHandle {
    tx: Sender<Cmd>,
    comp: usize,
    source: SourceId,
}

impl IngestHandle {
    /// Ingests a data tuple.
    pub fn ingest(&self, tuple: Tuple) -> Result<()> {
        self.tx
            .send(Cmd::Ingest {
                comp: self.comp,
                source: self.source,
                tuple,
            })
            .map_err(|_| disconnected())
    }

    /// Ingests a run of data tuples as one [`Cmd::IngestBatch`] — a
    /// single channel round trip regardless of run length. The run must
    /// respect the source's timestamp order, exactly as the same tuples
    /// fed through repeated [`IngestHandle::ingest`] calls would.
    pub fn ingest_batch(&self, tuples: Vec<Tuple>) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        self.tx
            .send(Cmd::IngestBatch {
                comp: self.comp,
                source: self.source,
                tuples,
            })
            .map_err(|_| disconnected())
    }

    /// Ingests a heartbeat punctuation.
    pub fn heartbeat(&self, ts: Timestamp) -> Result<()> {
        self.tx
            .send(Cmd::Heartbeat {
                comp: self.comp,
                source: self.source,
                ts,
            })
            .map_err(|_| disconnected())
    }

    /// Declares end-of-stream on the source.
    pub fn close(&self) -> Result<()> {
        self.tx
            .send(Cmd::Close {
                comp: self.comp,
                source: self.source,
            })
            .map_err(|_| disconnected())
    }
}

fn disconnected() -> Error {
    Error::runtime("parallel worker disconnected")
}

/// Tuples coalesced per [`Cmd::IngestBatch`] by the coordinator before the
/// run is forced onto the channel. Large enough to amortize the channel
/// round trip, small enough to keep ingest latency negligible.
pub(crate) const INGEST_BATCH: usize = 64;

/// Merged cross-component state, collected over a snapshot barrier.
#[derive(Debug, Clone)]
pub struct ParallelSnapshot {
    /// Executor counters summed over all components.
    pub stats: ExecStats,
    /// Per-operator profile in **global** node order (the order of the
    /// unpartitioned graph).
    pub profile: Vec<OpProfile>,
    /// Per **global** source: on-demand ETS generated.
    pub ets_per_source: Vec<u64>,
    /// Per **global** source: data tuples ingested.
    pub ingested_per_source: Vec<u64>,
    /// Per **global** source: tuples shed by feedback-declared load
    /// shedding (zero everywhere unless [`FeedbackConfig::shed`] is on).
    pub shed_per_source: Vec<u64>,
    /// Each component's virtual clock reading. Components run on private
    /// clocks, so there is one reading per component, not a global "now".
    pub component_clocks: Vec<Timestamp>,
    /// Each component's unmerged executor counters.
    pub component_stats: Vec<ExecStats>,
    /// Each component's peak queue occupancy. The sum is an upper bound on
    /// the whole-graph peak (component peaks need not coincide in time).
    pub component_peaks: Vec<usize>,
    /// Tuples currently queued across all components.
    pub total_queued: usize,
    /// Lifetime punctuation enqueued, summed over all components.
    pub punctuation_enqueued: u64,
    /// Idle trackers of monitored nodes, by **global** node id.
    pub idle: Vec<(NodeId, IdleTracker)>,
    /// Wall-clock nanoseconds each worker thread has spent processing
    /// commands (everything outside the blocking `recv()`); subtract from
    /// elapsed wall time for the worker's idle share.
    pub worker_busy_nanos: Vec<u64>,
}

/// Runs a multi-component [`QueryGraph`] across worker threads — one
/// single-threaded [`Executor`] per connected component, components
/// multiplexed round-robin onto `min(workers, components)` threads.
pub struct ParallelExecutor {
    /// The worker threads and their command channels.
    pool: WorkerPool<Cmd>,
    /// Per **global** source: data tuples accepted by [`Self::ingest`] but
    /// not yet shipped — the coordinator-side coalescing buffer. Flushed
    /// as one [`Cmd::IngestBatch`] when full or before any other command,
    /// preserving the per-worker FIFO discipline.
    pending: Mutex<Vec<Vec<Tuple>>>,
    /// Lifetime count of commands sent over the worker channels by this
    /// coordinator (ingest handles excluded — they own their channel
    /// clones). The batching regression test pins round trips per tuple.
    commands_sent: AtomicU64,
    /// Global source id → (component, local source id).
    source_route: Vec<(usize, SourceId)>,
    /// Global node id → (component, local node id).
    node_route: Vec<(usize, NodeId)>,
    /// Component → worker index.
    comp_worker: Vec<usize>,
    /// Component → local→global node ids (for profile merging).
    comp_nodes: Vec<Vec<NodeId>>,
    /// Component → local→global source ids.
    comp_sources: Vec<Vec<SourceId>>,
    /// Component → its executor's occupancy tracker (atomic; readable
    /// without a barrier while the worker owns the executor).
    comp_trackers: Vec<Arc<OccupancyTracker>>,
    /// Component → its executor's feedback registers (atomic; readable
    /// without a barrier). Sized by the component's local source count.
    comp_feedback: Vec<Arc<FeedbackRegisters>>,
    num_ops: usize,
    num_sources: usize,
}

impl ParallelExecutor {
    /// Partitions `graph` into connected components and spawns the worker
    /// threads. A single-component graph degenerates to one worker — the
    /// serial executor behind a channel.
    pub fn new(graph: QueryGraph, config: ParallelConfig) -> ParallelExecutor {
        let num_ops = graph.num_ops();
        let num_sources = graph.num_sources();
        let partition = graph.partition_components();
        let count = partition.components.len();
        let workers = config.workers.max(1).min(count.max(1));

        let mut comp_nodes = Vec::with_capacity(count);
        let mut comp_sources = Vec::with_capacity(count);
        let mut node_route = vec![(0usize, NodeId(0)); num_ops];
        let mut comp_worker = Vec::with_capacity(count);
        let mut comp_trackers = Vec::with_capacity(count);
        let mut comp_feedback = Vec::with_capacity(count);
        // Round-robin multiplexing: component c runs on worker c % workers.
        let mut slots_of: Vec<Vec<Slot>> = (0..workers).map(|_| Vec::new()).collect();
        for (c, part) in partition.components.into_iter().enumerate() {
            let ComponentGraph {
                graph,
                nodes,
                sources,
                ..
            } = part;
            for (local, &global) in nodes.iter().enumerate() {
                node_route[global.0] = (c, NodeId(local));
            }
            let mut exec = Executor::new(graph, VirtualClock::shared(), config.cost, config.policy)
                .with_sched_policy(config.sched)
                .with_exec_options(config.opts);
            if let Some(mode) = config.check {
                exec = exec.with_check_mode(mode);
            }
            if let Some(fb) = config.feedback {
                exec = exec.with_feedback(fb);
            }
            comp_trackers.push(exec.graph().tracker().clone());
            comp_feedback.push(exec.feedback_registers().clone());
            comp_worker.push(c % workers);
            slots_of[c % workers].push(Slot { comp: c, exec });
            comp_nodes.push(nodes);
            comp_sources.push(sources);
        }

        let pool = WorkerPool::spawn("millstream-worker", slots_of, || Cmd::Stop, worker_loop);

        ParallelExecutor {
            pool,
            pending: Mutex::new(vec![Vec::new(); num_sources]),
            commands_sent: AtomicU64::new(0),
            source_route: partition.source_map,
            node_route,
            comp_worker,
            comp_nodes,
            comp_sources,
            comp_trackers,
            comp_feedback,
            num_ops,
            num_sources,
        }
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.comp_worker.len()
    }

    /// Number of worker threads actually spawned.
    pub fn num_workers(&self) -> usize {
        self.pool.len()
    }

    /// The component a global source routes to.
    pub fn component_of(&self, source: SourceId) -> usize {
        self.source_route[source.0].0
    }

    fn sender_for(&self, comp: usize) -> &Sender<Cmd> {
        &self.pool.senders()[self.comp_worker[comp]]
    }

    /// Commands this coordinator has sent over the worker channels —
    /// coalesced batches count once. Ingest-handle traffic is not
    /// included.
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent.load(Ordering::Relaxed)
    }

    fn send(&self, comp: usize, cmd: Cmd) -> Result<()> {
        self.commands_sent.fetch_add(1, Ordering::Relaxed);
        self.sender_for(comp).send(cmd).map_err(|_| disconnected())
    }

    fn broadcast(&self, mut make: impl FnMut() -> Cmd) -> Result<()> {
        for tx in self.pool.senders() {
            self.commands_sent.fetch_add(1, Ordering::Relaxed);
            tx.send(make()).map_err(|_| disconnected())?;
        }
        Ok(())
    }

    /// Ships every coalesced ingest run as one [`Cmd::IngestBatch`]. Must
    /// precede any other command send so a heartbeat, close, or clock
    /// advance can never undercut data accepted before it.
    fn flush_pending(&self) -> Result<()> {
        let mut pending = self.pending.lock().expect("pending lock");
        for (global, run) in pending.iter_mut().enumerate() {
            if run.is_empty() {
                continue;
            }
            let (comp, local) = self.source_route[global];
            self.send(
                comp,
                Cmd::IngestBatch {
                    comp,
                    source: local,
                    tuples: std::mem::take(run),
                },
            )?;
        }
        Ok(())
    }

    /// A cloneable, `Send`-able ingest handle for a global source.
    ///
    /// Handle traffic bypasses the coordinator's coalescing buffer; mixing
    /// `ingest` and handle sends **for the same source** may reorder them
    /// relative to each other (each path is individually FIFO).
    pub fn ingest_handle(&self, source: SourceId) -> IngestHandle {
        let (comp, local) = self.source_route[source.0];
        IngestHandle {
            tx: self.sender_for(comp).clone(),
            comp,
            source: local,
        }
    }

    /// Ingests a data tuple at a global source (fire-and-forget; errors
    /// surface at the next barrier). Tuples coalesce in a per-source
    /// buffer and cross the channel as one [`Cmd::IngestBatch`] per
    /// [`INGEST_BATCH`] tuples — or earlier, when any other command needs
    /// the channel.
    pub fn ingest(&self, source: SourceId, tuple: Tuple) -> Result<()> {
        let full = {
            let mut pending = self.pending.lock().expect("pending lock");
            let run = &mut pending[source.0];
            run.push(tuple);
            (run.len() >= INGEST_BATCH).then(|| std::mem::take(run))
        };
        if let Some(tuples) = full {
            let (comp, local) = self.source_route[source.0];
            self.send(
                comp,
                Cmd::IngestBatch {
                    comp,
                    source: local,
                    tuples,
                },
            )?;
        }
        Ok(())
    }

    /// Ingests a run of data tuples at a global source with at most one
    /// channel round trip. The run joins the source's coalescing buffer
    /// so it can never reorder against tuples previously accepted by
    /// [`Self::ingest`]; a buffer at or past [`INGEST_BATCH`] ships
    /// immediately as one [`Cmd::IngestBatch`].
    pub fn ingest_batch(&self, source: SourceId, tuples: Vec<Tuple>) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        let full = {
            let mut pending = self.pending.lock().expect("pending lock");
            let run = &mut pending[source.0];
            if run.is_empty() {
                // Common case: nothing buffered, ship the caller's run
                // as-is without copying it into the buffer first.
                Some(tuples)
            } else {
                run.extend(tuples);
                (run.len() >= INGEST_BATCH).then(|| std::mem::take(run))
            }
        };
        if let Some(tuples) = full {
            let (comp, local) = self.source_route[source.0];
            self.send(
                comp,
                Cmd::IngestBatch {
                    comp,
                    source: local,
                    tuples,
                },
            )?;
        }
        Ok(())
    }

    /// Ingests a heartbeat punctuation at a global source.
    pub fn ingest_heartbeat(&self, source: SourceId, ts: Timestamp) -> Result<()> {
        self.flush_pending()?;
        let (comp, local) = self.source_route[source.0];
        self.send(
            comp,
            Cmd::Heartbeat {
                comp,
                source: local,
                ts,
            },
        )
    }

    /// Declares end-of-stream on a global source.
    pub fn close_source(&self, source: SourceId) -> Result<()> {
        self.flush_pending()?;
        let (comp, local) = self.source_route[source.0];
        self.send(
            comp,
            Cmd::Close {
                comp,
                source: local,
            },
        )
    }

    /// Advances every component's clock to `ts` (clocks never go
    /// backwards, so components already past `ts` are unaffected).
    pub fn advance_to(&self, ts: Timestamp) -> Result<()> {
        self.flush_pending()?;
        self.broadcast(|| Cmd::AdvanceTo(ts))
    }

    /// Begins idle-waiting tracking for a global node.
    pub fn monitor_idle(&self, node: NodeId) -> Result<()> {
        self.flush_pending()?;
        let (comp, local) = self.node_route[node.0];
        self.send(comp, Cmd::MonitorIdle { comp, node: local })
    }

    /// Finalizes idle trackers at the current component clocks.
    pub fn finish_idle(&self) -> Result<()> {
        self.flush_pending()?;
        self.broadcast(|| Cmd::FinishIdle)
    }

    /// The quiescence barrier: every worker runs each hosted component
    /// until quiescent (or `max_steps` per component), in parallel; the
    /// call returns once **all** components are quiescent, with the total
    /// steps taken. The first worker-side error — including errors stashed
    /// by fire-and-forget ingest since the last barrier — is returned.
    pub fn run_until_quiescent(&self, max_steps: u64) -> Result<u64> {
        self.flush_pending()?;
        let mut replies = Vec::with_capacity(self.pool.len());
        for tx in self.pool.senders() {
            let (reply_tx, reply_rx) = channel::bounded(1);
            self.commands_sent.fetch_add(1, Ordering::Relaxed);
            tx.send(Cmd::Run {
                max_steps,
                reply: reply_tx,
            })
            .map_err(|_| disconnected())?;
            replies.push(reply_rx);
        }
        let mut total = 0;
        let mut first_err = None;
        for rx in replies {
            match rx.recv().map_err(|_| disconnected())? {
                Ok(n) => total += n,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Synchronizes with every worker without executing: drains the
    /// command queues and surfaces any stashed ingest error. Makes
    /// fire-and-forget errors observable at a deterministic point.
    pub fn barrier(&self) -> Result<()> {
        self.run_until_quiescent(0).map(|_| ())
    }

    /// Tuples currently queued across every component, read lock-free from
    /// the atomic occupancy trackers — no worker barrier. The reading is a
    /// racy-but-consistent sum: each component's contribution is exact at
    /// the instant it is read.
    pub fn queued_total(&self) -> usize {
        self.comp_trackers.iter().map(|t| t.total()).sum()
    }

    /// The most recent feedback-pressure level published for a **global**
    /// source, read lock-free from the owning component's registers.
    /// Always [`PressureLevel::Normal`] when feedback is disabled.
    pub fn source_pressure(&self, source: SourceId) -> PressureLevel {
        let (comp, local) = self.source_route[source.0];
        self.comp_feedback[comp].get(local.0)
    }

    /// The maximum feedback-pressure level across every source of every
    /// component — the engine-wide signal a server translates into
    /// producer pacing.
    pub fn max_pressure(&self) -> PressureLevel {
        self.comp_feedback
            .iter()
            .map(|r| r.max_level())
            .max()
            .unwrap_or(PressureLevel::Normal)
    }

    /// Collects and merges a state snapshot from every component.
    pub fn snapshot(&self) -> Result<ParallelSnapshot> {
        self.flush_pending()?;
        let mut replies = Vec::with_capacity(self.pool.len());
        for tx in self.pool.senders() {
            let (reply_tx, reply_rx) = channel::bounded(1);
            self.commands_sent.fetch_add(1, Ordering::Relaxed);
            tx.send(Cmd::Snapshot { reply: reply_tx })
                .map_err(|_| disconnected())?;
            replies.push(reply_rx);
        }
        let mut stats = ExecStats::default();
        let mut profile: Vec<Option<OpProfile>> = vec![None; self.num_ops];
        let mut ets_per_source = vec![0u64; self.num_sources];
        let mut ingested_per_source = vec![0u64; self.num_sources];
        let mut shed_per_source = vec![0u64; self.num_sources];
        let mut component_clocks = vec![Timestamp::ZERO; self.num_components()];
        let mut component_stats = vec![ExecStats::default(); self.num_components()];
        let mut component_peaks = vec![0usize; self.num_components()];
        let mut total_queued = 0;
        let mut punctuation_enqueued = 0;
        let mut idle = Vec::new();
        let mut worker_busy_nanos = Vec::with_capacity(self.pool.len());
        for rx in replies {
            let (snaps, busy) = rx.recv().map_err(|_| disconnected())?;
            worker_busy_nanos.push(busy);
            for snap in snaps {
                let s = snap.stats;
                stats.merge(&s);
                for (local, p) in snap.profile.into_iter().enumerate() {
                    profile[self.comp_nodes[snap.comp][local].0] = Some(p);
                }
                for (local, (ets, ingested, shed)) in snap.sources.into_iter().enumerate() {
                    let global = self.comp_sources[snap.comp][local].0;
                    ets_per_source[global] = ets;
                    ingested_per_source[global] = ingested;
                    shed_per_source[global] = shed;
                }
                component_clocks[snap.comp] = snap.clock;
                component_stats[snap.comp] = s;
                component_peaks[snap.comp] = snap.peak_queued;
                total_queued += snap.total_queued;
                punctuation_enqueued += snap.punct_enqueued;
                for (local, tracker) in snap.idle {
                    idle.push((self.comp_nodes[snap.comp][local.0], tracker));
                }
            }
        }
        idle.sort_by_key(|(n, _)| n.0);
        Ok(ParallelSnapshot {
            stats,
            profile: profile
                .into_iter()
                .map(|p| p.expect("every node belongs to exactly one component"))
                .collect(),
            ets_per_source,
            ingested_per_source,
            shed_per_source,
            component_clocks,
            component_stats,
            component_peaks,
            total_queued,
            punctuation_enqueued,
            idle,
            worker_busy_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Input};
    use millstream_ops::{Filter, Sink, SinkCollector, Union};
    use millstream_types::{DataType, Expr, Field, Schema, TimestampKind, Value};
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Out(Arc<Mutex<Vec<Tuple>>>);

    impl SinkCollector for Out {
        fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
            self.0.lock().unwrap().push(tuple);
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    /// Two components: S1→σ→sink and (S2,S3)→∪→sink.
    fn build() -> (QueryGraph, [SourceId; 3], Out, Out) {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let s3 = b.source("S3", schema(), TimestampKind::Internal);
        let f = b
            .operator(
                Box::new(Filter::new("σ", schema(), Expr::col(0).ge(Expr::lit(0)))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let out1 = Out::default();
        b.operator(
            Box::new(Sink::new("sink1", schema(), out1.clone())),
            vec![Input::Op(f)],
        )
        .unwrap();
        let u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Source(s2), Input::Source(s3)],
            )
            .unwrap();
        let out2 = Out::default();
        b.operator(
            Box::new(Sink::new("sink2", schema(), out2.clone())),
            vec![Input::Op(u)],
        )
        .unwrap();
        (b.build().unwrap(), [s1, s2, s3], out1, out2)
    }

    fn data(ts: u64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(ts as i64)])
    }

    #[test]
    fn parallel_runs_both_components() {
        let (g, [s1, s2, s3], out1, out2) = build();
        let pex = ParallelExecutor::new(
            g,
            ParallelConfig::new(CostModel::free(), EtsPolicy::on_demand(), 2),
        );
        assert_eq!(pex.num_components(), 2);
        assert_eq!(pex.num_workers(), 2);
        for i in 0..10u64 {
            pex.ingest(s1, data(i)).unwrap();
            pex.ingest(s2, data(i)).unwrap();
            pex.ingest(s3, data(i)).unwrap();
        }
        pex.close_source(s1).unwrap();
        pex.close_source(s2).unwrap();
        pex.close_source(s3).unwrap();
        pex.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(out1.0.lock().unwrap().len(), 10);
        assert_eq!(out2.0.lock().unwrap().len(), 20);
        let snap = pex.snapshot().unwrap();
        assert_eq!(snap.ingested_per_source, vec![10, 10, 10]);
        assert_eq!(snap.total_queued, 0);
        assert_eq!(snap.profile.len(), 4);
        assert_eq!(snap.profile[0].name, "σ");
        assert_eq!(snap.profile[2].name, "∪");
    }

    #[test]
    fn handles_route_by_component_and_workers_multiplex() {
        let (g, [s1, s2, s3], out1, out2) = build();
        // One worker hosting both components still works (multiplexed).
        let pex = ParallelExecutor::new(
            g,
            ParallelConfig::new(CostModel::free(), EtsPolicy::on_demand(), 1),
        );
        assert_eq!(pex.num_workers(), 1);
        assert_eq!(pex.component_of(s1), 0);
        assert_eq!(pex.component_of(s2), 1);
        let h1 = pex.ingest_handle(s1);
        let h2 = pex.ingest_handle(s2);
        let h3 = pex.ingest_handle(s3);
        let feeder = std::thread::spawn(move || {
            for i in 0..5u64 {
                h1.ingest(data(i)).unwrap();
                h2.ingest(data(i)).unwrap();
                h3.ingest(data(i)).unwrap();
            }
            h1.close().unwrap();
            h2.close().unwrap();
            h3.close().unwrap();
        });
        feeder.join().unwrap();
        pex.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(out1.0.lock().unwrap().len(), 5);
        assert_eq!(out2.0.lock().unwrap().len(), 10);
    }

    #[test]
    fn ingest_commands_coalesce_below_budget() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let f = b
            .operator(
                Box::new(Filter::new("σ", schema(), Expr::lit(true))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let out = Out::default();
        b.operator(
            Box::new(Sink::new("sink", schema(), out.clone())),
            vec![Input::Op(f)],
        )
        .unwrap();
        let pex = ParallelExecutor::new(
            b.build().unwrap(),
            ParallelConfig::new(CostModel::free(), EtsPolicy::on_demand(), 1),
        );
        for i in 0..1000u64 {
            pex.ingest(s1, data(i)).unwrap();
        }
        pex.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(out.0.lock().unwrap().len(), 1000);
        // 1000 tuples coalesce into ⌈1000/64⌉ = 16 batches + 1 run command.
        // The budget is a fixed regression bound: a per-tuple channel would
        // send 1001 commands here.
        let sent = pex.commands_sent();
        assert!(
            sent <= 24,
            "command round trips per 1k ingested tuples regressed: {sent} > 24"
        );
    }

    #[test]
    fn ingest_errors_surface_at_the_barrier() {
        let (g, [s1, _, _], _, _) = build();
        let pex = ParallelExecutor::new(
            g,
            ParallelConfig::new(CostModel::free(), EtsPolicy::on_demand(), 2),
        );
        pex.ingest(s1, data(100)).unwrap();
        // Out-of-order: fire-and-forget send succeeds, the barrier errors.
        pex.ingest(s1, data(5)).unwrap();
        let err = pex.barrier().unwrap_err();
        assert!(err.to_string().contains("out-of-order"), "{err}");
        // The error is consumed; the next barrier is clean.
        pex.barrier().unwrap();
    }

    /// An operator that panics the first time it executes — simulating an
    /// operator bug on a worker thread.
    struct PanickingOp {
        schema: Schema,
    }

    impl millstream_ops::Operator for PanickingOp {
        fn name(&self) -> &str {
            "panicker"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_schema(&self) -> &Schema {
            &self.schema
        }
        fn poll(&mut self, ctx: &millstream_ops::OpContext<'_>) -> millstream_ops::Poll {
            if ctx.input(0).is_empty() {
                millstream_ops::Poll::starved_on(0)
            } else {
                millstream_ops::Poll::Ready
            }
        }
        fn step(
            &mut self,
            _ctx: &millstream_ops::OpContext<'_>,
        ) -> Result<millstream_ops::StepOutcome> {
            panic!("injected operator failure");
        }
    }

    #[test]
    fn worker_panic_surfaces_at_the_barrier() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let p = b
            .operator(
                Box::new(PanickingOp { schema: schema() }),
                vec![Input::Source(s1)],
            )
            .unwrap();
        b.operator(
            Box::new(Sink::new("sink", schema(), Out::default())),
            vec![Input::Op(p)],
        )
        .unwrap();
        let pex = ParallelExecutor::new(
            b.build().unwrap(),
            ParallelConfig::new(CostModel::free(), EtsPolicy::on_demand(), 1),
        );
        pex.ingest(s1, data(1)).unwrap();
        let err = pex.run_until_quiescent(1_000).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("worker panicked"), "{msg}");
        assert!(msg.contains("injected operator failure"), "{msg}");
        // The worker thread survived the panic: the channel still answers.
        pex.barrier().unwrap();
        pex.snapshot().unwrap();
    }

    #[test]
    fn config_check_mode_reaches_component_executors() {
        use millstream_buffer::CheckMode;
        use millstream_ops::Reorder;
        use millstream_types::TimeDelta;

        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let r = b
            .operator(
                Box::new(Reorder::new("↻", schema(), TimeDelta::from_micros(100))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        b.operator(
            Box::new(Sink::new("sink", schema(), Out::default())),
            vec![Input::Op(r)],
        )
        .unwrap();
        let pex = ParallelExecutor::new(
            b.build().unwrap(),
            ParallelConfig::new(CostModel::free(), EtsPolicy::None, 1)
                .with_check_mode(CheckMode::Strict),
        );
        pex.ingest_heartbeat(s1, Timestamp::from_micros(10))
            .unwrap();
        // Data below the asserted heartbeat on an Accept buffer: the strict
        // sentinel rejects it at the worker and the barrier reports it.
        pex.ingest(s1, data(5)).unwrap();
        let err = pex.barrier().unwrap_err();
        assert!(err.to_string().contains("punctuation-dominance"), "{err}");
    }
}
