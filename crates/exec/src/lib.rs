//! # millstream-exec
//!
//! Query graphs, the depth-first NOS executor and timestamp-management
//! strategies — the primary contribution of the reproduced paper.
//!
//! * [`GraphBuilder`] / [`QueryGraph`] — operator DAGs with buffer arcs,
//!   source and sink nodes (paper §3, Figs. 2 and 4);
//! * [`Executor`] — the two-step execution cycle with the
//!   Forward/Encore/Backtrack *Next Operator Selection* rules (§3.1–3.2),
//!   per-step virtual-CPU costing, and **on-demand Enabling Time-Stamp
//!   generation inside the backtrack mechanism** (§4–5);
//! * [`EtsPolicy`] — the §5 generation rules (internal clock, external
//!   skew-bound `t + τ − δ`);
//! * [`VirtualClock`] / [`CostModel`] — the deterministic timeline the
//!   experiments run on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod exchange;
mod executor;
mod graph;
mod parallel;
mod strategy;

pub use clock::{CostModel, VirtualClock};
pub use exchange::{ShardOutput, ShardedConfig, ShardedExecutor, ShardedSnapshot, MAX_SHARDS};
pub use executor::{
    Activity, ExecOptions, ExecStats, Executor, FeedbackConfig, OpProfile, SchedPolicy,
};
pub use graph::{
    route_shard, BufferId, ComponentGraph, ComponentPartition, GraphBuilder, Input, NodeId, Pred,
    QueryGraph, ShardKey, SourceId, SourceState, SHARD_HASH_SEED,
};
pub use millstream_buffer::{
    CheckMode, FeedbackRegisters, FeedbackSignal, PressureLevel, SentinelStats, Watermarks,
};
pub use parallel::{IngestHandle, ParallelConfig, ParallelExecutor, ParallelSnapshot};
pub use strategy::{frontier_advance, EtsPolicy};
