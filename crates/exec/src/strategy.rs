//! Timestamp-management strategies — the paper's §5 and §6 scenarios.
//!
//! The four experimental lines of the evaluation map onto millstream as:
//!
//! | Line | Paper | millstream |
//! |------|-------|------------|
//! | A | internally timestamped, no ETS | [`EtsPolicy::None`] |
//! | B | periodic ETS (heartbeats, per Gigascope) | [`EtsPolicy::None`] in the executor + periodic punctuation injection by the driver (`millstream-sim`) |
//! | C | **on-demand ETS** | [`EtsPolicy::OnDemand`] — generated inside the backtrack mechanism |
//! | D | latent timestamps | `Union::latent` + no ETS |
//!
//! For externally timestamped streams the on-demand value follows §5's
//! skew-bound rule: with maximum inter-arrival skew δ, last tuple timestamp
//! `t` seen at wall instant `a`, an ETS generated at instant `now` may
//! promise `t + (now − a) − δ` — every future tuple must carry at least
//! that timestamp.

use millstream_types::{TimeDelta, Timestamp, TimestampKind};

use crate::graph::SourceState;

/// How a starved source generates Enabling Time-Stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsPolicy {
    /// Never generate ETS (experiment lines A, B and D).
    None,
    /// Generate an ETS on demand when backtracking reaches the starved
    /// source (line C). For internally timestamped streams the ETS is the
    /// current clock reading; for externally timestamped streams the
    /// skew-bound rule applies with the given maximum skew δ; latent
    /// streams never generate ETS.
    OnDemand {
        /// Maximum inter-arrival timestamp skew δ for external streams.
        external_max_skew: TimeDelta,
    },
}

impl EtsPolicy {
    /// On-demand policy for internal timestamps (δ unused).
    pub fn on_demand() -> Self {
        EtsPolicy::OnDemand {
            external_max_skew: TimeDelta::ZERO,
        }
    }

    /// Computes the ETS value for a starved source at clock instant `now`,
    /// or `None` when no (useful) ETS can be generated.
    ///
    /// The value is monotonized against both the source's previous ETS and
    /// its last data timestamp, and suppressed entirely when it would not
    /// advance the source's high-water mark (a stale ETS carries no new
    /// information and would only burn CPU).
    pub fn ets_for(&self, source: &SourceState, now: Timestamp) -> Option<Timestamp> {
        let EtsPolicy::OnDemand { external_max_skew } = self else {
            return None;
        };
        if !source.serves_ets {
            // Nothing downstream can use the punctuation.
            return None;
        }
        if source.closed {
            // End-of-stream was declared: the Timestamp::MAX punctuation
            // already promised everything an ETS could.
            return None;
        }
        let candidate = match source.kind {
            TimestampKind::Latent => return None,
            TimestampKind::Internal => now,
            TimestampKind::External => {
                // t + τ − δ, where τ is the time elapsed since the last
                // arrival. Before any arrival we have no application-time
                // baseline, so no ETS can be promised.
                let t = source.last_data_ts?;
                let a = source.last_data_arrival?;
                t.saturating_add(now.duration_since(a))
                    .saturating_sub(*external_max_skew)
            }
        };
        let floor = source
            .ets_high_water
            .max(source.last_data_ts)
            .unwrap_or(Timestamp::ZERO);
        if candidate <= floor && source.ets_high_water.is_some() {
            // Would not advance the frontier.
            return None;
        }
        Some(candidate.max(floor))
    }
}

/// Gates a sharded **on-demand frontier advance** — the exchange-edge
/// analogue of on-demand ETS (see [`crate::ShardedExecutor`]).
///
/// Where the serial backtrack mechanism asks a starved source's register
/// for an ETS, a starved shard replica (or the coordinator's merge stage)
/// asks the shared frontier table for the source's global frontier `f` and
/// injects it as a heartbeat. The same staleness discipline as
/// [`EtsPolicy::ets_for`] applies: an advance that would not move the
/// consumer's high-water marks carries no new information and is
/// suppressed rather than burning a run cycle.
///
/// Returns the heartbeat timestamp to inject, or `None` when `frontier`
/// is unknown or stale against the local data/punctuation high waters.
/// Note the asymmetry: a frontier *equal* to the data high water is still
/// useful (it promises "no more data below `f`", which the data tuple at
/// `f` itself does not), while one equal to the punctuation high water is
/// not (that exact promise was already made).
pub fn frontier_advance(
    frontier: Option<Timestamp>,
    data_high_water: Option<Timestamp>,
    punct_high_water: Option<Timestamp>,
) -> Option<Timestamp> {
    let f = frontier?;
    if data_high_water.is_some_and(|hw| f < hw) || punct_high_water.is_some_and(|hw| f <= hw) {
        return None;
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BufferId, NodeId};
    use millstream_types::Schema;

    fn source(kind: TimestampKind) -> SourceState {
        SourceState {
            name: "s".into(),
            schema: Schema::empty(),
            kind,
            buffer: BufferId(0),
            consumer: NodeId(0),
            last_data_ts: None,
            last_data_arrival: None,
            ets_high_water: None,
            ets_budget_used: false,
            serves_ets: true,
            ets_generated: 0,
            ingested: 0,
            shed_tuples: 0,
            closed: false,
        }
    }

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_micros(v)
    }

    #[test]
    fn none_policy_never_generates() {
        let s = source(TimestampKind::Internal);
        assert_eq!(EtsPolicy::None.ets_for(&s, ts(100)), None);
    }

    #[test]
    fn internal_ets_is_clock_now() {
        let s = source(TimestampKind::Internal);
        assert_eq!(EtsPolicy::on_demand().ets_for(&s, ts(100)), Some(ts(100)));
    }

    #[test]
    fn latent_streams_get_no_ets() {
        let s = source(TimestampKind::Latent);
        assert_eq!(EtsPolicy::on_demand().ets_for(&s, ts(100)), None);
    }

    #[test]
    fn external_needs_a_baseline() {
        let s = source(TimestampKind::External);
        let p = EtsPolicy::OnDemand {
            external_max_skew: TimeDelta::from_micros(10),
        };
        assert_eq!(p.ets_for(&s, ts(100)), None, "no arrival yet");
    }

    #[test]
    fn external_skew_bound_rule() {
        let mut s = source(TimestampKind::External);
        // Last tuple: application time 50, arrived at wall 60.
        s.last_data_ts = Some(ts(50));
        s.last_data_arrival = Some(ts(60));
        let p = EtsPolicy::OnDemand {
            external_max_skew: TimeDelta::from_micros(10),
        };
        // now=100: elapsed τ=40 → ETS = 50 + 40 − 10 = 80.
        assert_eq!(p.ets_for(&s, ts(100)), Some(ts(80)));
        // Huge skew floors at the last data timestamp.
        let p = EtsPolicy::OnDemand {
            external_max_skew: TimeDelta::from_micros(1_000),
        };
        assert_eq!(p.ets_for(&s, ts(100)), Some(ts(50)));
    }

    #[test]
    fn sources_off_iwp_paths_never_answer() {
        let mut s = source(TimestampKind::Internal);
        s.serves_ets = false;
        assert_eq!(EtsPolicy::on_demand().ets_for(&s, ts(100)), None);
    }

    #[test]
    fn stale_ets_is_suppressed() {
        let mut s = source(TimestampKind::Internal);
        s.ets_high_water = Some(ts(100));
        // Clock has not advanced past the previous ETS.
        assert_eq!(EtsPolicy::on_demand().ets_for(&s, ts(100)), None);
        assert_eq!(EtsPolicy::on_demand().ets_for(&s, ts(101)), Some(ts(101)));
    }

    #[test]
    fn frontier_advance_gating() {
        // Unknown frontier: nothing to promise.
        assert_eq!(frontier_advance(None, Some(ts(5)), None), None);
        // Fresh frontier on a virgin replica: inject it.
        assert_eq!(frontier_advance(Some(ts(10)), None, None), Some(ts(10)));
        // Equal to the data high water: still useful (promises closure).
        assert_eq!(
            frontier_advance(Some(ts(10)), Some(ts(10)), None),
            Some(ts(10))
        );
        // Below routed data: stale.
        assert_eq!(frontier_advance(Some(ts(9)), Some(ts(10)), None), None);
        // Equal to the punctuation high water: the promise already exists.
        assert_eq!(frontier_advance(Some(ts(10)), None, Some(ts(10))), None);
        assert_eq!(
            frontier_advance(Some(ts(11)), None, Some(ts(10))),
            Some(ts(11))
        );
    }
}
