//! Query graphs — DAGs of operators connected by buffers (paper §3).
//!
//! Nodes are query operators; directed arcs are [`Buffer`]s: the upstream
//! operator produces into the tail, the downstream operator consumes from
//! the front. The graph additionally has **source nodes** (input buffers
//! filled by external wrappers — here, by the simulation driver or the
//! real-time feeder) and **sink nodes** (operators with no outputs that
//! deliver to output wrappers).
//!
//! [`GraphBuilder`] validates structure at build time: arity, single
//! producer/consumer per buffer, acyclicity.

use std::cell::RefCell;
use std::sync::Arc;

use millstream_buffer::{
    Buffer, CheckMode, OccupancyTracker, OrderPolicy, OrderSentinel, PunctuationPolicy,
    SentinelStats,
};
use millstream_ops::Operator;
use millstream_types::{Error, Result, Schema, Timestamp, TimestampKind};

/// How tuples of one stream are partitioned across shards of an exchange
/// edge (intra-component data parallelism).
///
/// Routing must be a pure function of the tuple's *values* — never of
/// arrival order or wall-clock — so that every shard count yields a
/// deterministic, replayable partition of the same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKey {
    /// Hash every column. Correct for stateless paths, reorder, and union
    /// (any partition preserves per-shard timestamp order and the merged
    /// output set).
    WholeRow,
    /// Hash one column — required when downstream state is keyed (join
    /// equi-key, GROUP BY column) so all tuples of one key group land on
    /// the same shard.
    Column(usize),
}

/// Seed folded into [`route_shard`] hashes so shard assignment is not
/// accidentally correlated with any other hash of the same values.
pub const SHARD_HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

fn fnv1a_value(mut h: u64, v: &millstream_types::Value) -> u64 {
    use millstream_types::Value;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    match v {
        Value::Null => eat(0),
        Value::Bool(b) => {
            eat(1);
            eat(u8::from(*b));
        }
        Value::Int(i) => {
            eat(2);
            for b in i.to_le_bytes() {
                eat(b);
            }
        }
        Value::Float(f) => {
            eat(3);
            for b in f.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        Value::Str(s) => {
            eat(4);
            for &b in s.as_bytes() {
                eat(b);
            }
        }
    }
    h
}

/// Deterministic, seeded key-partition hash: which of `shards` shards a
/// data tuple belongs to. Same values + same seed + same shard count →
/// same shard, across runs and platforms (FNV-1a over a stable value
/// encoding; no `RandomState`).
pub fn route_shard(values: &[millstream_types::Value], key: ShardKey, shards: usize) -> usize {
    debug_assert!(shards > 0);
    if shards <= 1 {
        return 0;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ SHARD_HASH_SEED;
    match key {
        ShardKey::WholeRow => {
            for v in values {
                h = fnv1a_value(h, v);
            }
        }
        ShardKey::Column(c) => {
            // A missing column routes to shard 0 rather than panicking;
            // planners validate indices before choosing `Column`.
            match values.get(c) {
                Some(v) => h = fnv1a_value(h, v),
                None => return 0,
            }
        }
    }
    // Multiply-shift spreads the low-entropy FNV tail across the range.
    (((h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd) >> 33) % shards as u64) as usize
}

/// Identifies an operator node in a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's position in the graph's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub(crate) usize);

impl SourceId {
    /// The source's position in the graph's source list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a buffer (arc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Where an operator input is fed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// Fed by a source node's input buffer.
    Source(SourceId),
    /// Fed by another operator's (only) output — shorthand for
    /// `OpPort(node, 0)`.
    Op(NodeId),
    /// Fed by a specific output port of a multi-output operator
    /// (e.g. [`millstream_ops::Split`]).
    OpPort(NodeId, usize),
}

/// The predecessor on one input of an operator — the backtracking target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// An upstream operator.
    Op(NodeId),
    /// A source node: backtracking here triggers ETS generation (§4).
    Source(SourceId),
}

/// Per-source bookkeeping used by ETS policies (§5).
#[derive(Debug)]
pub struct SourceState {
    /// Source name.
    pub name: String,
    /// Stream schema.
    pub schema: Schema,
    /// Timestamp discipline of this stream.
    pub kind: TimestampKind,
    /// The source's input buffer.
    pub buffer: BufferId,
    /// The operator consuming this source.
    pub consumer: NodeId,
    /// Timestamp of the last *data* tuple ingested.
    pub last_data_ts: Option<Timestamp>,
    /// Clock reading when the last data tuple was ingested.
    pub last_data_arrival: Option<Timestamp>,
    /// Highest ETS ever generated for this source (monotonization floor).
    pub ets_high_water: Option<Timestamp>,
    /// Whether the on-demand budget for the current activation was used
    /// (reset whenever fresh data arrives anywhere).
    pub ets_budget_used: bool,
    /// Whether this source's downstream path contains an operator that
    /// benefits from ETS punctuation (an IWP operator or a time-driven
    /// windowed aggregate). Sources feeding only stateless paths never
    /// answer ETS requests — punctuation there would be pure overhead.
    pub serves_ets: bool,
    /// Lifetime count of on-demand ETS generated here.
    pub ets_generated: u64,
    /// Lifetime count of data tuples ingested here.
    pub ingested: u64,
    /// Data tuples shed at this source under critical feedback pressure
    /// (declared load shedding — see `FeedbackConfig::shed`).
    pub shed_tuples: u64,
    /// Whether end-of-stream was declared (see `Executor::close_source`).
    pub closed: bool,
}

pub(crate) struct OpNode {
    pub op: Box<dyn Operator>,
    pub name: String,
    pub inputs: Vec<BufferId>,
    pub outputs: Vec<BufferId>,
    pub preds: Vec<Pred>,
    /// The consumer of each output port (Forward targets).
    pub succs: Vec<NodeId>,
}

impl OpNode {
    /// The Forward target for simple single-output chains (test helper).
    #[cfg(test)]
    pub fn succ(&self) -> Option<NodeId> {
        self.succs.first().copied()
    }
}

/// A validated, executable query graph.
pub struct QueryGraph {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) buffers: Vec<RefCell<Buffer>>,
    pub(crate) sources: Vec<SourceState>,
    pub(crate) tracker: Arc<OccupancyTracker>,
}

impl QueryGraph {
    /// Number of operator nodes.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of source nodes.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The shared occupancy tracker (Fig. 8's peak-queue metric).
    pub fn tracker(&self) -> &Arc<OccupancyTracker> {
        &self.tracker
    }

    /// Source state by id.
    pub fn source(&self, id: SourceId) -> &SourceState {
        &self.sources[id.0]
    }

    /// Operator name by node id.
    pub fn op_name(&self, id: NodeId) -> &str {
        &self.ops[id.0].name
    }

    /// Whether the node is an IWP operator.
    pub fn is_iwp(&self, id: NodeId) -> bool {
        self.ops[id.0].op.is_iwp()
    }

    /// Ids of all operator nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.ops.len()).map(NodeId)
    }

    /// Ids of all source nodes.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.sources.len()).map(SourceId)
    }

    /// Finds a node by its operator name.
    pub fn find_op(&self, name: &str) -> Option<NodeId> {
        self.ops.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Finds a source by name.
    pub fn find_source(&self, name: &str) -> Option<SourceId> {
        self.sources
            .iter()
            .position(|s| s.name == name)
            .map(SourceId)
    }

    /// Total tuples currently queued in all buffers.
    pub fn total_queued(&self) -> usize {
        self.tracker.total()
    }

    /// Attaches (mode enabled) or clears (mode off) an ordering-contract
    /// sentinel on every buffer. Each sentinel is labelled with the node
    /// producing into its buffer — the source for a source buffer, the
    /// operator for an output buffer — so violations name their culprit.
    pub(crate) fn set_check_mode(&mut self, mode: CheckMode, stats: &Arc<SentinelStats>) {
        for s in &self.sources {
            let sentinel = mode
                .is_enabled()
                .then(|| OrderSentinel::new(mode, format!("source {}", s.name), stats.clone()));
            self.buffers[s.buffer.0].borrow_mut().set_sentinel(sentinel);
        }
        for n in &self.ops {
            for b in &n.outputs {
                let sentinel = mode
                    .is_enabled()
                    .then(|| OrderSentinel::new(mode, n.name.clone(), stats.clone()));
                self.buffers[b.0].borrow_mut().set_sentinel(sentinel);
            }
        }
    }

    /// Assigns every operator and source to a connected component of the
    /// undirected arc structure. Returns `(op_component, source_component,
    /// component_count)`. Components are numbered in order of their
    /// smallest operator node id, so the assignment is deterministic for a
    /// given graph.
    pub(crate) fn component_assignment(&self) -> (Vec<usize>, Vec<usize>, usize) {
        // Union-find over operator nodes; every arc is either op→op
        // (union the endpoints) or source→op (the source adopts its
        // consumer's component).
        let mut parent: Vec<usize> = (0..self.ops.len()).collect();
        fn root(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        for (i, n) in self.ops.iter().enumerate() {
            for pred in &n.preds {
                if let Pred::Op(p) = pred {
                    let (a, b) = (root(&mut parent, i), root(&mut parent, p.0));
                    if a != b {
                        // Attach the larger root under the smaller so the
                        // representative is the smallest node id.
                        parent[a.max(b)] = a.min(b);
                    }
                }
            }
        }
        let mut next = 0usize;
        let mut comp_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let op_comp: Vec<usize> = (0..self.ops.len())
            .map(|i| {
                let r = root(&mut parent, i);
                *comp_of_root.entry(r).or_insert_with(|| {
                    let c = next;
                    next += 1;
                    c
                })
            })
            .collect();
        let source_comp: Vec<usize> = self.sources.iter().map(|s| op_comp[s.consumer.0]).collect();
        (op_comp, source_comp, next)
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.component_assignment().2
    }

    /// Splits the graph into its connected components, producing one
    /// self-contained [`QueryGraph`] per component plus the id remapping
    /// between the whole graph and each sub-graph.
    ///
    /// Invariants:
    /// - every node, source, and buffer lands in exactly one component;
    /// - the relative order of nodes within a component is preserved, so
    ///   sub-graphs stay bottom-up (arcs point from lower to higher local
    ///   ids) exactly like builder output;
    /// - components are numbered by their smallest global operator id, so
    ///   partitioning is deterministic;
    /// - each sub-graph gets a **private** [`OccupancyTracker`]; tuples
    ///   already queued in moved buffers are re-registered on it.
    pub fn partition_components(self) -> ComponentPartition {
        let (op_comp, source_comp, count) = self.component_assignment();

        // Buffers: a source buffer follows its source, an operator output
        // buffer follows its producing operator.
        let mut buffer_comp: Vec<usize> = vec![0; self.buffers.len()];
        for (s, state) in self.sources.iter().enumerate() {
            buffer_comp[state.buffer.0] = source_comp[s];
        }
        for (i, n) in self.ops.iter().enumerate() {
            for b in &n.outputs {
                buffer_comp[b.0] = op_comp[i];
            }
        }

        // Local ids, assigned in ascending global order per component.
        let mut node_local: Vec<usize> = vec![0; self.ops.len()];
        let mut source_local: Vec<usize> = vec![0; self.sources.len()];
        let mut buffer_local: Vec<usize> = vec![0; self.buffers.len()];
        let mut nodes_of: Vec<Vec<NodeId>> = vec![Vec::new(); count];
        let mut sources_of: Vec<Vec<SourceId>> = vec![Vec::new(); count];
        let mut buffers_of: Vec<Vec<BufferId>> = vec![Vec::new(); count];
        for (i, &c) in op_comp.iter().enumerate() {
            node_local[i] = nodes_of[c].len();
            nodes_of[c].push(NodeId(i));
        }
        for (s, &c) in source_comp.iter().enumerate() {
            source_local[s] = sources_of[c].len();
            sources_of[c].push(SourceId(s));
        }
        for (b, &c) in buffer_comp.iter().enumerate() {
            buffer_local[b] = buffers_of[c].len();
            buffers_of[c].push(BufferId(b));
        }

        // Distribute the owned pieces.
        let mut ops_parts: Vec<Vec<OpNode>> = (0..count).map(|_| Vec::new()).collect();
        for (i, mut node) in self.ops.into_iter().enumerate() {
            let c = op_comp[i];
            for b in node.inputs.iter_mut().chain(node.outputs.iter_mut()) {
                *b = BufferId(buffer_local[b.0]);
            }
            for pred in node.preds.iter_mut() {
                *pred = match *pred {
                    Pred::Op(n) => Pred::Op(NodeId(node_local[n.0])),
                    Pred::Source(s) => Pred::Source(SourceId(source_local[s.0])),
                };
            }
            for succ in node.succs.iter_mut() {
                *succ = NodeId(node_local[succ.0]);
            }
            ops_parts[c].push(node);
        }
        let mut source_parts: Vec<Vec<SourceState>> = (0..count).map(|_| Vec::new()).collect();
        let mut source_map: Vec<(usize, SourceId)> = Vec::with_capacity(self.sources.len());
        for (s, mut state) in self.sources.into_iter().enumerate() {
            let c = source_comp[s];
            state.buffer = BufferId(buffer_local[state.buffer.0]);
            state.consumer = NodeId(node_local[state.consumer.0]);
            source_map.push((c, SourceId(source_local[s])));
            source_parts[c].push(state);
        }
        let trackers: Vec<Arc<OccupancyTracker>> =
            (0..count).map(|_| OccupancyTracker::shared()).collect();
        let mut buffer_parts: Vec<Vec<RefCell<Buffer>>> = (0..count).map(|_| Vec::new()).collect();
        for (b, cell) in self.buffers.into_iter().enumerate() {
            let c = buffer_comp[b];
            cell.borrow_mut().set_tracker(trackers[c].clone());
            buffer_parts[c].push(cell);
        }

        let mut components = Vec::with_capacity(count);
        let mut ops_parts = ops_parts.into_iter();
        let mut source_parts = source_parts.into_iter();
        let mut buffer_parts = buffer_parts.into_iter();
        for c in 0..count {
            components.push(ComponentGraph {
                graph: QueryGraph {
                    ops: ops_parts.next().expect("count"),
                    buffers: buffer_parts.next().expect("count"),
                    sources: source_parts.next().expect("count"),
                    tracker: trackers[c].clone(),
                },
                nodes: std::mem::take(&mut nodes_of[c]),
                sources: std::mem::take(&mut sources_of[c]),
                buffers: std::mem::take(&mut buffers_of[c]),
            });
        }
        ComponentPartition {
            components,
            source_map,
        }
    }

    /// Whether the source's stream contract is ordered (its input buffer
    /// rejects timestamp regressions). Unordered sources admit regressions
    /// and are order-restored downstream by a `Reorder`.
    pub fn source_is_ordered(&self, id: SourceId) -> bool {
        self.buffers[self.sources[id.0].buffer.0]
            .borrow()
            .order_policy()
            != OrderPolicy::Accept
    }

    /// The smallest timestamp currently queued in any buffer, or `None`
    /// when every buffer is empty. One of the three terms of a shard's
    /// frontier floor: queued tuples are future output, so the floor can
    /// never pass them.
    pub fn min_front_ts(&self) -> Option<Timestamp> {
        self.buffers
            .iter()
            .filter_map(|b| b.borrow().front_ts())
            .min()
    }

    /// The smallest [`Operator::frontier_hold`] across all operators, or
    /// `None` when no operator holds back the frontier. The second floor
    /// term: state parked inside operators (reorder heaps, open windows)
    /// is future output below any queued tuple.
    pub fn min_frontier_hold(&self) -> Option<Timestamp> {
        self.ops.iter().filter_map(|n| n.op.frontier_hold()).min()
    }

    /// Renders a sharded execution plan as Graphviz DOT: the per-shard
    /// replica of this (single-component) graph, exchange nodes routing
    /// each source across `shards` shards, and the order-preserving merge
    /// stage. `keys[s]` labels the partition key of source `s`.
    pub fn to_dot_sharded(&self, shards: usize, keys: &[ShardKey]) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph millstream_sharded {\n  rankdir=LR;\n");
        for (i, s) in self.sources.iter().enumerate() {
            let key = match keys.get(i) {
                Some(ShardKey::Column(c)) => format!("key=col {c}"),
                _ => "key=whole-row".to_string(),
            };
            let _ = writeln!(
                out,
                "  src{i} [shape=cds, label=\"{} ({:?})\"];\n  \
                 xchg{i} [shape=trapezium, label=\"exchange ×{shards}\\n{key}\"];\n  \
                 src{i} -> xchg{i};",
                s.name, s.kind
            );
        }
        for shard in 0..shards {
            let _ = writeln!(out, "  subgraph cluster_shard{shard} {{");
            let _ = writeln!(out, "    label=\"shard {shard}\";");
            for (i, n) in self.ops.iter().enumerate() {
                let shape = if n.outputs.is_empty() {
                    "doublecircle"
                } else if n.op.is_iwp() {
                    "diamond"
                } else {
                    "box"
                };
                let _ = writeln!(
                    out,
                    "    s{shard}op{i} [shape={shape}, label=\"{}\"];",
                    n.name.replace('"', "'")
                );
            }
            out.push_str("  }\n");
            for (i, s) in self.sources.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  xchg{i} -> s{shard}op{} [style=dashed];",
                    s.consumer.0
                );
            }
            for (i, n) in self.ops.iter().enumerate() {
                for succ in &n.succs {
                    let _ = writeln!(out, "  s{shard}op{i} -> s{shard}op{};", succ.0);
                }
            }
        }
        out.push_str("  merge [shape=invtrapezium, label=\"ts-merge\\n(frontier summaries)\"];\n");
        for shard in 0..shards {
            for (i, n) in self.ops.iter().enumerate() {
                if n.outputs.is_empty() {
                    let _ = writeln!(out, "  s{shard}op{i} -> merge [style=dashed];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph as Graphviz DOT for visualization
    /// (`dot -Tpng graph.dot -o graph.png`). Multi-component graphs render
    /// each connected component as a labelled `subgraph cluster_N`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let (op_comp, source_comp, count) = self.component_assignment();
        let mut out = String::from("digraph millstream {\n  rankdir=LR;\n");
        for c in 0..count {
            let (indent, close) = if count > 1 {
                let _ = writeln!(out, "  subgraph cluster_{c} {{");
                let _ = writeln!(out, "    label=\"component {c}\";");
                ("    ", true)
            } else {
                ("  ", false)
            };
            for (i, s) in self.sources.iter().enumerate() {
                if source_comp[i] != c {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{indent}src{i} [shape=cds, label=\"{} ({:?})\"];",
                    s.name, s.kind
                );
            }
            for (i, n) in self.ops.iter().enumerate() {
                if op_comp[i] != c {
                    continue;
                }
                let shape = if n.outputs.is_empty() {
                    "doublecircle"
                } else if n.op.is_iwp() {
                    "diamond"
                } else {
                    "box"
                };
                let _ = writeln!(
                    out,
                    "{indent}op{i} [shape={shape}, label=\"{}\"];",
                    n.name.replace('"', "'")
                );
            }
            if close {
                out.push_str("  }\n");
            }
        }
        for (i, s) in self.sources.iter().enumerate() {
            let _ = writeln!(out, "  src{i} -> op{};", s.consumer.0);
        }
        for (i, n) in self.ops.iter().enumerate() {
            for succ in &n.succs {
                let _ = writeln!(out, "  op{i} -> op{};", succ.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph topology for diagnostics.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.sources {
            let _ = writeln!(
                out,
                "source {} {:?} -> {}",
                s.name, s.kind, self.ops[s.consumer.0].name
            );
        }
        for (i, n) in self.ops.iter().enumerate() {
            let succ = if n.succs.is_empty() {
                "(sink)".to_string()
            } else {
                n.succs
                    .iter()
                    .map(|s| self.ops[s.0].name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "op #{i} {} [{} in, {} out] -> {succ}",
                n.name,
                n.inputs.len(),
                n.outputs.len()
            );
        }
        out
    }
}

/// The result of [`QueryGraph::partition_components`]: one self-contained
/// sub-graph per connected component plus the global→local id remapping.
pub struct ComponentPartition {
    /// The component sub-graphs, ordered by smallest global operator id.
    pub components: Vec<ComponentGraph>,
    /// Global source id → (component index, local source id). This is the
    /// routing table for ingest under parallel execution.
    pub source_map: Vec<(usize, SourceId)>,
}

impl ComponentPartition {
    /// The component index and local source id for a global source.
    pub fn route(&self, global: SourceId) -> (usize, SourceId) {
        self.source_map[global.0]
    }
}

/// One connected component of a partitioned graph, with the mapping from
/// local ids back to the ids of the whole graph.
pub struct ComponentGraph {
    /// The component as a standalone, executable graph.
    pub graph: QueryGraph,
    /// Local node index → global [`NodeId`].
    pub nodes: Vec<NodeId>,
    /// Local source index → global [`SourceId`].
    pub sources: Vec<SourceId>,
    /// Local buffer index → global [`BufferId`].
    pub buffers: Vec<BufferId>,
}

/// Builds and validates a [`QueryGraph`].
pub struct GraphBuilder {
    ops: Vec<PendingOp>,
    sources: Vec<PendingSource>,
    punctuation_policy: PunctuationPolicy,
    order_policy: OrderPolicy,
}

struct PendingSource {
    name: String,
    schema: Schema,
    kind: TimestampKind,
    unordered: bool,
}

struct PendingOp {
    op: Box<dyn Operator>,
    inputs: Vec<Input>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// An empty builder with default buffer policies.
    pub fn new() -> Self {
        GraphBuilder {
            ops: Vec::new(),
            sources: Vec::new(),
            punctuation_policy: PunctuationPolicy::KeepAll,
            order_policy: OrderPolicy::Reject,
        }
    }

    /// Sets the punctuation policy applied to every buffer.
    pub fn with_punctuation_policy(mut self, policy: PunctuationPolicy) -> Self {
        self.punctuation_policy = policy;
        self
    }

    /// Sets the out-of-order policy applied to every buffer.
    pub fn with_order_policy(mut self, policy: OrderPolicy) -> Self {
        self.order_policy = policy;
        self
    }

    /// Declares a source node.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
    ) -> SourceId {
        self.sources.push(PendingSource {
            name: name.into(),
            schema,
            kind,
            unordered: false,
        });
        SourceId(self.sources.len() - 1)
    }

    /// Declares a source whose stream may arrive out of order (bounded
    /// disorder). Its buffer accepts regressions, and build-time validation
    /// requires its consumer to be an order-restoring operator (`Reorder`).
    pub fn unordered_source(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
    ) -> SourceId {
        self.sources.push(PendingSource {
            name: name.into(),
            schema,
            kind,
            unordered: true,
        });
        SourceId(self.sources.len() - 1)
    }

    /// Adds an operator fed by the given inputs, in input order.
    pub fn operator(&mut self, op: Box<dyn Operator>, inputs: Vec<Input>) -> Result<NodeId> {
        if op.num_inputs() != inputs.len() {
            return Err(Error::graph(format!(
                "operator `{}` declares {} inputs but {} were wired",
                op.name(),
                op.num_inputs(),
                inputs.len()
            )));
        }
        for input in &inputs {
            match input {
                Input::Source(s) if s.0 >= self.sources.len() => {
                    return Err(Error::graph(format!("unknown source id {}", s.0)));
                }
                Input::Op(n) | Input::OpPort(n, _) if n.0 >= self.ops.len() => {
                    return Err(Error::graph(format!(
                        "operator input references later/unknown node {}; add operators bottom-up",
                        n.0
                    )));
                }
                Input::OpPort(n, port) if *port >= self.ops[n.0].op.num_outputs() => {
                    return Err(Error::graph(format!(
                        "node {} has {} outputs; port {} does not exist",
                        n.0,
                        self.ops[n.0].op.num_outputs(),
                        port
                    )));
                }
                _ => {}
            }
        }
        self.ops.push(PendingOp { op, inputs });
        Ok(NodeId(self.ops.len() - 1))
    }

    /// Validates and assembles the graph.
    pub fn build(self) -> Result<QueryGraph> {
        let tracker = OccupancyTracker::shared();
        let punctuation_policy = self.punctuation_policy;
        let order_policy = self.order_policy;
        let mut buffers: Vec<RefCell<Buffer>> = Vec::new();

        // One buffer per source, one per operator output. Unordered
        // sources get an Accept-policy buffer regardless of the default.
        let mut source_buffers = Vec::with_capacity(self.sources.len());
        for src in &self.sources {
            let order = if src.unordered {
                OrderPolicy::Accept
            } else {
                order_policy
            };
            let buffer = Buffer::new(format!("src:{}", src.name))
                .with_tracker(tracker.clone())
                .with_punctuation_policy(punctuation_policy)
                .with_order_policy(order);
            buffers.push(RefCell::new(buffer));
            source_buffers.push(BufferId(buffers.len() - 1));
        }

        let mut new_buffer = |name: String| -> BufferId {
            let buffer = Buffer::new(name)
                .with_tracker(tracker.clone())
                .with_punctuation_policy(punctuation_policy)
                .with_order_policy(order_policy);
            buffers.push(RefCell::new(buffer));
            BufferId(buffers.len() - 1)
        };
        let mut out_buffers: Vec<Vec<BufferId>> = Vec::with_capacity(self.ops.len());
        for (i, p) in self.ops.iter().enumerate() {
            let bufs = (0..p.op.num_outputs())
                .map(|port| new_buffer(format!("out:{}#{i}.{port}", p.op.name())))
                .collect();
            out_buffers.push(bufs);
        }

        // Wire inputs, recording predecessors and checking one consumer per
        // output port.
        let mut source_consumer: Vec<Option<NodeId>> = vec![None; self.sources.len()];
        let mut op_consumer: Vec<Vec<Option<NodeId>>> = out_buffers
            .iter()
            .map(|bufs| vec![None; bufs.len()])
            .collect();
        let mut nodes: Vec<OpNode> = Vec::with_capacity(self.ops.len());
        for (i, p) in self.ops.into_iter().enumerate() {
            let me = NodeId(i);
            let mut inputs = Vec::with_capacity(p.inputs.len());
            let mut preds = Vec::with_capacity(p.inputs.len());
            for input in &p.inputs {
                match *input {
                    Input::Source(s) => {
                        if let Some(prev) = source_consumer[s.0] {
                            return Err(Error::graph(format!(
                                "source {} consumed by both node {} and node {}",
                                s.0, prev.0, i
                            )));
                        }
                        source_consumer[s.0] = Some(me);
                        inputs.push(source_buffers[s.0]);
                        preds.push(Pred::Source(s));
                    }
                    Input::Op(n) | Input::OpPort(n, _) => {
                        let port = match *input {
                            Input::OpPort(_, p) => p,
                            _ => 0,
                        };
                        let Some(&buf) = out_buffers[n.0].get(port) else {
                            return Err(Error::graph(format!(
                                "node {} (`{}`) has no output port {port}",
                                n.0, nodes[n.0].name
                            )));
                        };
                        if let Some(prev) = op_consumer[n.0][port] {
                            return Err(Error::graph(format!(
                                "output {port} of node {} consumed by both node {} and node {}",
                                n.0, prev.0, i
                            )));
                        }
                        op_consumer[n.0][port] = Some(me);
                        inputs.push(buf);
                        preds.push(Pred::Op(n));
                    }
                }
            }
            let name = p.op.name().to_string();
            nodes.push(OpNode {
                op: p.op,
                name,
                inputs,
                outputs: out_buffers[i].clone(),
                preds,
                succs: Vec::new(), // filled below
            });
        }
        for (i, consumers) in op_consumer.iter().enumerate() {
            let mut succs = Vec::with_capacity(consumers.len());
            for (port, consumer) in consumers.iter().enumerate() {
                let Some(c) = consumer else {
                    return Err(Error::graph(format!(
                        "output {port} of node {} (`{}`) is not consumed",
                        i, nodes[i].name
                    )));
                };
                succs.push(*c);
            }
            nodes[i].succs = succs;
        }
        // Every source must be consumed; unordered sources must feed an
        // order-restoring operator.
        for (s, consumer) in source_consumer.iter().enumerate() {
            match consumer {
                None => {
                    return Err(Error::graph(format!(
                        "source {} (`{}`) is not consumed by any operator",
                        s, self.sources[s].name
                    )));
                }
                Some(c) if self.sources[s].unordered && !nodes[c.0].op.accepts_disorder() => {
                    return Err(Error::graph(format!(
                            "unordered source `{}` must feed an order-restoring                              operator (Reorder), not `{}`",
                            self.sources[s].name, nodes[c.0].name
                        )));
                }
                _ => {}
            }
        }
        // Acyclicity holds by construction: `operator()` only accepts
        // references to earlier nodes, so arcs always point forward.

        // Does each source's downstream subgraph reach an ETS consumer (an
        // IWP or time-driven operator)? Multi-output operators fan out, so
        // walk depth-first over all successor ports.
        let serves_ets: Vec<bool> = source_consumer
            .iter()
            .map(|consumer| {
                let mut stack: Vec<NodeId> = consumer.iter().copied().collect();
                while let Some(n) = stack.pop() {
                    let op = &nodes[n.0].op;
                    if op.is_iwp() || op.is_time_driven() {
                        return true;
                    }
                    stack.extend(nodes[n.0].succs.iter().copied());
                }
                false
            })
            .collect();

        let sources = self
            .sources
            .into_iter()
            .enumerate()
            .map(|(i, src)| SourceState {
                name: src.name,
                schema: src.schema,
                kind: src.kind,
                buffer: source_buffers[i],
                consumer: source_consumer[i].expect("checked above"),
                last_data_ts: None,
                last_data_arrival: None,
                ets_high_water: None,
                ets_budget_used: false,
                serves_ets: serves_ets[i],
                ets_generated: 0,
                ingested: 0,
                shed_tuples: 0,
                closed: false,
            })
            .collect();

        Ok(QueryGraph {
            ops: nodes,
            buffers,
            sources,
            tracker,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_ops::{Filter, Sink, Union, VecCollector};
    use millstream_types::{DataType, Expr, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    fn filter(name: &str) -> Box<dyn Operator> {
        Box::new(Filter::new(name, schema(), Expr::lit(true)))
    }

    #[test]
    fn builds_fig4_union_graph() {
        // The paper's Fig. 4: two sources → σ each → ∪ → sink.
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f1 = b.operator(filter("σ1"), vec![Input::Source(s1)]).unwrap();
        let f2 = b.operator(filter("σ2"), vec![Input::Source(s2)]).unwrap();
        let u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Op(f1), Input::Op(f2)],
            )
            .unwrap();
        let k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(u)],
            )
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_sources(), 2);
        assert_eq!(g.ops[u.0].succ(), Some(k));
        assert_eq!(g.ops[f1.0].succ(), Some(u));
        assert_eq!(g.ops[k.0].succ(), None);
        assert_eq!(g.ops[u.0].preds, vec![Pred::Op(f1), Pred::Op(f2)]);
        assert_eq!(g.source(s1).consumer, f1);
        assert!(g.is_iwp(u));
        assert!(!g.is_iwp(f1));
        assert!(g.describe().contains("∪"));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph millstream {"));
        assert!(dot.contains("shape=diamond"), "IWP ops are diamonds: {dot}");
        assert!(
            dot.contains("shape=doublecircle"),
            "sinks are marked: {dot}"
        );
        assert!(dot.contains("src0 -> op0;"));
        assert!(dot.contains("op2 -> op3;"));
        assert_eq!(g.find_op("∪"), Some(u));
        assert_eq!(g.find_source("S2"), Some(s2));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let err = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Source(s1)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::Graph(_)));
    }

    #[test]
    fn rejects_double_consumption() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Op(f), Input::Op(f)],
            )
            .unwrap();
        let _ = s2;
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unconsumed_output() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let _f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unconsumed_source() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let _s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(f)],
            )
            .unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn unordered_source_requires_reorder_consumer() {
        use millstream_ops::Reorder;
        use millstream_types::TimeDelta;

        // Feeding a filter directly: rejected.
        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(f)],
            )
            .unwrap();
        let err = b.build().err().expect("must reject");
        assert!(err.to_string().contains("order-restoring"), "{err}");

        // Feeding a Reorder: accepted, and the source buffer accepts
        // regressions.
        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let r = b
            .operator(
                Box::new(Reorder::new("↻", schema(), TimeDelta::from_millis(10))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(r)],
            )
            .unwrap();
        let g = b.build().unwrap();
        let buf = g.source(s1).buffer;
        use millstream_types::{Timestamp, Tuple, Value};
        g.buffers[buf.0]
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(10), vec![Value::Int(1)]))
            .unwrap();
        g.buffers[buf.0]
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(5), vec![Value::Int(2)]))
            .expect("unordered source accepts regressions");
    }

    /// Two components: S1→σa→sink_a and (S2,S3)→σb,σc→∪→sink_u.
    fn two_component_graph() -> (QueryGraph, [SourceId; 3]) {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let s3 = b.source("S3", schema(), TimestampKind::Internal);
        let fa = b.operator(filter("σa"), vec![Input::Source(s1)]).unwrap();
        let _ka = b
            .operator(
                Box::new(Sink::new("sink_a", schema(), VecCollector::default())),
                vec![Input::Op(fa)],
            )
            .unwrap();
        let fb = b.operator(filter("σb"), vec![Input::Source(s2)]).unwrap();
        let fc = b.operator(filter("σc"), vec![Input::Source(s3)]).unwrap();
        let u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Op(fb), Input::Op(fc)],
            )
            .unwrap();
        let _ku = b
            .operator(
                Box::new(Sink::new("sink_u", schema(), VecCollector::default())),
                vec![Input::Op(u)],
            )
            .unwrap();
        (b.build().unwrap(), [s1, s2, s3])
    }

    #[test]
    fn component_assignment_is_by_smallest_node_id() {
        let (g, _) = two_component_graph();
        assert_eq!(g.num_components(), 2);
        let (op_comp, source_comp, count) = g.component_assignment();
        assert_eq!(count, 2);
        // σa (node 0) anchors component 0; σb (node 2) anchors component 1.
        assert_eq!(op_comp, vec![0, 0, 1, 1, 1, 1]);
        assert_eq!(source_comp, vec![0, 1, 1]);
    }

    #[test]
    fn partition_produces_self_contained_subgraphs() {
        let (g, [s1, s2, s3]) = two_component_graph();
        let total_ops = g.num_ops();
        let total_sources = g.num_sources();
        let total_buffers = g.buffers.len();
        let part = g.partition_components();
        assert_eq!(part.components.len(), 2);
        assert_eq!(
            part.components
                .iter()
                .map(|c| c.graph.num_ops())
                .sum::<usize>(),
            total_ops
        );
        assert_eq!(
            part.components
                .iter()
                .map(|c| c.graph.num_sources())
                .sum::<usize>(),
            total_sources
        );
        assert_eq!(
            part.components
                .iter()
                .map(|c| c.graph.buffers.len())
                .sum::<usize>(),
            total_buffers
        );
        // Routing: S1 → component 0; S2, S3 → component 1.
        assert_eq!(part.route(s1).0, 0);
        assert_eq!(part.route(s2).0, 1);
        assert_eq!(part.route(s3).0, 1);
        // Local wiring is internally consistent: every source's consumer
        // exists and its buffer is in range.
        for comp in &part.components {
            let g = &comp.graph;
            for s in g.source_ids() {
                let state = g.source(s);
                assert!(state.consumer.0 < g.num_ops());
                assert!(state.buffer.0 < g.buffers.len());
                assert_eq!(g.ops[state.consumer.0].preds[0], Pred::Source(s));
            }
            // Bottom-up: arcs point from lower to higher local ids.
            for (i, n) in g.ops.iter().enumerate() {
                for succ in &n.succs {
                    assert!(succ.0 > i, "partitioned graph must stay bottom-up");
                }
            }
        }
        // The union component kept its shape under remapping.
        let cu = &part.components[1];
        let u = cu.graph.find_op("∪").unwrap();
        assert!(cu.graph.is_iwp(u));
        assert_eq!(cu.graph.ops[u.0].preds.len(), 2);
    }

    #[test]
    fn partition_reregisters_queued_tuples_on_private_trackers() {
        use millstream_types::{Timestamp, Tuple, Value};
        let (g, [s1, _, _]) = two_component_graph();
        let buf = g.source(s1).buffer;
        g.buffers[buf.0]
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(1), vec![Value::Int(1)]))
            .unwrap();
        let part = g.partition_components();
        assert_eq!(part.components[0].graph.total_queued(), 1);
        assert_eq!(part.components[1].graph.total_queued(), 0);
    }

    #[test]
    fn multi_component_dot_renders_clusters() {
        let (g, _) = two_component_graph();
        let dot = g.to_dot();
        assert!(dot.contains("subgraph cluster_0 {"), "{dot}");
        assert!(dot.contains("subgraph cluster_1 {"), "{dot}");
        assert!(dot.contains("label=\"component 1\";"), "{dot}");
        // Single-component graphs render without clusters.
        let mut b = GraphBuilder::new();
        let s = b.source("S", schema(), TimestampKind::Internal);
        let f = b.operator(filter("σ"), vec![Input::Source(s)]).unwrap();
        b.operator(
            Box::new(Sink::new("sink", schema(), VecCollector::default())),
            vec![Input::Op(f)],
        )
        .unwrap();
        assert!(!b.build().unwrap().to_dot().contains("subgraph"));
    }

    #[test]
    fn rejects_forward_reference() {
        let mut b = GraphBuilder::new();
        let _s1 = b.source("S1", schema(), TimestampKind::Internal);
        let err = b
            .operator(filter("σ"), vec![Input::Op(NodeId(5))])
            .unwrap_err();
        assert!(matches!(err, Error::Graph(_)));
    }
}
