//! Query graphs — DAGs of operators connected by buffers (paper §3).
//!
//! Nodes are query operators; directed arcs are [`Buffer`]s: the upstream
//! operator produces into the tail, the downstream operator consumes from
//! the front. The graph additionally has **source nodes** (input buffers
//! filled by external wrappers — here, by the simulation driver or the
//! real-time feeder) and **sink nodes** (operators with no outputs that
//! deliver to output wrappers).
//!
//! [`GraphBuilder`] validates structure at build time: arity, single
//! producer/consumer per buffer, acyclicity.

use std::cell::RefCell;
use std::rc::Rc;

use millstream_buffer::{Buffer, OccupancyTracker, OrderPolicy, PunctuationPolicy};
use millstream_ops::Operator;
use millstream_types::{Error, Result, Schema, Timestamp, TimestampKind};

/// Identifies an operator node in a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifies a source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub(crate) usize);

/// Identifies a buffer (arc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Where an operator input is fed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// Fed by a source node's input buffer.
    Source(SourceId),
    /// Fed by another operator's (only) output — shorthand for
    /// `OpPort(node, 0)`.
    Op(NodeId),
    /// Fed by a specific output port of a multi-output operator
    /// (e.g. [`millstream_ops::Split`]).
    OpPort(NodeId, usize),
}

/// The predecessor on one input of an operator — the backtracking target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// An upstream operator.
    Op(NodeId),
    /// A source node: backtracking here triggers ETS generation (§4).
    Source(SourceId),
}

/// Per-source bookkeeping used by ETS policies (§5).
#[derive(Debug)]
pub struct SourceState {
    /// Source name.
    pub name: String,
    /// Stream schema.
    pub schema: Schema,
    /// Timestamp discipline of this stream.
    pub kind: TimestampKind,
    /// The source's input buffer.
    pub buffer: BufferId,
    /// The operator consuming this source.
    pub consumer: NodeId,
    /// Timestamp of the last *data* tuple ingested.
    pub last_data_ts: Option<Timestamp>,
    /// Clock reading when the last data tuple was ingested.
    pub last_data_arrival: Option<Timestamp>,
    /// Highest ETS ever generated for this source (monotonization floor).
    pub ets_high_water: Option<Timestamp>,
    /// Whether the on-demand budget for the current activation was used
    /// (reset whenever fresh data arrives anywhere).
    pub ets_budget_used: bool,
    /// Whether this source's downstream path contains an operator that
    /// benefits from ETS punctuation (an IWP operator or a time-driven
    /// windowed aggregate). Sources feeding only stateless paths never
    /// answer ETS requests — punctuation there would be pure overhead.
    pub serves_ets: bool,
    /// Lifetime count of on-demand ETS generated here.
    pub ets_generated: u64,
    /// Lifetime count of data tuples ingested here.
    pub ingested: u64,
    /// Whether end-of-stream was declared (see `Executor::close_source`).
    pub closed: bool,
}

pub(crate) struct OpNode {
    pub op: Box<dyn Operator>,
    pub name: String,
    pub inputs: Vec<BufferId>,
    pub outputs: Vec<BufferId>,
    pub preds: Vec<Pred>,
    /// The consumer of each output port (Forward targets).
    pub succs: Vec<NodeId>,
}

impl OpNode {
    /// The Forward target for simple single-output chains (test helper).
    #[cfg(test)]
    pub fn succ(&self) -> Option<NodeId> {
        self.succs.first().copied()
    }
}

/// A validated, executable query graph.
pub struct QueryGraph {
    pub(crate) ops: Vec<OpNode>,
    pub(crate) buffers: Vec<RefCell<Buffer>>,
    pub(crate) sources: Vec<SourceState>,
    pub(crate) tracker: Rc<OccupancyTracker>,
}

impl QueryGraph {
    /// Number of operator nodes.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of source nodes.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The shared occupancy tracker (Fig. 8's peak-queue metric).
    pub fn tracker(&self) -> &Rc<OccupancyTracker> {
        &self.tracker
    }

    /// Source state by id.
    pub fn source(&self, id: SourceId) -> &SourceState {
        &self.sources[id.0]
    }

    /// Operator name by node id.
    pub fn op_name(&self, id: NodeId) -> &str {
        &self.ops[id.0].name
    }

    /// Whether the node is an IWP operator.
    pub fn is_iwp(&self, id: NodeId) -> bool {
        self.ops[id.0].op.is_iwp()
    }

    /// Ids of all operator nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.ops.len()).map(NodeId)
    }

    /// Ids of all source nodes.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.sources.len()).map(SourceId)
    }

    /// Finds a node by its operator name.
    pub fn find_op(&self, name: &str) -> Option<NodeId> {
        self.ops.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Finds a source by name.
    pub fn find_source(&self, name: &str) -> Option<SourceId> {
        self.sources
            .iter()
            .position(|s| s.name == name)
            .map(SourceId)
    }

    /// Total tuples currently queued in all buffers.
    pub fn total_queued(&self) -> usize {
        self.tracker.total()
    }

    /// Renders the graph as Graphviz DOT for visualization
    /// (`dot -Tpng graph.dot -o graph.png`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph millstream {\n  rankdir=LR;\n");
        for (i, s) in self.sources.iter().enumerate() {
            let _ = writeln!(
                out,
                "  src{i} [shape=cds, label=\"{} ({:?})\"];",
                s.name, s.kind
            );
        }
        for (i, n) in self.ops.iter().enumerate() {
            let shape = if n.outputs.is_empty() {
                "doublecircle"
            } else if n.op.is_iwp() {
                "diamond"
            } else {
                "box"
            };
            let _ = writeln!(
                out,
                "  op{i} [shape={shape}, label=\"{}\"];",
                n.name.replace('"', "'")
            );
        }
        for (i, s) in self.sources.iter().enumerate() {
            let _ = writeln!(out, "  src{i} -> op{};", s.consumer.0);
        }
        for (i, n) in self.ops.iter().enumerate() {
            for succ in &n.succs {
                let _ = writeln!(out, "  op{i} -> op{};", succ.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph topology for diagnostics.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.sources {
            let _ = writeln!(
                out,
                "source {} {:?} -> {}",
                s.name, s.kind, self.ops[s.consumer.0].name
            );
        }
        for (i, n) in self.ops.iter().enumerate() {
            let succ = if n.succs.is_empty() {
                "(sink)".to_string()
            } else {
                n.succs
                    .iter()
                    .map(|s| self.ops[s.0].name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "op #{i} {} [{} in, {} out] -> {succ}",
                n.name,
                n.inputs.len(),
                n.outputs.len()
            );
        }
        out
    }
}

/// Builds and validates a [`QueryGraph`].
pub struct GraphBuilder {
    ops: Vec<PendingOp>,
    sources: Vec<PendingSource>,
    punctuation_policy: PunctuationPolicy,
    order_policy: OrderPolicy,
}

struct PendingSource {
    name: String,
    schema: Schema,
    kind: TimestampKind,
    unordered: bool,
}

struct PendingOp {
    op: Box<dyn Operator>,
    inputs: Vec<Input>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// An empty builder with default buffer policies.
    pub fn new() -> Self {
        GraphBuilder {
            ops: Vec::new(),
            sources: Vec::new(),
            punctuation_policy: PunctuationPolicy::KeepAll,
            order_policy: OrderPolicy::Reject,
        }
    }

    /// Sets the punctuation policy applied to every buffer.
    pub fn with_punctuation_policy(mut self, policy: PunctuationPolicy) -> Self {
        self.punctuation_policy = policy;
        self
    }

    /// Sets the out-of-order policy applied to every buffer.
    pub fn with_order_policy(mut self, policy: OrderPolicy) -> Self {
        self.order_policy = policy;
        self
    }

    /// Declares a source node.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
    ) -> SourceId {
        self.sources.push(PendingSource {
            name: name.into(),
            schema,
            kind,
            unordered: false,
        });
        SourceId(self.sources.len() - 1)
    }

    /// Declares a source whose stream may arrive out of order (bounded
    /// disorder). Its buffer accepts regressions, and build-time validation
    /// requires its consumer to be an order-restoring operator (`Reorder`).
    pub fn unordered_source(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
    ) -> SourceId {
        self.sources.push(PendingSource {
            name: name.into(),
            schema,
            kind,
            unordered: true,
        });
        SourceId(self.sources.len() - 1)
    }

    /// Adds an operator fed by the given inputs, in input order.
    pub fn operator(&mut self, op: Box<dyn Operator>, inputs: Vec<Input>) -> Result<NodeId> {
        if op.num_inputs() != inputs.len() {
            return Err(Error::graph(format!(
                "operator `{}` declares {} inputs but {} were wired",
                op.name(),
                op.num_inputs(),
                inputs.len()
            )));
        }
        for input in &inputs {
            match input {
                Input::Source(s) if s.0 >= self.sources.len() => {
                    return Err(Error::graph(format!("unknown source id {}", s.0)));
                }
                Input::Op(n) | Input::OpPort(n, _) if n.0 >= self.ops.len() => {
                    return Err(Error::graph(format!(
                        "operator input references later/unknown node {}; add operators bottom-up",
                        n.0
                    )));
                }
                Input::OpPort(n, port) if *port >= self.ops[n.0].op.num_outputs() => {
                    return Err(Error::graph(format!(
                        "node {} has {} outputs; port {} does not exist",
                        n.0,
                        self.ops[n.0].op.num_outputs(),
                        port
                    )));
                }
                _ => {}
            }
        }
        self.ops.push(PendingOp { op, inputs });
        Ok(NodeId(self.ops.len() - 1))
    }

    /// Validates and assembles the graph.
    pub fn build(self) -> Result<QueryGraph> {
        let tracker = OccupancyTracker::shared();
        let punctuation_policy = self.punctuation_policy;
        let order_policy = self.order_policy;
        let mut buffers: Vec<RefCell<Buffer>> = Vec::new();

        // One buffer per source, one per operator output. Unordered
        // sources get an Accept-policy buffer regardless of the default.
        let mut source_buffers = Vec::with_capacity(self.sources.len());
        for src in &self.sources {
            let order = if src.unordered {
                OrderPolicy::Accept
            } else {
                order_policy
            };
            let buffer = Buffer::new(format!("src:{}", src.name))
                .with_tracker(tracker.clone())
                .with_punctuation_policy(punctuation_policy)
                .with_order_policy(order);
            buffers.push(RefCell::new(buffer));
            source_buffers.push(BufferId(buffers.len() - 1));
        }

        let mut new_buffer = |name: String| -> BufferId {
            let buffer = Buffer::new(name)
                .with_tracker(tracker.clone())
                .with_punctuation_policy(punctuation_policy)
                .with_order_policy(order_policy);
            buffers.push(RefCell::new(buffer));
            BufferId(buffers.len() - 1)
        };
        let mut out_buffers: Vec<Vec<BufferId>> = Vec::with_capacity(self.ops.len());
        for (i, p) in self.ops.iter().enumerate() {
            let bufs = (0..p.op.num_outputs())
                .map(|port| new_buffer(format!("out:{}#{i}.{port}", p.op.name())))
                .collect();
            out_buffers.push(bufs);
        }

        // Wire inputs, recording predecessors and checking one consumer per
        // output port.
        let mut source_consumer: Vec<Option<NodeId>> = vec![None; self.sources.len()];
        let mut op_consumer: Vec<Vec<Option<NodeId>>> = out_buffers
            .iter()
            .map(|bufs| vec![None; bufs.len()])
            .collect();
        let mut nodes: Vec<OpNode> = Vec::with_capacity(self.ops.len());
        for (i, p) in self.ops.into_iter().enumerate() {
            let me = NodeId(i);
            let mut inputs = Vec::with_capacity(p.inputs.len());
            let mut preds = Vec::with_capacity(p.inputs.len());
            for input in &p.inputs {
                match *input {
                    Input::Source(s) => {
                        if let Some(prev) = source_consumer[s.0] {
                            return Err(Error::graph(format!(
                                "source {} consumed by both node {} and node {}",
                                s.0, prev.0, i
                            )));
                        }
                        source_consumer[s.0] = Some(me);
                        inputs.push(source_buffers[s.0]);
                        preds.push(Pred::Source(s));
                    }
                    Input::Op(n) | Input::OpPort(n, _) => {
                        let port = match *input {
                            Input::OpPort(_, p) => p,
                            _ => 0,
                        };
                        let Some(&buf) = out_buffers[n.0].get(port) else {
                            return Err(Error::graph(format!(
                                "node {} (`{}`) has no output port {port}",
                                n.0, nodes[n.0].name
                            )));
                        };
                        if let Some(prev) = op_consumer[n.0][port] {
                            return Err(Error::graph(format!(
                                "output {port} of node {} consumed by both node {} and node {}",
                                n.0, prev.0, i
                            )));
                        }
                        op_consumer[n.0][port] = Some(me);
                        inputs.push(buf);
                        preds.push(Pred::Op(n));
                    }
                }
            }
            let name = p.op.name().to_string();
            nodes.push(OpNode {
                op: p.op,
                name,
                inputs,
                outputs: out_buffers[i].clone(),
                preds,
                succs: Vec::new(), // filled below
            });
        }
        for (i, consumers) in op_consumer.iter().enumerate() {
            let mut succs = Vec::with_capacity(consumers.len());
            for (port, consumer) in consumers.iter().enumerate() {
                let Some(c) = consumer else {
                    return Err(Error::graph(format!(
                        "output {port} of node {} (`{}`) is not consumed",
                        i, nodes[i].name
                    )));
                };
                succs.push(*c);
            }
            nodes[i].succs = succs;
        }
        // Every source must be consumed; unordered sources must feed an
        // order-restoring operator.
        for (s, consumer) in source_consumer.iter().enumerate() {
            match consumer {
                None => {
                    return Err(Error::graph(format!(
                        "source {} (`{}`) is not consumed by any operator",
                        s, self.sources[s].name
                    )));
                }
                Some(c) if self.sources[s].unordered && !nodes[c.0].op.accepts_disorder() => {
                    return Err(Error::graph(format!(
                            "unordered source `{}` must feed an order-restoring                              operator (Reorder), not `{}`",
                            self.sources[s].name, nodes[c.0].name
                        )));
                }
                _ => {}
            }
        }
        // Acyclicity holds by construction: `operator()` only accepts
        // references to earlier nodes, so arcs always point forward.

        // Does each source's downstream subgraph reach an ETS consumer (an
        // IWP or time-driven operator)? Multi-output operators fan out, so
        // walk depth-first over all successor ports.
        let serves_ets: Vec<bool> = source_consumer
            .iter()
            .map(|consumer| {
                let mut stack: Vec<NodeId> = consumer.iter().copied().collect();
                while let Some(n) = stack.pop() {
                    let op = &nodes[n.0].op;
                    if op.is_iwp() || op.is_time_driven() {
                        return true;
                    }
                    stack.extend(nodes[n.0].succs.iter().copied());
                }
                false
            })
            .collect();

        let sources = self
            .sources
            .into_iter()
            .enumerate()
            .map(|(i, src)| SourceState {
                name: src.name,
                schema: src.schema,
                kind: src.kind,
                buffer: source_buffers[i],
                consumer: source_consumer[i].expect("checked above"),
                last_data_ts: None,
                last_data_arrival: None,
                ets_high_water: None,
                ets_budget_used: false,
                serves_ets: serves_ets[i],
                ets_generated: 0,
                ingested: 0,
                closed: false,
            })
            .collect();

        Ok(QueryGraph {
            ops: nodes,
            buffers,
            sources,
            tracker,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_ops::{Filter, Sink, Union, VecCollector};
    use millstream_types::{DataType, Expr, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    fn filter(name: &str) -> Box<dyn Operator> {
        Box::new(Filter::new(name, schema(), Expr::lit(true)))
    }

    #[test]
    fn builds_fig4_union_graph() {
        // The paper's Fig. 4: two sources → σ each → ∪ → sink.
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f1 = b.operator(filter("σ1"), vec![Input::Source(s1)]).unwrap();
        let f2 = b.operator(filter("σ2"), vec![Input::Source(s2)]).unwrap();
        let u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Op(f1), Input::Op(f2)],
            )
            .unwrap();
        let k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(u)],
            )
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_sources(), 2);
        assert_eq!(g.ops[u.0].succ(), Some(k));
        assert_eq!(g.ops[f1.0].succ(), Some(u));
        assert_eq!(g.ops[k.0].succ(), None);
        assert_eq!(g.ops[u.0].preds, vec![Pred::Op(f1), Pred::Op(f2)]);
        assert_eq!(g.source(s1).consumer, f1);
        assert!(g.is_iwp(u));
        assert!(!g.is_iwp(f1));
        assert!(g.describe().contains("∪"));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph millstream {"));
        assert!(dot.contains("shape=diamond"), "IWP ops are diamonds: {dot}");
        assert!(
            dot.contains("shape=doublecircle"),
            "sinks are marked: {dot}"
        );
        assert!(dot.contains("src0 -> op0;"));
        assert!(dot.contains("op2 -> op3;"));
        assert_eq!(g.find_op("∪"), Some(u));
        assert_eq!(g.find_source("S2"), Some(s2));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let err = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Source(s1)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::Graph(_)));
    }

    #[test]
    fn rejects_double_consumption() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _u = b
            .operator(
                Box::new(Union::new("∪", schema(), 2)),
                vec![Input::Op(f), Input::Op(f)],
            )
            .unwrap();
        let _ = s2;
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unconsumed_output() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let _f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unconsumed_source() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let _s2 = b.source("S2", schema(), TimestampKind::Internal);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(f)],
            )
            .unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn unordered_source_requires_reorder_consumer() {
        use millstream_ops::Reorder;
        use millstream_types::TimeDelta;

        // Feeding a filter directly: rejected.
        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let f = b.operator(filter("σ"), vec![Input::Source(s1)]).unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(f)],
            )
            .unwrap();
        let err = b.build().err().expect("must reject");
        assert!(err.to_string().contains("order-restoring"), "{err}");

        // Feeding a Reorder: accepted, and the source buffer accepts
        // regressions.
        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let r = b
            .operator(
                Box::new(Reorder::new("↻", schema(), TimeDelta::from_millis(10))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(r)],
            )
            .unwrap();
        let g = b.build().unwrap();
        let buf = g.source(s1).buffer;
        use millstream_types::{Timestamp, Tuple, Value};
        g.buffers[buf.0]
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(10), vec![Value::Int(1)]))
            .unwrap();
        g.buffers[buf.0]
            .borrow_mut()
            .push(Tuple::data(Timestamp::from_micros(5), vec![Value::Int(2)]))
            .expect("unordered source accepts regressions");
    }

    #[test]
    fn rejects_forward_reference() {
        let mut b = GraphBuilder::new();
        let _s1 = b.source("S1", schema(), TimestampKind::Internal);
        let err = b
            .operator(filter("σ"), vec![Input::Op(NodeId(5))])
            .unwrap_err();
        assert!(matches!(err, Error::Graph(_)));
    }
}
