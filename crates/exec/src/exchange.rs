//! Intra-component data parallelism: key-partitioned exchange edges and
//! per-worker frontier summaries.
//!
//! [`crate::ParallelExecutor`] parallelizes *across* connected components;
//! a query that is one big component still runs on one thread. The
//! [`ShardedExecutor`] shards a single component across N workers:
//!
//! * an **exchange router** partitions every ingested data tuple with a
//!   deterministic, seeded key hash ([`route_shard`]) and feeds per-shard
//!   SPSC item queues in batches — one [`ShardItem::Batch`] (and one
//!   `RunBatch` command) per drained run, not one command per tuple, so
//!   the zero-allocation `Row`/pooled-buffer path is preserved end to end;
//! * each **shard worker** hosts an unmodified single-threaded
//!   [`Executor`] over a structurally identical replica of the component
//!   graph. Where the serial executor consults per-source ETS/TSM
//!   registers, a shard consults the shared [`FrontierTable`]: when its
//!   replica still holds queued work after quiescing (an IWP operator
//!   starved on a key-partition it will never receive), it performs an
//!   **on-demand frontier advance** — a heartbeat at the global source
//!   frontier, generated only because a downstream operator actually
//!   starved, mirroring the paper's on-demand ETS discipline;
//! * after running, a worker publishes its **floor**: a lower bound on
//!   the timestamp of anything it may still emit, computed as
//!   `min(source frontiers, queued buffer fronts, operator frontier
//!   holds)` — see [`millstream_ops::Operator::frontier_hold`];
//! * the **merge stage** (a serial [`Executor`] with one ordered source
//!   per shard feeding a ts-merging union) re-establishes a single
//!   ordered output. It runs with [`EtsPolicy::None`]: its only frontier
//!   advances are floor heartbeats the coordinator injects *on demand*,
//!   when the merge union is observed starving — never speculatively, so
//!   a floor can never overtake a shard's in-flight emission.
//!
//! The sentinel layer closes the loop: every drained shard emission is
//! checked against the floor previously promised for that shard
//! ([`OrderSentinel::check_frontier_consistency`]); in strict mode a
//! violation aborts the run instead of silently reordering the merge.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::{self, Receiver, Sender};

use millstream_buffer::{CheckMode, FrontierTable, OrderSentinel, SentinelStats};
use millstream_ops::{Sink, SinkCollector, Union};
use millstream_types::{Error, Result, Schema, Timestamp, TimestampKind, Tuple};

use crate::clock::{CostModel, VirtualClock};
use crate::executor::{ExecOptions, ExecStats, Executor, OpProfile, SchedPolicy};
use crate::graph::{route_shard, GraphBuilder, Input, QueryGraph, ShardKey, SourceId};
use crate::parallel::{panic_error, WorkerPool, INGEST_BATCH};
use crate::strategy::{frontier_advance, EtsPolicy};

/// Upper bound on shards: the merge union is one operator, and operator
/// fan-in is capped by the executor's inline port marshalling.
pub const MAX_SHARDS: usize = 8;

/// `Timestamp::MAX` survives the frontier table's `micros + 1` encoding
/// only saturated; anything in the top two microseconds is end-of-stream.
fn is_final(ts: Timestamp) -> bool {
    ts.as_micros() >= u64::MAX - 1
}

/// Construction-time configuration for a [`ShardedExecutor`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Virtual CPU cost model, applied per shard replica.
    pub cost: CostModel,
    /// Timestamp-management policy inside each shard replica.
    pub policy: EtsPolicy,
    /// Operator-scheduling discipline inside each shard replica.
    pub sched: SchedPolicy,
    /// Execution tuning knobs (Encore batching).
    pub opts: ExecOptions,
    /// Shard count; clamped to `1..=`[`MAX_SHARDS`].
    pub shards: usize,
    /// Partition key per source (by local source id). Empty means
    /// [`ShardKey::WholeRow`] everywhere — correct only when no operator
    /// keeps key-grouped state (no join, no GROUP BY).
    pub keys: Vec<ShardKey>,
    /// Invariant-checking override. `None` (default) inherits the
    /// `MILLSTREAM_CHECK` environment variable.
    pub check: Option<CheckMode>,
}

impl ShardedConfig {
    /// A config with default scheduling/tuning and the given essentials.
    pub fn new(cost: CostModel, policy: EtsPolicy, shards: usize) -> Self {
        ShardedConfig {
            cost,
            policy,
            sched: SchedPolicy::default(),
            opts: ExecOptions::default(),
            shards,
            keys: Vec::new(),
            check: None,
        }
    }

    /// Sets the per-source partition keys (builder style).
    pub fn with_keys(mut self, keys: Vec<ShardKey>) -> Self {
        self.keys = keys;
        self
    }

    /// Overrides the invariant-checking mode (builder style).
    pub fn with_check_mode(mut self, mode: CheckMode) -> Self {
        self.check = Some(mode);
        self
    }

    /// Selects the operator-scheduling discipline (builder style).
    pub fn with_sched_policy(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }
}

/// The collector a shard replica's sink delivers into: a queue the
/// coordinator drains into the merge stage after each shard barrier.
/// Hand one to the sink of each replica built by the graph factory.
#[derive(Clone, Default)]
pub struct ShardOutput {
    queue: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkCollector for ShardOutput {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.queue.lock().expect("shard output lock").push(tuple);
    }
}

/// Source-related traffic, in route order, over a shard's item queue.
/// Everything that touches a source flows here — data, heartbeats,
/// close, clock advances — so a heartbeat can never overtake the data
/// routed before it (the command channel only carries run/snapshot).
enum ShardItem {
    /// A coalesced run of data tuples for one local source.
    Batch(SourceId, Vec<Tuple>),
    /// A broadcast heartbeat punctuation.
    Heartbeat(SourceId, Timestamp),
    /// End-of-stream for one local source.
    Close(SourceId),
    /// Advance the shard's clock.
    AdvanceTo(Timestamp),
}

/// Commands on a shard worker's command channel.
enum ShardCmd {
    /// Drain the item queue in order, run until quiescent, perform
    /// on-demand frontier advances while starved, publish the floor, and
    /// reply with the steps taken (or the first error). With `promise`
    /// set, additionally ask the replica's ETS policy for a promise on
    /// every open source first ([`Executor::promise_frontiers`]) — sent
    /// by the coordinator when the merge stage starves behind floors that
    /// no routed traffic will move.
    RunBatch {
        max_steps: u64,
        promise: bool,
        reply: Sender<Result<u64>>,
    },
    /// Reply with the shard's executor state.
    Snapshot { reply: Sender<ShardSnap> },
    /// Exit the worker loop (sent by [`WorkerPool`] teardown).
    Stop,
}

/// Per-shard state snapshot.
struct ShardSnap {
    stats: ExecStats,
    profile: Vec<OpProfile>,
    clock: Timestamp,
    peak_queued: usize,
    total_queued: usize,
}

/// Everything one shard worker owns.
struct ShardState {
    shard: usize,
    exec: Executor,
    items: Receiver<ShardItem>,
    frontier: Arc<FrontierTable>,
    ordered: Arc<[bool]>,
    busy_nanos: Arc<AtomicU64>,
    advances: Arc<AtomicU64>,
}

/// Applies queued items in route order, runs to quiescence, advances
/// starved frontiers on demand, and publishes the shard's floor. With
/// `promise`, first consults the replica's own ETS policy for every open
/// source — the cross-shard completion of a merge-stage starvation
/// backtrack (see [`ShardCmd::RunBatch`]).
fn run_batch(state: &mut ShardState, max_steps: u64, promise: bool) -> Result<u64> {
    while let Ok(item) = state.items.try_recv() {
        match item {
            ShardItem::Batch(s, tuples) => state.exec.ingest_batch(s, tuples)?,
            ShardItem::Heartbeat(s, ts) => state.exec.ingest_heartbeat(s, ts)?,
            ShardItem::Close(s) => state.exec.close_source(s)?,
            ShardItem::AdvanceTo(ts) => {
                state.exec.clock().advance_to(ts);
                state.exec.refresh_idle();
            }
        }
    }
    let mut taken = state.exec.run_until_quiescent(max_steps)?;
    if promise && state.exec.promise_frontiers()? > 0 {
        state.advances.fetch_add(1, Ordering::Relaxed);
        taken = taken.saturating_add(state.exec.run_until_quiescent(max_steps)?);
    }
    // On-demand frontier advance: only while the replica still holds
    // queued work after quiescing — a downstream IWP operator starved on
    // a partition routed elsewhere. The global source frontier is the
    // router's promise that no shard will ever see that source below it.
    loop {
        if state.exec.graph().total_queued() == 0 {
            break;
        }
        let mut advanced = false;
        for i in 0..state.frontier.num_sources() {
            let sid = SourceId(i);
            if state.exec.graph().source(sid).closed {
                continue;
            }
            let advance = {
                let g = state.exec.graph();
                let b = g.buffers[g.sources[i].buffer.0].borrow();
                frontier_advance(
                    state.frontier.source_frontier(i, state.ordered[i]),
                    b.high_water(),
                    b.punct_high_water(),
                )
            };
            if let Some(f) = advance {
                state.exec.ingest_heartbeat(sid, f)?;
                state.frontier.publish_applied(i, state.shard, f);
                state.advances.fetch_add(1, Ordering::Relaxed);
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
        taken = taken.saturating_add(state.exec.run_until_quiescent(max_steps)?);
    }
    publish_floor(state);
    Ok(taken)
}

/// Publishes the shard's output floor: `min` over the per-source bounds,
/// the fronts of every queued buffer, and every operator's frontier hold.
/// Nothing this shard emits later can be below it. A source's bound is
/// the *max* of the global frontier (the router's promise) and the local
/// punctuation high-water (the replica's own ETS promise — valid because
/// the replica rejects data below it, exactly as a serial executor does
/// after generating the same ETS).
fn publish_floor(state: &ShardState) {
    let g = state.exec.graph();
    let mut floor = Timestamp::MAX;
    for i in 0..state.frontier.num_sources() {
        let global = state.frontier.source_frontier(i, state.ordered[i]);
        let local = g.buffers[g.sources[i].buffer.0].borrow().punct_high_water();
        match (global, local) {
            (Some(a), Some(b)) => floor = floor.min(a.max(b)),
            (Some(f), None) | (None, Some(f)) => floor = floor.min(f),
            // A source with no routed data and no punctuation anywhere
            // bounds nothing: the floor is unknown, publish no promise.
            (None, None) => return,
        }
    }
    if let Some(t) = g.min_front_ts() {
        floor = floor.min(t);
    }
    if let Some(t) = g.min_frontier_hold() {
        floor = floor.min(t);
    }
    state.frontier.publish_floor(state.shard, floor);
}

/// Shard worker main loop — same stash-until-barrier error discipline as
/// the per-component worker loop.
fn shard_worker(rx: Receiver<ShardCmd>, mut state: ShardState) {
    let mut pending_err: Option<Error> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::RunBatch {
                max_steps,
                promise,
                reply,
            } => {
                let start = Instant::now();
                let result = match pending_err.take() {
                    Some(e) => Err(e),
                    None => std::panic::catch_unwind(AssertUnwindSafe(|| {
                        run_batch(&mut state, max_steps, promise)
                    }))
                    .unwrap_or_else(|p| Err(panic_error(p))),
                };
                state
                    .busy_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let _ = reply.send(result);
            }
            ShardCmd::Snapshot { reply } => {
                let start = Instant::now();
                let snap = ShardSnap {
                    stats: state.exec.stats(),
                    profile: state.exec.profile().to_vec(),
                    clock: state.exec.clock().now(),
                    peak_queued: state.exec.graph().tracker().peak(),
                    total_queued: state.exec.graph().total_queued(),
                };
                state
                    .busy_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let _ = reply.send(snap);
            }
            ShardCmd::Stop => break,
        }
    }
}

fn disconnected() -> Error {
    Error::runtime("shard worker disconnected")
}

/// Merged state of a sharded execution.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    /// Executor counters summed over every shard plus the merge stage.
    pub stats: ExecStats,
    /// Each shard replica's unmerged counters.
    pub shard_stats: Vec<ExecStats>,
    /// The merge-stage executor's counters.
    pub merge_stats: ExecStats,
    /// Per-operator profile of the replicated plan, summed elementwise
    /// across the structurally identical shard replicas (plan order).
    pub profile: Vec<OpProfile>,
    /// Each shard's virtual clock reading.
    pub shard_clocks: Vec<Timestamp>,
    /// Each shard's published output floor.
    pub floors: Vec<Option<Timestamp>>,
    /// On-demand frontier advances generated per shard (the sharded
    /// analogue of `ets_generated`).
    pub frontier_advances: Vec<u64>,
    /// Floor heartbeats the coordinator injected into the merge stage —
    /// each one generated because the merge union was observed starving.
    pub merge_heartbeats: u64,
    /// Frontier-consistency violations observed at the merge input.
    pub frontier_violations: u64,
    /// Wall-clock nanoseconds each shard worker spent busy (inside
    /// `RunBatch`/`Snapshot`); subtract from elapsed time for idle.
    pub busy_nanos: Vec<u64>,
    /// Each shard's peak queue occupancy.
    pub peak_queued: Vec<usize>,
    /// Tuples currently queued across shards and merge.
    pub total_queued: usize,
}

/// Runs one connected component sharded across N worker threads behind a
/// key-partitioned exchange edge, with an order-restoring merge stage.
///
/// Construction takes a graph *factory* because [`QueryGraph`] owns boxed
/// operator state and cannot be cloned: the factory is invoked once per
/// shard and must build a structurally identical replica whose sink
/// delivers into the provided [`ShardOutput`].
pub struct ShardedExecutor {
    pool: WorkerPool<ShardCmd>,
    item_txs: Vec<Sender<ShardItem>>,
    /// Coalescing buffer: `pending[shard][source]` is the run of routed
    /// tuples not yet shipped. Flushed when full or before any non-data
    /// traffic, preserving per-source route order.
    pending: Vec<Vec<Vec<Tuple>>>,
    pending_count: usize,
    frontier: Arc<FrontierTable>,
    outputs: Vec<ShardOutput>,
    merge: Executor,
    merge_sources: Vec<SourceId>,
    /// Per shard: the highest floor heartbeat injected into the merge —
    /// the promise every later emission of that shard is checked against.
    promised: Vec<Option<Timestamp>>,
    /// Per source: router-side data high-water (ordered sources only).
    route_hw: Vec<Option<Timestamp>>,
    ordered: Arc<[bool]>,
    keys: Vec<ShardKey>,
    shards: usize,
    num_sources: usize,
    source_names: Vec<String>,
    closed: Vec<bool>,
    merge_closed: bool,
    sentinel: Option<OrderSentinel>,
    sentinel_stats: Arc<SentinelStats>,
    busy: Vec<Arc<AtomicU64>>,
    advances: Vec<Arc<AtomicU64>>,
    merge_heartbeats: u64,
    dot: String,
}

impl ShardedExecutor {
    /// Builds the shard replicas via `factory`, spawns one worker per
    /// shard, and assembles the merge stage delivering to `collector`.
    /// `output_schema` is the schema of the replicas' sink stream.
    pub fn new<F>(
        mut factory: F,
        output_schema: Schema,
        collector: Box<dyn SinkCollector>,
        config: ShardedConfig,
    ) -> Result<ShardedExecutor>
    where
        F: FnMut(usize, ShardOutput) -> Result<QueryGraph>,
    {
        let shards = config.shards.clamp(1, MAX_SHARDS);

        let mut outputs = Vec::with_capacity(shards);
        let mut graphs: Vec<QueryGraph> = Vec::with_capacity(shards);
        for j in 0..shards {
            let out = ShardOutput::default();
            let g = factory(j, out.clone())?;
            if j == 0 {
                if g.num_components() != 1 {
                    return Err(Error::graph(
                        "sharded execution requires a single connected component; \
                         use ParallelExecutor across components",
                    ));
                }
            } else if g.num_sources() != graphs[0].num_sources()
                || g.num_ops() != graphs[0].num_ops()
            {
                return Err(Error::graph(
                    "shard graph factory must build structurally identical replicas",
                ));
            }
            outputs.push(out);
            graphs.push(g);
        }
        let num_sources = graphs[0].num_sources();
        let ordered: Arc<[bool]> = graphs[0]
            .source_ids()
            .map(|s| graphs[0].source_is_ordered(s))
            .collect::<Vec<_>>()
            .into();
        let source_names: Vec<String> = graphs[0]
            .source_ids()
            .map(|s| graphs[0].source(s).name.clone())
            .collect();
        let keys = if config.keys.is_empty() {
            vec![ShardKey::WholeRow; num_sources]
        } else if config.keys.len() == num_sources {
            config.keys.clone()
        } else {
            return Err(Error::config(format!(
                "{} shard keys for {} sources",
                config.keys.len(),
                num_sources
            )));
        };
        let dot = graphs[0].to_dot_sharded(shards, &keys);

        let frontier = FrontierTable::shared(num_sources, shards);
        let busy: Vec<Arc<AtomicU64>> = (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let advances: Vec<Arc<AtomicU64>> =
            (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut item_txs = Vec::with_capacity(shards);
        let mut states = Vec::with_capacity(shards);
        for (j, g) in graphs.into_iter().enumerate() {
            let mut exec = Executor::new(g, VirtualClock::shared(), config.cost, config.policy)
                .with_sched_policy(config.sched)
                .with_exec_options(config.opts);
            if let Some(mode) = config.check {
                exec = exec.with_check_mode(mode);
            }
            let (itx, irx) = channel::unbounded();
            item_txs.push(itx);
            states.push(ShardState {
                shard: j,
                exec,
                items: irx,
                frontier: frontier.clone(),
                ordered: ordered.clone(),
                busy_nanos: busy[j].clone(),
                advances: advances[j].clone(),
            });
        }
        let pool = WorkerPool::spawn("millstream-shard", states, || ShardCmd::Stop, shard_worker);

        // The merge stage: one ordered internal source per shard, a
        // ts-merging union (for >1 shard), the real sink. EtsPolicy::None —
        // the only frontier advances are injected floors.
        let mut b = GraphBuilder::new();
        let merge_sources: Vec<SourceId> = (0..shards)
            .map(|j| {
                b.source(
                    format!("merge{j}"),
                    output_schema.clone(),
                    TimestampKind::Internal,
                )
            })
            .collect();
        if shards == 1 {
            b.operator(
                Box::new(Sink::new("merge-sink", output_schema.clone(), collector)),
                vec![Input::Source(merge_sources[0])],
            )?;
        } else {
            let u = b.operator(
                Box::new(Union::new("merge-∪", output_schema.clone(), shards)),
                merge_sources.iter().map(|&s| Input::Source(s)).collect(),
            )?;
            b.operator(
                Box::new(Sink::new("merge-sink", output_schema, collector)),
                vec![Input::Op(u)],
            )?;
        }
        let mut merge = Executor::new(
            b.build()?,
            VirtualClock::shared(),
            CostModel::free(),
            EtsPolicy::None,
        );
        if let Some(mode) = config.check {
            merge = merge.with_check_mode(mode);
        }

        let mode = config.check.unwrap_or_else(CheckMode::from_env);
        let sentinel_stats = SentinelStats::shared();
        let sentinel = mode
            .is_enabled()
            .then(|| OrderSentinel::new(mode, "exchange-merge", sentinel_stats.clone()));

        Ok(ShardedExecutor {
            pool,
            item_txs,
            pending: vec![vec![Vec::new(); num_sources]; shards],
            pending_count: 0,
            frontier,
            outputs,
            merge,
            merge_sources,
            promised: vec![None; shards],
            route_hw: vec![None; num_sources],
            ordered,
            keys,
            shards,
            num_sources,
            source_names,
            closed: vec![false; num_sources],
            merge_closed: false,
            sentinel,
            sentinel_stats,
            busy,
            advances,
            merge_heartbeats: 0,
            dot,
        })
    }

    /// Number of shards actually running.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Number of sources of the sharded component.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// The shared frontier table (diagnostics, tests).
    pub fn frontier(&self) -> &Arc<FrontierTable> {
        &self.frontier
    }

    /// The sharded plan rendered as Graphviz DOT: exchange nodes, shard
    /// replica clusters and the merge stage.
    pub fn plan_dot(&self) -> &str {
        &self.dot
    }

    /// Ships every coalesced run to its shard's item queue, preserving
    /// per-source route order. Must precede any non-data item.
    fn flush_items(&mut self) -> Result<()> {
        if self.pending_count == 0 {
            return Ok(());
        }
        for shard in 0..self.shards {
            for i in 0..self.num_sources {
                let run = &mut self.pending[shard][i];
                if run.is_empty() {
                    continue;
                }
                self.pending_count -= run.len();
                self.item_txs[shard]
                    .send(ShardItem::Batch(SourceId(i), std::mem::take(run)))
                    .map_err(|_| disconnected())?;
            }
        }
        Ok(())
    }

    /// Routes a data tuple to its key shard. Ordered sources are checked
    /// at the router — an out-of-order tuple fails here, exactly like the
    /// serial source buffer would, *before* it can poison one shard.
    pub fn ingest(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        let i = source.0;
        if self.closed[i] {
            return Err(Error::runtime(format!(
                "source `{}` is closed",
                self.source_names[i]
            )));
        }
        if tuple.is_punctuation() {
            return Err(Error::runtime(format!(
                "ingest on source `{}` requires a data tuple; \
                 use ingest_heartbeat for punctuation",
                self.source_names[i]
            )));
        }
        if self.ordered[i] {
            if let Some(hw) = self.route_hw[i] {
                if tuple.ts < hw {
                    return Err(Error::OutOfOrder {
                        context: format!("src:{} (exchange router)", self.source_names[i]),
                        got: tuple.ts.as_micros(),
                        watermark: hw.as_micros(),
                    });
                }
            }
            self.route_hw[i] = Some(self.route_hw[i].map_or(tuple.ts, |h| h.max(tuple.ts)));
            self.frontier.note_routed(i, tuple.ts);
        }
        let shard = route_shard(
            tuple.values().expect("data tuple"),
            self.keys[i],
            self.shards,
        );
        let run = &mut self.pending[shard][i];
        run.push(tuple);
        self.pending_count += 1;
        if run.len() >= INGEST_BATCH {
            let tuples = std::mem::take(run);
            self.pending_count -= tuples.len();
            self.item_txs[shard]
                .send(ShardItem::Batch(SourceId(i), tuples))
                .map_err(|_| disconnected())?;
        }
        Ok(())
    }

    /// Broadcasts a heartbeat punctuation to every shard (each drops it
    /// if stale locally) and raises the source's global punctuation
    /// frontier.
    pub fn ingest_heartbeat(&mut self, source: SourceId, ts: Timestamp) -> Result<()> {
        if self.closed[source.0] {
            return Err(Error::runtime(format!(
                "source `{}` is closed",
                self.source_names[source.0]
            )));
        }
        self.flush_items()?;
        self.frontier.note_punct(source.0, ts);
        for tx in &self.item_txs {
            tx.send(ShardItem::Heartbeat(source, ts))
                .map_err(|_| disconnected())?;
        }
        Ok(())
    }

    /// Declares end-of-stream on a source, broadcast to every shard.
    /// Idempotent, like [`Executor::close_source`].
    pub fn close_source(&mut self, source: SourceId) -> Result<()> {
        if self.closed[source.0] {
            return Ok(());
        }
        self.flush_items()?;
        self.closed[source.0] = true;
        self.frontier.note_punct(source.0, Timestamp::MAX);
        for tx in &self.item_txs {
            tx.send(ShardItem::Close(source))
                .map_err(|_| disconnected())?;
        }
        Ok(())
    }

    /// Advances every shard's clock and the merge clock to `ts`.
    pub fn advance_to(&mut self, ts: Timestamp) -> Result<()> {
        self.flush_items()?;
        for tx in &self.item_txs {
            tx.send(ShardItem::AdvanceTo(ts))
                .map_err(|_| disconnected())?;
        }
        self.merge.clock().advance_to(ts);
        self.merge.refresh_idle();
        Ok(())
    }

    /// The sharded quiescence barrier: flush routed runs, run every shard
    /// to quiescence in parallel, drain their emissions into the merge
    /// stage, and advance the merge — injecting floor heartbeats only
    /// when the merge union actually starves. Returns total steps taken.
    pub fn run_until_quiescent(&mut self, max_steps: u64) -> Result<u64> {
        self.flush_items()?;
        let total = self.shard_round(max_steps, false)?;
        Ok(total + self.pump_merge(max_steps)?)
    }

    /// Sends one `RunBatch` to every shard and awaits all replies,
    /// surfacing the first error. With `promise`, the replicas also ask
    /// their ETS policies for source promises (the merge-starvation hop).
    fn shard_round(&mut self, max_steps: u64, promise: bool) -> Result<u64> {
        let mut replies = Vec::with_capacity(self.shards);
        for tx in self.pool.senders() {
            let (rtx, rrx) = channel::bounded(1);
            tx.send(ShardCmd::RunBatch {
                max_steps,
                promise,
                reply: rtx,
            })
            .map_err(|_| disconnected())?;
            replies.push(rrx);
        }
        let mut total = 0u64;
        let mut first_err = None;
        for rx in replies {
            match rx.recv().map_err(|_| disconnected())? {
                Ok(n) => total += n,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(total)
    }

    /// Synchronizes with every shard without executing work beyond what
    /// is already queued (see [`ParallelExecutor::barrier`]).
    ///
    /// [`ParallelExecutor::barrier`]: crate::ParallelExecutor::barrier
    pub fn barrier(&mut self) -> Result<()> {
        self.run_until_quiescent(0).map(|_| ())
    }

    /// Drains every shard's emission queue into the merge stage, checking
    /// frontier consistency against the floors already promised to (and
    /// consumed by) the merge union.
    fn drain_outputs(&mut self) -> Result<()> {
        for j in 0..self.shards {
            let drained: Vec<Tuple> = {
                let mut q = self.outputs[j].queue.lock().expect("shard output lock");
                std::mem::take(&mut *q)
            };
            if drained.is_empty() {
                continue;
            }
            if let (Some(sentinel), Some(floor)) = (&self.sentinel, self.promised[j]) {
                for t in &drained {
                    sentinel.check_frontier_consistency(&format!("merge{j}"), t.ts, floor)?;
                }
            }
            self.merge.ingest_batch(self.merge_sources[j], drained)?;
        }
        Ok(())
    }

    /// Drains shard emissions into the merge stage and advances it.
    fn pump_merge(&mut self, max_steps: u64) -> Result<u64> {
        self.drain_outputs()?;
        let mut total = self.merge.run_until_quiescent(max_steps)?;
        // On-demand frontier advance at the merge: only while tuples are
        // observably stuck behind a lagging shard register.
        let mut promise_spent = false;
        loop {
            if self.merge.graph().total_queued() == 0 {
                break;
            }
            let mut advanced = false;
            for j in 0..self.shards {
                if self.merge.graph().source(self.merge_sources[j]).closed {
                    continue;
                }
                let raw = self.frontier.floor(j);
                if raw.is_some_and(is_final) {
                    continue; // the close path injects Timestamp::MAX itself
                }
                let advance = {
                    let g = self.merge.graph();
                    let b = g.buffers[g.sources[self.merge_sources[j].0].buffer.0].borrow();
                    frontier_advance(raw, b.high_water(), b.punct_high_water())
                };
                if let Some(floor) = advance {
                    self.merge.ingest_heartbeat(self.merge_sources[j], floor)?;
                    self.promised[j] = Some(floor);
                    self.merge_heartbeats += 1;
                    advanced = true;
                }
            }
            if !advanced {
                // No floor moved and tuples are still stuck: the serial
                // analogue of this moment is a backtrack reaching a
                // starved source and asking its ETS register for a
                // promise. Complete that final hop across the exchange —
                // one promise round per pump (the clocks are static here,
                // so a second round could not promise more).
                if promise_spent {
                    break;
                }
                promise_spent = true;
                self.shard_round(max_steps, true)?;
                self.drain_outputs()?;
                continue;
            }
            total += self.merge.run_until_quiescent(max_steps)?;
        }
        // End-of-stream: every source closed and every shard fully drained
        // (saturated floor proves empty buffers and released holds).
        if !self.merge_closed
            && self.closed.iter().all(|&c| c)
            && (0..self.shards).all(|j| self.frontier.floor(j).is_some_and(is_final))
        {
            for j in 0..self.shards {
                self.merge.close_source(self.merge_sources[j])?;
            }
            self.merge_closed = true;
            total += self.merge.run_until_quiescent(max_steps)?;
        }
        Ok(total)
    }

    /// Collects a merged snapshot from every shard plus the merge stage.
    /// Callable through a shared reference: the snapshot command queues
    /// behind any in-flight `RunBatch`, so counters are read at a worker
    /// quiescence point (routed-but-unflushed tuples are not yet visible).
    pub fn snapshot(&self) -> Result<ShardedSnapshot> {
        let mut replies = Vec::with_capacity(self.shards);
        for tx in self.pool.senders() {
            let (rtx, rrx) = channel::bounded(1);
            tx.send(ShardCmd::Snapshot { reply: rtx })
                .map_err(|_| disconnected())?;
            replies.push(rrx);
        }
        let mut stats = ExecStats::default();
        let mut shard_stats = Vec::with_capacity(self.shards);
        let mut shard_clocks = Vec::with_capacity(self.shards);
        let mut peak_queued = Vec::with_capacity(self.shards);
        let mut profile: Vec<OpProfile> = Vec::new();
        let mut total_queued = 0usize;
        for rx in replies {
            let snap = rx.recv().map_err(|_| disconnected())?;
            stats.merge(&snap.stats);
            if profile.is_empty() {
                profile = snap.profile.clone();
            } else {
                for (acc, p) in profile.iter_mut().zip(&snap.profile) {
                    acc.steps += p.steps;
                    acc.consumed += p.consumed;
                    acc.produced += p.produced;
                    acc.busy_micros += p.busy_micros;
                    // High-water, not a counter: the largest state held by
                    // any single replica of this operator.
                    acc.peak_state = acc.peak_state.max(p.peak_state);
                    acc.compacted_runs += p.compacted_runs;
                    acc.spilled_bytes += p.spilled_bytes;
                    acc.run_drops += p.run_drops;
                }
            }
            shard_stats.push(snap.stats);
            shard_clocks.push(snap.clock);
            peak_queued.push(snap.peak_queued);
            total_queued += snap.total_queued;
        }
        let merge_stats = self.merge.stats();
        stats.merge(&merge_stats);
        total_queued += self.merge.graph().total_queued();
        Ok(ShardedSnapshot {
            stats,
            shard_stats,
            merge_stats,
            profile,
            shard_clocks,
            floors: (0..self.shards).map(|j| self.frontier.floor(j)).collect(),
            frontier_advances: self
                .advances
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            merge_heartbeats: self.merge_heartbeats,
            frontier_violations: self.sentinel_stats.frontier_violations(),
            busy_nanos: self
                .busy
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            peak_queued,
            total_queued,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_ops::{AggExpr, AggFunc, Filter, WindowAggregate};
    use millstream_types::{DataType, Expr, Field, TimeDelta, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
    }

    fn data(ts: u64, k: i64, v: i64) -> Tuple {
        Tuple::data(
            Timestamp::from_micros(ts),
            vec![Value::Int(k), Value::Int(v)],
        )
    }

    /// source → σ(v ≥ 0) → sink, replicated per shard.
    fn filter_factory(out: ShardOutput) -> Result<QueryGraph> {
        let mut b = GraphBuilder::new();
        let s = b.source("S", schema(), TimestampKind::Internal);
        let f = b.operator(
            Box::new(Filter::new("σ", schema(), Expr::col(1).ge(Expr::lit(0)))),
            vec![Input::Source(s)],
        )?;
        b.operator(
            Box::new(Sink::new("shard-sink", schema(), out)),
            vec![Input::Op(f)],
        )?;
        b.build()
    }

    type Delivered = Arc<Mutex<Vec<(Tuple, Timestamp)>>>;

    fn sharded(shards: usize) -> (ShardedExecutor, Delivered) {
        let delivered: Delivered = Arc::default();
        let sink = delivered.clone();
        struct Coll(Arc<Mutex<Vec<(Tuple, Timestamp)>>>);
        impl SinkCollector for Coll {
            fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
                self.0.lock().unwrap().push((tuple, now));
            }
        }
        let exec = ShardedExecutor::new(
            |_, out| filter_factory(out),
            schema(),
            Box::new(Coll(sink)),
            ShardedConfig::new(CostModel::free(), EtsPolicy::on_demand(), shards),
        )
        .unwrap();
        (exec, delivered)
    }

    #[test]
    fn shards_partition_and_merge_preserves_order() {
        let (mut ex, delivered) = sharded(4);
        assert_eq!(ex.num_shards(), 4);
        let s = SourceId(0);
        for i in 0..200u64 {
            ex.ingest(s, data(i, i as i64 % 7, i as i64)).unwrap();
        }
        ex.close_source(s).unwrap();
        ex.run_until_quiescent(1_000_000).unwrap();
        let got = delivered.lock().unwrap();
        assert_eq!(got.len(), 200, "every tuple survives the exchange");
        let ts: Vec<u64> = got.iter().map(|(t, _)| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "merge restores global timestamp order");
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let (mut ex, delivered) = sharded(1);
        let s = SourceId(0);
        for i in 0..10u64 {
            ex.ingest(s, data(i, 0, i as i64)).unwrap();
        }
        ex.close_source(s).unwrap();
        ex.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(delivered.lock().unwrap().len(), 10);
    }

    #[test]
    fn router_rejects_out_of_order_on_ordered_sources() {
        let (mut ex, _) = sharded(2);
        let s = SourceId(0);
        ex.ingest(s, data(100, 0, 1)).unwrap();
        let err = ex.ingest(s, data(5, 0, 2)).unwrap_err();
        assert!(err.to_string().contains("out-of-order"), "{err}");
    }

    #[test]
    fn routing_is_deterministic_and_key_grouped() {
        // Same key column value → same shard, regardless of other columns.
        for shards in [2usize, 4, 8] {
            for k in 0..50i64 {
                let a = route_shard(&[Value::Int(k), Value::Int(1)], ShardKey::Column(0), shards);
                let b = route_shard(
                    &[Value::Int(k), Value::Int(999)],
                    ShardKey::Column(0),
                    shards,
                );
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // Whole-row routing spreads distinct rows across shards.
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| route_shard(&[Value::Int(i), Value::Int(i)], ShardKey::WholeRow, 4))
            .collect();
        assert!(hit.len() > 1, "64 distinct rows must not all hash together");
    }

    #[test]
    fn keyed_aggregate_groups_stay_whole_per_shard() {
        // source → Σ(GROUP BY k, window 1ms) → sink, keyed exchange on k.
        fn out_schema() -> Schema {
            Schema::new(vec![
                Field::new("window_start", DataType::Int),
                Field::new("k", DataType::Int),
                Field::new("sum", DataType::Int),
            ])
        }
        fn agg_factory(out: ShardOutput) -> Result<QueryGraph> {
            let mut b = GraphBuilder::new();
            let s = b.source("S", schema(), TimestampKind::Internal);
            let a = b.operator(
                Box::new(WindowAggregate::new(
                    "Σ",
                    &schema(),
                    TimeDelta::from_millis(1),
                    vec![("k".into(), Expr::col(0))],
                    vec![AggExpr {
                        func: AggFunc::Sum,
                        arg: Expr::col(1),
                        name: "sum".into(),
                    }],
                )?),
                vec![Input::Source(s)],
            )?;
            b.operator(
                Box::new(Sink::new("shard-sink", out_schema(), out)),
                vec![Input::Op(a)],
            )?;
            b.build()
        }
        let delivered: Arc<Mutex<Vec<Tuple>>> = Arc::default();
        struct Coll(Arc<Mutex<Vec<Tuple>>>);
        impl SinkCollector for Coll {
            fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
                self.0.lock().unwrap().push(tuple);
            }
        }
        let mut ex = ShardedExecutor::new(
            |_, out| agg_factory(out),
            out_schema(),
            Box::new(Coll(delivered.clone())),
            ShardedConfig::new(CostModel::free(), EtsPolicy::on_demand(), 4)
                .with_keys(vec![ShardKey::Column(0)]),
        )
        .unwrap();
        let s = SourceId(0);
        // Two windows × 4 keys × 25 tuples of v=1 each.
        for w in 0..2u64 {
            for i in 0..100u64 {
                let ts = w * 1000 + i * 10;
                ex.ingest(s, data(ts, (i % 4) as i64, 1)).unwrap();
            }
        }
        ex.close_source(s).unwrap();
        ex.run_until_quiescent(10_000_000).unwrap();
        let got = delivered.lock().unwrap();
        // Keyed routing keeps each group on one shard: exactly one output
        // row per (window, key), never partial sums from split groups.
        assert_eq!(got.len(), 8, "2 windows × 4 keys: {got:?}");
        for t in got.iter() {
            let v = t.values().unwrap();
            assert_eq!(v[2], Value::Int(25), "whole group on one shard: {v:?}");
        }
    }

    #[test]
    fn starved_merge_unblocks_via_frontier_summaries() {
        // Key-skewed input: every tuple routes to one shard; the other
        // shards publish floors that let the merge release output without
        // waiting for data that will never come.
        let (mut ex, delivered) = sharded(4);
        let s = SourceId(0);
        for i in 0..50u64 {
            // Identical rows → identical shard.
            ex.ingest(s, data(i, 42, 7)).unwrap();
        }
        ex.run_until_quiescent(1_000_000).unwrap();
        // Without closing: merged output may lag behind the skewed shard
        // only until floors catch up; a heartbeat pushes them past it.
        ex.ingest_heartbeat(s, Timestamp::from_micros(1000))
            .unwrap();
        ex.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(
            delivered.lock().unwrap().len(),
            50,
            "floors from empty shards must release the merge"
        );
        let snap = ex.snapshot().unwrap();
        assert!(
            snap.floors.iter().all(|f| f.is_some()),
            "every shard published a floor: {:?}",
            snap.floors
        );
        ex.close_source(s).unwrap();
        ex.run_until_quiescent(1_000_000).unwrap();
    }

    #[test]
    fn plan_dot_renders_exchange_and_shards() {
        let (ex, _) = sharded(2);
        let dot = ex.plan_dot();
        assert!(dot.contains("exchange ×2"), "{dot}");
        assert!(dot.contains("cluster_shard0"), "{dot}");
        assert!(dot.contains("cluster_shard1"), "{dot}");
        assert!(dot.contains("ts-merge"), "{dot}");
    }
}
