//! The depth-first executor — the paper's §3 execution model with the §4
//! on-demand ETS extension wired into the backtrack rule.
//!
//! Execution is the two-step cycle of Fig. 3:
//!
//! 1. **Execution step** — run the current operator (one
//!    production/consumption step);
//! 2. **Continuation step** — pick the next operator with the
//!    *Next Operator Selection* (NOS) depth-first rules:
//!    * `Forward`: if `yield` (the output buffer holds tuples) then
//!      `next := succ`;
//!    * `Encore`: else if `more` then `next := self`;
//!    * `Backtrack`: else `next := pred_j` (the predecessor feeding the
//!      starving input `j`) and repeat NOS on it.
//!
//! When backtracking walks all the way to a **source node** whose buffer is
//! empty, the executor consults its [`EtsPolicy`]: under on-demand ETS it
//! generates a punctuation tuple right there and sends it "down along the
//! path on which backtracking just occurred" — the punctuation simply flows
//! through the normal forward execution that resumes at the source's
//! consumer. Each source generates at most one ETS per *activation* (the
//! span between quiescent states); the budget is re-armed by fresh
//! arrivals, which bounds on-demand punctuation traffic by the data rate —
//! the property that lets line C beat every periodic rate in Fig. 7.
//!
//! The executor runs **one operator step per [`Executor::step`] call** and
//! charges virtual CPU through its [`CostModel`], so a driver can interleave
//! event ingestion with execution at microsecond granularity.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use millstream_buffer::{Buffer, CheckMode, SentinelStats};
use millstream_metrics::IdleTracker;
use millstream_ops::{BatchOutcome, OpContext, Operator, Poll, StepOutcome};
use millstream_types::{Error, Result, Timestamp, Tuple};

use crate::clock::{CostModel, VirtualClock};
use crate::graph::{NodeId, OpNode, Pred, QueryGraph, SourceId};
use crate::strategy::EtsPolicy;

/// What one executor step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activity {
    /// An operator executed one step.
    Executed {
        /// The operator that ran.
        node: NodeId,
        /// Its step outcome.
        outcome: StepOutcome,
    },
    /// Backtracking reached a starved source and generated an on-demand
    /// ETS (§4/§5).
    EtsGenerated {
        /// The source that produced the ETS.
        source: SourceId,
        /// The enabling timestamp value.
        ts: Timestamp,
    },
    /// Nothing can run: every path is starved and no ETS can be generated.
    /// The driver should sleep until the next external event.
    Quiescent,
}

/// Operator-scheduling discipline.
///
/// The paper evaluates the **depth-first** strategy (§3.1), which forwards
/// freshly produced tuples toward the sink immediately ("to expedite tuple
/// progress toward output"). [`SchedPolicy::RoundRobin`] is an ablation
/// baseline: it cycles through runnable operators one step at a time, the
/// simplest fair scheduler — tuples progress level by level, so queues
/// between operators grow under load. Both disciplines share the same
/// backtrack-to-source ETS machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The paper's depth-first NOS rules (Forward / Encore / Backtrack).
    #[default]
    DepthFirst,
    /// Cycle fairly over runnable operators, one step each.
    RoundRobin,
}

/// Per-operator execution profile (a lightweight built-in profiler).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator name.
    pub name: String,
    /// Steps executed.
    pub steps: u64,
    /// Tuples consumed.
    pub consumed: u64,
    /// Tuples produced.
    pub produced: u64,
    /// Virtual CPU time charged to this operator (microseconds).
    pub busy_micros: u64,
    /// Peak tuples retained in this operator's join/window state
    /// ([`millstream_ops::Operator::state_tuples`]), sampled after every
    /// charged batch. 0 for stateless operators.
    pub peak_state: u64,
    /// Columnar runs compacted by this operator's tiered join state
    /// ([`millstream_ops::Operator::spill_stats`]). 0 without tiering.
    pub compacted_runs: u64,
    /// Run payload bytes this operator spilled to disk.
    pub spilled_bytes: u64,
    /// Wholly-expired runs retired by header comparison (never scanned).
    pub run_drops: u64,
}

/// Aggregate executor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Operator steps executed.
    pub steps: u64,
    /// Scheduling decisions made (batches executed). Equals `steps` under
    /// per-tuple execution (`encore_batch == 1`); smaller when Encore runs
    /// fuse, and `steps / batches` is the realized batching factor.
    pub batches: u64,
    /// Backtrack hops performed.
    pub backtracks: u64,
    /// On-demand ETS generated.
    pub ets_generated: u64,
    /// Total work units (cost-model input) executed.
    pub work_units: u64,
    /// Heartbeats dropped at ingestion for being stale (at or below an
    /// already-asserted punctuation mark, or below the data high-water).
    pub dropped_stale_heartbeats: u64,
    /// Ordering-contract violations observed by the sentinel layer
    /// (`MILLSTREAM_CHECK=counters`; under `strict` the first violation
    /// that nothing else catches aborts execution instead). Sums buffer
    /// order regressions, punctuation-dominance, TSM-consistency and
    /// clock-monotonicity violations.
    pub invariant_violations: u64,
    /// Data tuples shed at ingest under critical feedback pressure with
    /// shedding enabled — *declared* load shedding, never silent: every
    /// missing tuple is accounted here and in the per-source
    /// `SourceState::shed_tuples`.
    pub shed_tuples: u64,
    /// Feedback signals delivered to operators (pressure-level changes
    /// observed during upstream propagation).
    pub feedback_signals: u64,
    /// Largest per-operator join/window state (in tuples) observed at any
    /// single operator instance — the punctuation-purge boundedness signal
    /// (paper Fig. 8 methodology). Merged with `max`, not `+`: it is a
    /// high-water, not a counter.
    pub peak_join_state: u64,
    /// Columnar runs compacted across all tiered join states
    /// (`--join-spill-budget`; 0 with tiering off).
    pub compacted_runs: u64,
    /// Join-run payload bytes spilled to the disk tier.
    pub spilled_bytes: u64,
    /// Wholly-expired join runs retired at a floor advance by header
    /// comparison — the tiered store's O(1)-purge signal.
    pub run_drops: u64,
}

impl ExecStats {
    /// Accumulates another executor's counters into this one — the single
    /// definition of cross-component stats merging, so a counter added to
    /// `ExecStats` can never be silently dropped from a merged
    /// [`crate::ParallelSnapshot`].
    pub fn merge(&mut self, other: &ExecStats) {
        let ExecStats {
            steps,
            batches,
            backtracks,
            ets_generated,
            work_units,
            dropped_stale_heartbeats,
            invariant_violations,
            shed_tuples,
            feedback_signals,
            peak_join_state,
            compacted_runs,
            spilled_bytes,
            run_drops,
        } = other;
        self.steps += steps;
        self.batches += batches;
        self.backtracks += backtracks;
        self.ets_generated += ets_generated;
        self.work_units += work_units;
        self.dropped_stale_heartbeats += dropped_stale_heartbeats;
        self.invariant_violations += invariant_violations;
        self.shed_tuples += shed_tuples;
        self.feedback_signals += feedback_signals;
        self.peak_join_state = self.peak_join_state.max(*peak_join_state);
        self.compacted_runs += compacted_runs;
        self.spilled_bytes += spilled_bytes;
        self.run_drops += run_drops;
    }
}

/// Execution tuning knobs, separate from the paper-level policies
/// ([`EtsPolicy`], [`SchedPolicy`]) because they must not change output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Maximum consecutive Encore steps of one operator fused into a
    /// single scheduling decision. `1` reproduces the paper's per-tuple
    /// execution exactly; larger values amortize NOS overhead over runs of
    /// silent steps (e.g. a filter draining a burst of non-matching
    /// tuples). Only batch-safe operators ([`millstream_ops::Operator::batch_safe`])
    /// and only the depth-first scheduler use the batched path; output is
    /// byte-identical either way.
    pub encore_batch: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { encore_batch: 1 }
    }
}

/// Feedback-punctuation configuration: pressure signals flowing against
/// the data direction (Fernández-Moctezuma & Tufte; ROADMAP item 4).
///
/// At every quiescent point the executor classifies each operator's input
/// occupancy against [`Watermarks`], propagates the maximum level
/// *upstream* (reverse-topologically, the direction ordinary punctuation
/// never travels), delivers [`millstream_buffer::FeedbackSignal`]s to
/// operators whose level changed, and publishes per-source levels in
/// lock-free [`millstream_buffer::FeedbackRegisters`] for external pacing
/// (the network server reads them to throttle producers).
///
/// The two degradation knobs are separate and default **off** so that a
/// feedback-enabled executor with both disabled is *output-equivalent* to
/// a feedback-free one — signaling alone must never change results (the
/// differential fuzzer pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedbackConfig {
    /// Occupancy thresholds classifying queue pressure.
    pub watermarks: millstream_buffer::Watermarks,
    /// Declared load shedding: at `Critical` source pressure, `ingest`
    /// drops the data tuple and counts it ([`ExecStats::shed_tuples`],
    /// `SourceState::shed_tuples`) instead of enqueueing. Never silent,
    /// never applied to punctuation.
    pub shed: bool,
    /// Degraded-mode operator reactions: signals carry
    /// `allow_degraded = true`, permitting e.g. `Reorder` slack
    /// tightening (which may reclassify stragglers as late).
    pub tighten_slack: bool,
}

impl FeedbackConfig {
    /// Feedback with the given watermarks; both degradation knobs off.
    pub fn new(watermarks: millstream_buffer::Watermarks) -> Self {
        FeedbackConfig {
            watermarks,
            shed: false,
            tighten_slack: false,
        }
    }

    /// Enables declared load shedding at critical pressure (builder style).
    pub fn with_shed(mut self, on: bool) -> Self {
        self.shed = on;
        self
    }

    /// Allows degraded-mode operator reactions (builder style).
    pub fn with_tighten_slack(mut self, on: bool) -> Self {
        self.tighten_slack = on;
        self
    }
}

/// The depth-first NOS executor over one query graph.
pub struct Executor {
    graph: QueryGraph,
    clock: Arc<VirtualClock>,
    cost: CostModel,
    policy: EtsPolicy,
    sched: SchedPolicy,
    opts: ExecOptions,
    current: Option<NodeId>,
    /// Rotation cursor for round-robin scheduling.
    rr_cursor: usize,
    idle: HashMap<NodeId, IdleTracker>,
    stats: ExecStats,
    profile: Vec<OpProfile>,
    /// Runtime invariant checking (`MILLSTREAM_CHECK`, or programmatic via
    /// [`Executor::with_check_mode`]).
    check: CheckMode,
    sentinel_stats: Arc<SentinelStats>,
    /// Last clock reading observed by a step — the clock-monotonicity
    /// check's floor.
    last_clock: Timestamp,
    /// Optional ring buffer of recent activities (diagnostics).
    trace: Option<std::collections::VecDeque<(Timestamp, Activity)>>,
    trace_capacity: usize,
    /// Scratch storage reused across backtracks so the steady-state
    /// scheduling loop never allocates: the DFS stack over predecessor
    /// chains and the visited set guarding multi-sink hand-offs.
    bt_stack: Vec<Pred>,
    bt_visited: std::collections::HashSet<NodeId>,
    /// Feedback-punctuation channel (None = no feedback propagation).
    feedback: Option<FeedbackConfig>,
    /// Last pressure level delivered to each operator (wire encoding) —
    /// signals fire only on change.
    node_pressure: Vec<u8>,
    /// Reverse-topological propagation scratch, reused across rounds.
    pressure_scratch: Vec<u8>,
    /// Published per-source pressure levels (shared with external pacers).
    feedback_regs: Arc<millstream_buffer::FeedbackRegisters>,
}

impl Executor {
    /// Creates an executor over `graph` driven by `clock`.
    pub fn new(
        graph: QueryGraph,
        clock: Arc<VirtualClock>,
        cost: CostModel,
        policy: EtsPolicy,
    ) -> Self {
        let mut graph = graph;
        let profile = graph
            .ops
            .iter()
            .map(|n| OpProfile {
                name: n.name.clone(),
                ..OpProfile::default()
            })
            .collect();
        let check = CheckMode::from_env();
        let sentinel_stats = SentinelStats::shared();
        if check.is_enabled() {
            graph.set_check_mode(check, &sentinel_stats);
        }
        let last_clock = clock.now();
        let num_ops = graph.ops.len();
        let num_sources = graph.sources.len();
        Executor {
            graph,
            clock,
            cost,
            policy,
            sched: SchedPolicy::DepthFirst,
            opts: ExecOptions::default(),
            current: None,
            rr_cursor: 0,
            idle: HashMap::new(),
            stats: ExecStats::default(),
            profile,
            check,
            sentinel_stats,
            last_clock,
            trace: None,
            trace_capacity: 0,
            bt_stack: Vec::new(),
            bt_visited: std::collections::HashSet::new(),
            feedback: None,
            node_pressure: vec![0; num_ops],
            pressure_scratch: Vec::new(),
            feedback_regs: millstream_buffer::FeedbackRegisters::shared(num_sources),
        }
    }

    /// Overrides the runtime invariant-checking mode (builder style). The
    /// default comes from the `MILLSTREAM_CHECK` environment variable.
    pub fn with_check_mode(mut self, mode: CheckMode) -> Self {
        self.check = mode;
        self.graph.set_check_mode(mode, &self.sentinel_stats);
        self
    }

    /// The active invariant-checking mode.
    pub fn check_mode(&self) -> CheckMode {
        self.check
    }

    /// Enables the feedback-punctuation channel (builder style): pressure
    /// levels are propagated upstream at every quiescent point and
    /// published per source; see [`FeedbackConfig`].
    pub fn with_feedback(mut self, cfg: FeedbackConfig) -> Self {
        self.feedback = Some(cfg);
        self
    }

    /// The feedback configuration in effect, if any.
    pub fn feedback_config(&self) -> Option<FeedbackConfig> {
        self.feedback
    }

    /// The published per-source pressure registers. All-`Normal` unless
    /// feedback is enabled. Cheap to clone and safe to read from other
    /// threads (relaxed atomics).
    pub fn feedback_registers(&self) -> &Arc<millstream_buffer::FeedbackRegisters> {
        &self.feedback_regs
    }

    /// The current pressure level of a source (its own buffer occupancy
    /// maxed with everything downstream of its consumer).
    pub fn source_pressure(&self, source: SourceId) -> millstream_buffer::PressureLevel {
        self.feedback_regs.get(source.0)
    }

    /// The shared sentinel counters (all zero when checking is off).
    pub fn sentinel_stats(&self) -> &Arc<SentinelStats> {
        &self.sentinel_stats
    }

    /// Enables activity tracing: the last `capacity` scheduler activities
    /// are retained and can be rendered with [`Executor::render_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(std::collections::VecDeque::with_capacity(capacity));
        self.trace_capacity = capacity.max(1);
    }

    /// The retained trace, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &(Timestamp, Activity)> {
        self.trace.iter().flatten()
    }

    /// Renders the retained trace as human-readable lines.
    pub fn render_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (at, activity) in self.trace() {
            let line = match activity {
                Activity::Executed { node, outcome } => format!(
                    "{at} exec {} (consumed {}, produced {})",
                    self.graph.op_name(*node),
                    outcome.consumed,
                    outcome.produced
                ),
                Activity::EtsGenerated { source, ts } => {
                    format!("{at} ETS on {} @ {ts}", self.graph.source(*source).name)
                }
                Activity::Quiescent => format!("{at} quiescent"),
            };
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Selects the operator-scheduling discipline (builder style).
    pub fn with_sched_policy(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the execution tuning knobs (builder style).
    pub fn with_exec_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the Encore batch size (builder style); see
    /// [`ExecOptions::encore_batch`].
    pub fn with_encore_batch(mut self, encore_batch: usize) -> Self {
        self.opts.encore_batch = encore_batch.max(1);
        self
    }

    /// The execution tuning knobs in effect.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// The underlying graph (read access).
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Executor statistics so far.
    pub fn stats(&self) -> ExecStats {
        let mut stats = self.stats;
        stats.invariant_violations = self.sentinel_stats.total();
        // Tier counters are lifetime totals held by the operators
        // themselves; the profile mirrors them (latest sample wins), so
        // summing the profile is summing the operators.
        for p in &self.profile {
            stats.compacted_runs += p.compacted_runs;
            stats.spilled_bytes += p.spilled_bytes;
            stats.run_drops += p.run_drops;
        }
        stats
    }

    /// Per-operator execution profile (steps, tuples, virtual busy time).
    pub fn profile(&self) -> &[OpProfile] {
        &self.profile
    }

    /// Records one executed batch (one or more steps) against the
    /// operator's profile.
    fn charge(&mut self, node: NodeId, batch: &BatchOutcome, cost: millstream_types::TimeDelta) {
        let op = &self.graph.ops[node.0].op;
        let state = op.state_tuples() as u64;
        let spill = op.spill_stats();
        let p = &mut self.profile[node.0];
        p.steps += batch.steps as u64;
        p.consumed += batch.consumed as u64;
        p.produced += batch.produced as u64;
        p.busy_micros += cost.as_micros();
        p.peak_state = p.peak_state.max(state);
        // Lifetime totals from the operator, not deltas: assign.
        p.compacted_runs = spill.compacted_runs;
        p.spilled_bytes = spill.spilled_bytes;
        p.run_drops = spill.run_drops;
        self.stats.peak_join_state = self.stats.peak_join_state.max(state);
    }

    /// Begins idle-waiting tracking for `node` (typically the IWP operator
    /// under study).
    pub fn monitor_idle(&mut self, node: NodeId) {
        self.idle.insert(node, IdleTracker::new(self.clock.now()));
    }

    /// The idle tracker for a monitored node.
    pub fn idle_tracker(&self, node: NodeId) -> Option<&IdleTracker> {
        self.idle.get(&node)
    }

    /// Finalizes all idle trackers at the current clock (end of run).
    pub fn finish_idle(&mut self) {
        let now = self.clock.now();
        for t in self.idle.values_mut() {
            t.finish(now);
        }
    }

    /// Declares end-of-stream on a source: no tuple will ever arrive there
    /// again. A punctuation at `Timestamp::MAX` is injected, which lets
    /// idle-waiting operators drain everything and windowed aggregates
    /// flush their final windows. Idempotent; later `ingest` calls on the
    /// source fail.
    pub fn close_source(&mut self, source: SourceId) -> Result<()> {
        let s = &mut self.graph.sources[source.0];
        if s.closed {
            return Ok(());
        }
        s.closed = true;
        self.graph.buffers[s.buffer.0]
            .borrow_mut()
            .push(Tuple::punctuation(Timestamp::MAX))?;
        self.refresh_idle();
        Ok(())
    }

    /// Ingests a data tuple at a source (the external wrapper's push). This
    /// re-arms every source's on-demand ETS budget: fresh data is a new
    /// activation.
    pub fn ingest(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        {
            // Declared load shedding: at critical pressure (as of the last
            // feedback round) a data tuple is dropped *and counted* instead
            // of deepening the queues. Only data is ever shed — punctuation
            // and heartbeats always pass — so the ordering and
            // punctuation-dominance contracts are untouched.
            if self
                .feedback
                .is_some_and(|cfg| cfg.shed && !tuple.is_punctuation())
                && self.feedback_regs.get(source.0) == millstream_buffer::PressureLevel::Critical
                && !self.graph.sources[source.0].closed
            {
                self.graph.sources[source.0].shed_tuples += 1;
                self.stats.shed_tuples += 1;
                return Ok(());
            }
            let s = &mut self.graph.sources[source.0];
            // A punctuation tuple slipping through here would bypass the
            // heartbeat high-water accounting below and corrupt ETS state
            // (the source's data high-water would absorb a punctuation
            // timestamp); reject it structurally rather than only in debug
            // builds.
            if tuple.is_punctuation() {
                return Err(millstream_types::Error::runtime(format!(
                    "ingest on source `{}` requires a data tuple; \
                     use ingest_heartbeat for punctuation",
                    s.name
                )));
            }
            if s.closed {
                return Err(millstream_types::Error::runtime(format!(
                    "source `{}` is closed",
                    s.name
                )));
            }
            // Max, not last: unordered sources may push a regressed ts, and
            // the ETS floor must never move backwards.
            s.last_data_ts = Some(s.last_data_ts.map_or(tuple.ts, |p| p.max(tuple.ts)));
            s.last_data_arrival = Some(self.clock.now());
            s.ingested += 1;
            self.graph.buffers[s.buffer.0].borrow_mut().push(tuple)?;
        }
        for s in &mut self.graph.sources {
            s.ets_budget_used = false;
        }
        self.refresh_idle();
        Ok(())
    }

    /// Ingests a run of data tuples at one source in a single call — the
    /// exchange-edge fast path (one command per drained shard queue, not
    /// per tuple). Semantically identical to calling [`Executor::ingest`]
    /// per tuple: same structural punctuation rejection, same per-source
    /// bookkeeping, same budget re-arm; the buffer receives the run via
    /// its pooled [`Buffer::push_batch`] path.
    ///
    /// Load shedding inspects per-tuple state, so under critical feedback
    /// pressure the batch degrades to the per-tuple path.
    pub fn ingest_batch(&mut self, source: SourceId, tuples: Vec<Tuple>) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        if self.feedback.is_some_and(|cfg| cfg.shed)
            && self.feedback_regs.get(source.0) == millstream_buffer::PressureLevel::Critical
        {
            for t in tuples {
                self.ingest(source, t)?;
            }
            return Ok(());
        }
        {
            let s = &mut self.graph.sources[source.0];
            if s.closed {
                return Err(millstream_types::Error::runtime(format!(
                    "source `{}` is closed",
                    s.name
                )));
            }
            let mut max_ts: Option<Timestamp> = None;
            for t in &tuples {
                // Same wording as `ingest`: a batch is semantically one
                // ingest per tuple, and equivalence tests pin messages.
                if t.is_punctuation() {
                    return Err(millstream_types::Error::runtime(format!(
                        "ingest on source `{}` requires a data tuple; \
                         use ingest_heartbeat for punctuation",
                        s.name
                    )));
                }
                max_ts = Some(max_ts.map_or(t.ts, |p| p.max(t.ts)));
            }
            let count = tuples.len() as u64;
            self.graph.buffers[s.buffer.0]
                .borrow_mut()
                .push_batch(tuples)?;
            s.last_data_ts = Some(match (s.last_data_ts, max_ts) {
                (Some(p), Some(m)) => p.max(m),
                (p, m) => p.or(m).expect("batch is non-empty"),
            });
            s.last_data_arrival = Some(self.clock.now());
            s.ingested += count;
        }
        for s in &mut self.graph.sources {
            s.ets_budget_used = false;
        }
        self.refresh_idle();
        Ok(())
    }

    /// Ingests a heartbeat punctuation at a source — the periodic-ETS
    /// baseline of [Johnson et al., VLDB'05] (experiment line B). Stale
    /// heartbeats are dropped at the door (and counted in
    /// [`ExecStats::dropped_stale_heartbeats`]): one below the buffer's
    /// data high-water mark carries no order information, and one at or
    /// below an already-asserted punctuation mark is a duplicate ETS — a
    /// line-B run would otherwise push a redundant punctuation through the
    /// whole graph every period. Like [`Executor::ingest`], heartbeats on
    /// a closed source are a runtime error: end-of-stream already asserted
    /// `Timestamp::MAX`.
    pub fn ingest_heartbeat(&mut self, source: SourceId, ts: Timestamp) -> Result<()> {
        let s = &mut self.graph.sources[source.0];
        if s.closed {
            return Err(millstream_types::Error::runtime(format!(
                "source `{}` is closed",
                s.name
            )));
        }
        let buffer = &self.graph.buffers[s.buffer.0];
        let stale = {
            let b = buffer.borrow();
            b.high_water().is_some_and(|hw| ts < hw)
                || b.punct_high_water().is_some_and(|hw| ts <= hw)
        };
        if stale {
            self.stats.dropped_stale_heartbeats += 1;
            return Ok(());
        }
        buffer.borrow_mut().push(Tuple::punctuation(ts))?;
        // A heartbeat is an externally-supplied ETS: fold it into the
        // source's punctuation frontier so on-demand generation never
        // produces an ETS *below* it (the buffer would reject the
        // regressed punctuation as out-of-order).
        s.ets_high_water = Some(s.ets_high_water.map_or(ts, |hw| hw.max(ts)));
        self.refresh_idle();
        Ok(())
    }

    /// Re-evaluates the idle-waiting state of every monitored node at the
    /// current clock. Call after ingesting events or jumping the clock.
    pub fn refresh_idle(&mut self) {
        if self.idle.is_empty() {
            return;
        }
        let now = self.clock.now();
        let QueryGraph { ops, buffers, .. } = &mut self.graph;
        for (&node, tracker) in self.idle.iter_mut() {
            // Idle-waiting is counted while *data* tuples are blocked; a
            // trailing punctuation that cannot advance yet delays nothing.
            let pending = ops[node.0]
                .inputs
                .iter()
                .any(|b| buffers[b.0].borrow().data_len() > 0);
            let ready = poll_node(ops, buffers, node, now).is_ready();
            tracker.set_idle(now, pending && !ready);
        }
    }

    /// Executes one scheduling step. Returns what happened; on
    /// [`Activity::Quiescent`] the caller should deliver more input or
    /// advance time.
    pub fn step(&mut self) -> Result<Activity> {
        let activity = self.step_untraced()?;
        if let Some(trace) = &mut self.trace {
            // Suppress runs of quiescence: one entry carries the signal.
            let redundant = matches!(activity, Activity::Quiescent)
                && matches!(trace.back(), Some((_, Activity::Quiescent)));
            if !redundant {
                if trace.len() == self.trace_capacity {
                    trace.pop_front();
                }
                trace.push_back((self.clock.now(), activity.clone()));
            }
        }
        Ok(activity)
    }

    fn step_untraced(&mut self) -> Result<Activity> {
        self.check_clock()?;
        if self.sched == SchedPolicy::RoundRobin {
            return self.step_round_robin();
        }
        let Some(node) = self.current.or_else(|| self.find_entry_or_starved()) else {
            self.current = None;
            self.refresh_idle();
            return Ok(Activity::Quiescent);
        };
        self.current = Some(node);

        let now = self.clock.now();
        let poll = {
            let QueryGraph { ops, buffers, .. } = &mut self.graph;
            poll_node(ops, buffers, node, now)
        };
        match poll {
            Poll::Ready => {
                // The batched Encore path: run up to `encore_batch`
                // consecutive steps of this operator as one scheduling
                // decision. The batch stops at every per-tuple NOS boundary
                // (yield, starvation), so `select_next` sees the same state
                // it would after single-stepping — outputs are identical.
                // Operators that read the clock are not batch-safe and run
                // one step at a time.
                let max_steps = if self.graph.ops[node.0].op.batch_safe() {
                    self.opts.encore_batch.max(1)
                } else {
                    1
                };
                let batch = {
                    let QueryGraph { ops, buffers, .. } = &mut self.graph;
                    if max_steps > 1 {
                        exec_node_batch(ops, buffers, node, now, max_steps)?
                    } else {
                        // encore_batch == 1 (or a clock-reading operator):
                        // take the plain per-tuple step, so per-tuple
                        // execution stays the unmodified legacy path.
                        let mut one = BatchOutcome::default();
                        one.record(exec_node(ops, buffers, node, now)?);
                        one
                    }
                };
                let cost = self.cost.batch_cost(batch.steps, batch.total_work());
                self.clock.advance(cost);
                self.stats.steps += batch.steps as u64;
                self.stats.batches += 1;
                self.stats.work_units += batch.total_work() as u64;
                self.charge(node, &batch, cost);
                self.check_tsm(node)?;
                self.select_next(node);
                self.refresh_idle();
                Ok(Activity::Executed {
                    node,
                    outcome: batch.as_step_outcome(),
                })
            }
            Poll::Starved { starving } => {
                // Reuse the visited set across steps; its capacity sticks,
                // so steady-state backtracking never allocates.
                let mut visited = std::mem::take(&mut self.bt_visited);
                visited.clear();
                visited.insert(node);
                let activity = self.backtrack(node, &starving, &mut visited);
                self.bt_visited = visited;
                let activity = activity?;
                self.refresh_idle();
                Ok(activity)
            }
        }
    }

    /// One round-robin scheduling step: run the next runnable operator in
    /// rotation; when none is runnable, fall back to the backtracking/ETS
    /// machinery from a starved operator with pending input.
    fn step_round_robin(&mut self) -> Result<Activity> {
        let n = self.graph.ops.len();
        let now = self.clock.now();
        let mut chosen = None;
        {
            let QueryGraph { ops, buffers, .. } = &mut self.graph;
            for k in 0..n {
                let i = (self.rr_cursor + k) % n;
                if poll_node(ops, buffers, NodeId(i), now).is_ready() {
                    chosen = Some(NodeId(i));
                    break;
                }
            }
        }
        match chosen {
            Some(node) => {
                self.rr_cursor = (node.0 + 1) % n;
                // Round-robin stays strictly per-tuple: fusing Encore runs
                // would starve the rotation's fairness, so `encore_batch`
                // is deliberately ignored here.
                let outcome = {
                    let QueryGraph { ops, buffers, .. } = &mut self.graph;
                    exec_node(ops, buffers, node, now)?
                };
                let mut batch = BatchOutcome::default();
                batch.record(outcome);
                let cost = self.cost.step_cost(outcome.total_work());
                self.clock.advance(cost);
                self.stats.steps += 1;
                self.stats.batches += 1;
                self.stats.work_units += outcome.total_work() as u64;
                self.charge(node, &batch, cost);
                self.check_tsm(node)?;
                self.refresh_idle();
                Ok(Activity::Executed { node, outcome })
            }
            None => {
                // No runnable operator: reuse the DFS starvation handling —
                // try *every* starved-with-pending node, since only some of
                // their sources may hold ETS budget (multi-sink graphs).
                let candidates: Vec<NodeId> = {
                    let QueryGraph { ops, buffers, .. } = &self.graph;
                    (0..n)
                        .map(NodeId)
                        .filter(|&i| {
                            ops[i.0]
                                .inputs
                                .iter()
                                .any(|b| !buffers[b.0].borrow().is_empty())
                        })
                        .collect()
                };
                for node in candidates {
                    let poll = {
                        let QueryGraph { ops, buffers, .. } = &mut self.graph;
                        poll_node(ops, buffers, node, now)
                    };
                    if let Poll::Starved { starving } = poll {
                        let activity = self.backtrack_rr(node, &starving)?;
                        if !matches!(activity, Activity::Quiescent) {
                            self.refresh_idle();
                            return Ok(activity);
                        }
                    }
                }
                self.refresh_idle();
                Ok(Activity::Quiescent)
            }
        }
    }

    /// Clock-monotonicity check: the virtual clock must never run
    /// backwards between scheduling steps. Monotone by construction today
    /// (`advance` is a fetch-add, `advance_to` a fetch-max), so this guards
    /// against future clock implementations or external tampering.
    fn check_clock(&mut self) -> Result<()> {
        if !self.check.is_enabled() {
            return Ok(());
        }
        let now = self.clock.now();
        if now < self.last_clock {
            self.sentinel_stats.record_clock_violation();
            if self.check == CheckMode::Strict {
                return Err(Error::invariant(
                    "clock-monotonicity",
                    "executor",
                    "",
                    now.as_micros(),
                    self.last_clock.as_micros(),
                ));
            }
        } else {
            self.last_clock = now;
        }
        Ok(())
    }

    /// TSM-register consistency: after an IWP operator runs, no output
    /// buffer's data high-water may exceed the operator's minimum TSM
    /// register — an output stamped beyond `min_tau` would claim order the
    /// registers cannot yet guarantee.
    fn check_tsm(&self, node: NodeId) -> Result<()> {
        if !self.check.is_enabled() {
            return Ok(());
        }
        let n = &self.graph.ops[node.0];
        let Some(tau) = n.op.tsm_min() else {
            return Ok(());
        };
        for b in &n.outputs {
            let violation = {
                let buf = self.graph.buffers[b.0].borrow();
                match buf.high_water() {
                    Some(hw) if hw > tau => Some((buf.name().to_string(), hw)),
                    _ => None,
                }
            };
            if let Some((buffer, hw)) = violation {
                self.sentinel_stats.record_tsm_violation();
                if self.check == CheckMode::Strict {
                    return Err(Error::invariant(
                        "tsm-consistency",
                        &n.name,
                        &buffer,
                        hw.as_micros(),
                        tau.as_micros(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Round-robin variant of backtracking: identical source/ETS handling,
    /// but a runnable predecessor is simply left for the next rotation.
    fn backtrack_rr(&mut self, from: NodeId, starving: &[usize]) -> Result<Activity> {
        let mut stack = std::mem::take(&mut self.bt_stack);
        let result = self.backtrack_rr_with(from, starving, &mut stack);
        stack.clear();
        self.bt_stack = stack;
        result
    }

    fn backtrack_rr_with(
        &mut self,
        from: NodeId,
        starving: &[usize],
        stack: &mut Vec<Pred>,
    ) -> Result<Activity> {
        stack.clear();
        stack.extend(
            starving
                .iter()
                .rev()
                .map(|&j| self.graph.ops[from.0].preds[j]),
        );
        while let Some(pred) = stack.pop() {
            self.stats.backtracks += 1;
            self.clock.advance(self.cost.backtrack);
            match pred {
                Pred::Op(p) => {
                    let now = self.clock.now();
                    let QueryGraph { ops, buffers, .. } = &mut self.graph;
                    if let Poll::Starved { starving } = poll_node(ops, buffers, p, now) {
                        for &j in starving.iter().rev() {
                            stack.push(ops[p.0].preds[j]);
                        }
                    }
                }
                Pred::Source(sid) => {
                    let now = self.clock.now();
                    let buffer = self.graph.sources[sid.0].buffer;
                    if !self.graph.buffers[buffer.0].borrow().is_empty() {
                        continue;
                    }
                    let source = &mut self.graph.sources[sid.0];
                    if !source.ets_budget_used {
                        if let Some(ts) = self.policy.ets_for(source, now) {
                            source.ets_budget_used = true;
                            source.ets_generated += 1;
                            source.ets_high_water = Some(ts);
                            self.graph.buffers[buffer.0]
                                .borrow_mut()
                                .push(Tuple::punctuation(ts))?;
                            self.clock.advance(self.cost.ets_generation);
                            self.stats.ets_generated += 1;
                            return Ok(Activity::EtsGenerated { source: sid, ts });
                        }
                    }
                }
            }
        }
        Ok(Activity::Quiescent)
    }

    /// Generates an on-demand ETS for every open, empty-buffer source
    /// whose policy can promise one at the current clock — the
    /// externally-requested analogue of a starvation backtrack reaching
    /// the source. A locally-quiescent executor never backtracks, so when
    /// the starving consumer lives *downstream of the sink* (the sharded
    /// exchange's merge stage), its coordinator uses this to complete the
    /// serial backtrack's final hop across the shard boundary. Applies the
    /// register discipline of the backtrack path — same
    /// [`EtsPolicy::ets_for`] staleness rules, same clock cost — but not
    /// the per-epoch ETS budget: that budget re-arms on ingest, and a
    /// shard the router stops feeding would otherwise lose the ability to
    /// promise forever. `ets_for`'s suppression of non-advancing values
    /// is what bounds repeat generation here (the clock must move for a
    /// second promise to exist). Returns how many promises were made.
    pub fn promise_frontiers(&mut self) -> Result<u64> {
        let mut generated = 0;
        for i in 0..self.graph.sources.len() {
            let now = self.clock.now();
            let buffer = self.graph.sources[i].buffer;
            if !self.graph.buffers[buffer.0].borrow().is_empty() {
                continue;
            }
            let source = &mut self.graph.sources[i];
            if let Some(ts) = self.policy.ets_for(source, now) {
                source.ets_generated += 1;
                source.ets_high_water = Some(ts);
                self.graph.buffers[buffer.0]
                    .borrow_mut()
                    .push(Tuple::punctuation(ts))?;
                self.clock.advance(self.cost.ets_generation);
                self.stats.ets_generated += 1;
                generated += 1;
            }
        }
        Ok(generated)
    }

    /// Runs until quiescent or `max_steps` executor steps. Returns the
    /// number of steps taken. Mostly for tests and simple callers; real
    /// drivers interleave [`Executor::step`] with event delivery.
    pub fn run_until_quiescent(&mut self, max_steps: u64) -> Result<u64> {
        let mut taken = 0;
        while taken < max_steps {
            match self.step()? {
                Activity::Quiescent => break,
                _ => taken += 1,
            }
        }
        self.propagate_feedback();
        Ok(taken)
    }

    /// One feedback-punctuation round (no-op unless
    /// [`Executor::with_feedback`] was configured): classifies every
    /// operator's input occupancy, propagates the maximum level upstream
    /// against the data direction (node ids are topological, so one
    /// reverse pass suffices), signals operators whose level changed, and
    /// publishes per-source levels. Runs automatically at the end of
    /// [`Executor::run_until_quiescent`]; drivers stepping manually may
    /// call it at their own cadence.
    pub fn propagate_feedback(&mut self) {
        let Some(cfg) = self.feedback else {
            return;
        };
        let mut scratch = std::mem::take(&mut self.pressure_scratch);
        let n = self.graph.ops.len();
        scratch.clear();
        scratch.resize(n, 0);
        {
            let QueryGraph {
                ops,
                buffers,
                sources,
                ..
            } = &mut self.graph;
            for i in (0..n).rev() {
                let own: usize = ops[i]
                    .inputs
                    .iter()
                    .map(|b| buffers[b.0].borrow().len())
                    .sum();
                let mut level = cfg.watermarks.classify(own);
                for succ in &ops[i].succs {
                    level = level.max(millstream_buffer::PressureLevel::from_u8(scratch[succ.0]));
                }
                scratch[i] = level.as_u8();
                if scratch[i] != self.node_pressure[i] {
                    self.node_pressure[i] = scratch[i];
                    let signal = millstream_buffer::FeedbackSignal {
                        level,
                        queued: own,
                        allow_degraded: cfg.tighten_slack,
                    };
                    ops[i].op.on_feedback(&signal);
                    self.stats.feedback_signals += 1;
                }
            }
            for (s, state) in sources.iter().enumerate() {
                let occ = buffers[state.buffer.0].borrow().len();
                let level =
                    cfg.watermarks
                        .classify(occ)
                        .max(millstream_buffer::PressureLevel::from_u8(
                            scratch[state.consumer.0],
                        ));
                self.feedback_regs.set(s, level);
            }
        }
        self.pressure_scratch = scratch;
    }

    /// NOS continuation after executing `node` (Fig. 3 step 2).
    fn select_next(&mut self, node: NodeId) {
        let now = self.clock.now();
        let QueryGraph { ops, buffers, .. } = &mut self.graph;
        let n = &ops[node.0];
        // Forward: if yield then next := succ — the consumer of the first
        // output port holding tuples. (The operator before a sink needs no
        // special case: the sink operator itself has no output, so
        // execution drains it via Encore exactly as the paper's special
        // rule prescribes. Multi-output operators forward to the first
        // non-empty port; the remaining ports drain via later scans.)
        let forward = n
            .outputs
            .iter()
            .position(|b| !buffers[b.0].borrow().is_empty())
            .map(|port| n.succs[port]);
        if let Some(succ) = forward {
            self.current = Some(succ);
            return;
        }
        // Encore: else if more then next := self.
        if poll_node(ops, buffers, node, now).is_ready() {
            self.current = Some(node);
            return;
        }
        // Backtrack handled lazily: leave `current` at this node; the next
        // step() will poll it, find it starved and walk the preds.
        self.current = Some(node);
    }

    /// The Backtrack rule: walk predecessors of the starving inputs until a
    /// runnable operator is found or a source generates an ETS. Returns the
    /// resulting activity (an ETS event, or quiescence handling). `visited`
    /// guards against revisiting starved operators when one dead path hands
    /// over to another (multi-sink graphs).
    fn backtrack(
        &mut self,
        from: NodeId,
        starving: &[usize],
        visited: &mut std::collections::HashSet<NodeId>,
    ) -> Result<Activity> {
        let mut stack = std::mem::take(&mut self.bt_stack);
        let result = self.backtrack_with(from, starving, visited, &mut stack);
        stack.clear();
        self.bt_stack = stack;
        result
    }

    fn backtrack_with(
        &mut self,
        from: NodeId,
        starving: &[usize],
        visited: &mut std::collections::HashSet<NodeId>,
        stack: &mut Vec<Pred>,
    ) -> Result<Activity> {
        // Depth-first over the predecessor chains of the starving inputs.
        stack.clear();
        stack.extend(
            starving
                .iter()
                .rev()
                .map(|&j| self.graph.ops[from.0].preds[j]),
        );
        // The graph is a DAG with single-consumer buffers, so each pred is
        // visited at most once per backtrack; no visited-set needed.
        while let Some(pred) = stack.pop() {
            self.stats.backtracks += 1;
            self.clock.advance(self.cost.backtrack);
            match pred {
                Pred::Op(p) => {
                    let now = self.clock.now();
                    let QueryGraph { ops, buffers, .. } = &mut self.graph;
                    match poll_node(ops, buffers, p, now) {
                        Poll::Ready => {
                            self.current = Some(p);
                            // Resume execution there on the next step.
                            return self.step_resumed(p);
                        }
                        Poll::Starved { starving } => {
                            for &j in starving.iter().rev() {
                                stack.push(ops[p.0].preds[j]);
                            }
                        }
                    }
                }
                Pred::Source(sid) => {
                    let now = self.clock.now();
                    let consumer = self.graph.sources[sid.0].consumer;
                    let buffer = self.graph.sources[sid.0].buffer;
                    // A non-empty source buffer can only be reached here
                    // when the consumer is the starved operator itself
                    // (e.g. a union wired straight to sources); resume it
                    // only if it is actually runnable.
                    if !self.graph.buffers[buffer.0].borrow().is_empty() {
                        let QueryGraph { ops, buffers, .. } = &mut self.graph;
                        if poll_node(ops, buffers, consumer, now).is_ready() {
                            self.current = Some(consumer);
                            return self.step_resumed(consumer);
                        }
                        continue;
                    }
                    // Empty input buffer at a source: the §4 moment —
                    // generate an ETS on demand and send it down this path.
                    let source = &mut self.graph.sources[sid.0];
                    if !source.ets_budget_used {
                        if let Some(ts) = self.policy.ets_for(source, now) {
                            source.ets_budget_used = true;
                            source.ets_generated += 1;
                            source.ets_high_water = Some(ts);
                            self.graph.buffers[buffer.0]
                                .borrow_mut()
                                .push(Tuple::punctuation(ts))?;
                            self.clock.advance(self.cost.ets_generation);
                            self.stats.ets_generated += 1;
                            self.current = Some(consumer);
                            return Ok(Activity::EtsGenerated { source: sid, ts });
                        }
                    }
                    // No ETS possible here; fall through to other starving
                    // paths on the stack.
                }
            }
        }
        // Every starving path from `from` is dead. Another part of the
        // graph may still have work (multi-sink graphs): first any runnable
        // node, else another starved-with-pending node whose sources may
        // still hold ETS budget. `visited` bounds the hand-offs.
        if let Some(next) = self.find_entry() {
            self.current = Some(next);
            return self.step_untraced();
        }
        let now = self.clock.now();
        let next_starved = {
            let QueryGraph { ops, buffers, .. } = &mut self.graph;
            (0..ops.len()).map(NodeId).find(|n| {
                !visited.contains(n)
                    && ops[n.0]
                        .inputs
                        .iter()
                        .any(|b| !buffers[b.0].borrow().is_empty())
                    && !poll_node(ops, buffers, *n, now).is_ready()
            })
        };
        match next_starved {
            Some(n) => {
                visited.insert(n);
                let starving = {
                    let QueryGraph { ops, buffers, .. } = &mut self.graph;
                    match poll_node(ops, buffers, n, now) {
                        Poll::Starved { starving } => starving,
                        Poll::Ready => return Ok(Activity::Quiescent),
                    }
                };
                self.backtrack_with(n, &starving, visited, stack)
            }
            None => {
                self.current = None;
                Ok(Activity::Quiescent)
            }
        }
    }

    /// After backtracking lands on a runnable node, immediately execute it
    /// (the paper repeats the NOS step on the predecessor, which then runs).
    fn step_resumed(&mut self, _node: NodeId) -> Result<Activity> {
        self.step_untraced()
    }

    /// Finds a runnable operator (its `more` condition holds). Used as the
    /// backtrack fallback: it must never return a starved node, or
    /// backtracking would re-enter it forever.
    fn find_entry(&mut self) -> Option<NodeId> {
        let now = self.clock.now();
        let QueryGraph { ops, buffers, .. } = &mut self.graph;
        (0..ops.len())
            .map(NodeId)
            .find(|&n| poll_node(ops, buffers, n, now).is_ready())
    }

    /// Entry-point selection when the executor is (re)activated: prefer a
    /// runnable operator, but fall back to a *starved operator with queued
    /// input* — e.g. an IWP operator wired directly to its sources. Entering
    /// it triggers the Backtrack rule, which is where on-demand ETS
    /// generation happens; the backtrack's own fallback is ready-only, so
    /// this cannot loop.
    fn find_entry_or_starved(&mut self) -> Option<NodeId> {
        if let Some(n) = self.find_entry() {
            return Some(n);
        }
        let QueryGraph { ops, buffers, .. } = &self.graph;
        (0..ops.len()).map(NodeId).find(|&n| {
            ops[n.0]
                .inputs
                .iter()
                .any(|b| !buffers[b.0].borrow().is_empty())
        })
    }
}

/// Per-side port count up to which scratch contexts marshal buffer
/// references on the stack. Wider nodes (rare — a fan-in/fan-out beyond 8)
/// fall back to a heap `Vec`.
const MAX_INLINE_PORTS: usize = 8;

/// Builds the scratch [`OpContext`] for `node` and hands it, together with
/// the operator, to `f`. Every scheduling decision (poll, step, batch)
/// funnels through here, so the marshalling must not allocate: buffer
/// references land in stack arrays for the common port counts.
fn with_node_ctx<R>(
    ops: &mut [OpNode],
    buffers: &[RefCell<Buffer>],
    node: NodeId,
    now: Timestamp,
    f: impl FnOnce(&mut dyn Operator, &OpContext<'_>) -> R,
) -> R {
    let n = &mut ops[node.0];
    let Some(filler) = buffers.first() else {
        // No buffers means the node has no ports at all.
        let ctx = OpContext::new(&[], &[], now);
        return f(n.op.as_mut(), &ctx);
    };
    // Unused slots keep the filler reference and are never read: the
    // context only sees the `..len` prefix of each array.
    let mut in_arr = [filler; MAX_INLINE_PORTS];
    let mut out_arr = [filler; MAX_INLINE_PORTS];
    let in_heap: Vec<&RefCell<Buffer>>;
    let out_heap: Vec<&RefCell<Buffer>>;
    let inputs: &[&RefCell<Buffer>] = if n.inputs.len() <= MAX_INLINE_PORTS {
        for (slot, b) in in_arr.iter_mut().zip(&n.inputs) {
            *slot = &buffers[b.0];
        }
        &in_arr[..n.inputs.len()]
    } else {
        in_heap = n.inputs.iter().map(|b| &buffers[b.0]).collect();
        &in_heap
    };
    let outputs: &[&RefCell<Buffer>] = if n.outputs.len() <= MAX_INLINE_PORTS {
        for (slot, b) in out_arr.iter_mut().zip(&n.outputs) {
            *slot = &buffers[b.0];
        }
        &out_arr[..n.outputs.len()]
    } else {
        out_heap = n.outputs.iter().map(|b| &buffers[b.0]).collect();
        &out_heap
    };
    let ctx = OpContext::new(inputs, outputs, now);
    f(n.op.as_mut(), &ctx)
}

/// Polls a node's `more` condition with a scratch context.
fn poll_node(
    ops: &mut [OpNode],
    buffers: &[RefCell<Buffer>],
    node: NodeId,
    now: Timestamp,
) -> Poll {
    with_node_ctx(ops, buffers, node, now, |op, ctx| op.poll(ctx))
}

/// Executes one step of a node.
fn exec_node(
    ops: &mut [OpNode],
    buffers: &[RefCell<Buffer>],
    node: NodeId,
    now: Timestamp,
) -> Result<StepOutcome> {
    with_node_ctx(ops, buffers, node, now, |op, ctx| op.step(ctx))
}

/// Executes up to `max_steps` fused Encore steps of a node.
fn exec_node_batch(
    ops: &mut [OpNode],
    buffers: &[RefCell<Buffer>],
    node: NodeId,
    now: Timestamp,
    max_steps: usize,
) -> Result<BatchOutcome> {
    with_node_ctx(ops, buffers, node, now, |op, ctx| {
        op.step_batch(ctx, max_steps)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Input};
    use millstream_ops::{Filter, Sink, SinkCollector, Union, VecCollector};
    use millstream_types::{DataType, Expr, Field, Schema, TimeDelta, TimestampKind, Value};

    /// Shared collector so tests can inspect deliveries after the graph
    /// takes ownership of the sink.
    #[derive(Clone, Default)]
    struct Shared(Arc<std::sync::Mutex<VecCollector>>);

    impl SinkCollector for Shared {
        fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
            self.0.lock().unwrap().deliver(tuple, now);
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int)])
    }

    struct Fig4 {
        exec: Executor,
        s1: SourceId,
        s2: SourceId,
        union: NodeId,
        out: Shared,
    }

    /// Builds the paper's Fig. 4 graph: S1 → σ1 ↘
    ///                                            ∪ → sink
    ///                                  S2 → σ2 ↗
    fn fig4(policy: EtsPolicy, latent: bool) -> Fig4 {
        let mut b = GraphBuilder::new();
        let s1 = b.source(
            "S1",
            schema(),
            if latent {
                TimestampKind::Latent
            } else {
                TimestampKind::Internal
            },
        );
        let s2 = b.source(
            "S2",
            schema(),
            if latent {
                TimestampKind::Latent
            } else {
                TimestampKind::Internal
            },
        );
        let pass = Expr::col(0).ge(Expr::lit(0)); // everything passes
        let f1 = b
            .operator(
                Box::new(Filter::new("σ1", schema(), pass.clone())),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let f2 = b
            .operator(
                Box::new(Filter::new("σ2", schema(), pass)),
                vec![Input::Source(s2)],
            )
            .unwrap();
        let union_op = if latent {
            Union::latent("∪", schema(), 2)
        } else {
            Union::new("∪", schema(), 2)
        };
        let u = b
            .operator(Box::new(union_op), vec![Input::Op(f1), Input::Op(f2)])
            .unwrap();
        let out = Shared::default();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), out.clone())),
                vec![Input::Op(u)],
            )
            .unwrap();
        let graph = b.build().unwrap();
        let clock = VirtualClock::shared();
        let mut exec = Executor::new(graph, clock, CostModel::default(), policy);
        exec.monitor_idle(u);
        Fig4 {
            exec,
            s1,
            s2,
            union: u,
            out,
        }
    }

    fn data(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    /// Applies a by-value transform to a field in place. The closure must
    /// not panic (it only sets a flag here).
    fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
        unsafe {
            let old = std::ptr::read(slot);
            let new = f(old);
            std::ptr::write(slot, new);
        }
    }

    #[test]
    fn no_ets_idle_waits_on_sparse_input() {
        let mut f = fig4(EtsPolicy::None, false);
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        f.exec.ingest(f.s1, data(100, 1)).unwrap();
        f.exec.run_until_quiescent(100).unwrap();
        // The tuple crossed σ1 but is stuck at the union: S2 never spoke.
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 0);
        assert!(f.exec.graph().total_queued() >= 1);
        // Union is idle-waiting.
        f.exec.clock().advance_to(Timestamp::from_secs(10));
        f.exec.refresh_idle();
        let frac = f
            .exec
            .idle_tracker(f.union)
            .unwrap()
            .idle_fraction(f.exec.clock().now());
        assert!(frac > 0.9, "idle fraction {frac}");
    }

    #[test]
    fn on_demand_ets_unblocks_immediately() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        f.exec.ingest(f.s1, data(100, 1)).unwrap();
        let mut ets_sources = vec![];
        loop {
            match f.exec.step().unwrap() {
                Activity::Quiescent => break,
                Activity::EtsGenerated { source, .. } => ets_sources.push(source),
                Activity::Executed { .. } => {}
            }
        }
        // The unblocking ETS targets the silent source; a follow-up ETS on
        // S1 may then flush the residual punctuation at the union.
        assert_eq!(ets_sources.first(), Some(&f.s2));
        assert_eq!(
            f.out.0.lock().unwrap().delivered.len(),
            1,
            "tuple delivered"
        );
        // Latency is microseconds (processing only), not idle-waiting.
        let (t, at) = f.out.0.lock().unwrap().delivered[0].clone();
        let latency = at.duration_since(t.entry);
        assert!(
            latency < TimeDelta::from_millis(1),
            "latency {latency} should be service-time only"
        );
        // No data tuple remains queued; at most a trailing punctuation can
        // linger at the union (its peer register has not reached it yet).
        assert_eq!(f.exec.graph().tracker().data_total(), 0);
    }

    #[test]
    fn ets_budget_bounds_punctuation() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.clock().advance_to(Timestamp::from_micros(50));
        f.exec.ingest(f.s1, data(50, 1)).unwrap();
        f.exec.run_until_quiescent(1_000).unwrap();
        let after_first = f.exec.stats().ets_generated;
        assert!(after_first >= 1);
        // Quiescent now; stepping more must not spin out new ETS.
        for _ in 0..10 {
            assert_eq!(f.exec.step().unwrap(), Activity::Quiescent);
        }
        assert_eq!(f.exec.stats().ets_generated, after_first);
        // A fresh arrival re-arms the budget.
        f.exec.clock().advance_to(Timestamp::from_micros(500));
        f.exec.ingest(f.s1, data(500, 2)).unwrap();
        f.exec.run_until_quiescent(1_000).unwrap();
        assert!(f.exec.stats().ets_generated > after_first);
    }

    #[test]
    fn latent_streams_never_wait() {
        let mut f = fig4(EtsPolicy::None, true);
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        f.exec.ingest(f.s1, data(100, 1)).unwrap();
        f.exec.run_until_quiescent(100).unwrap();
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 1);
        assert_eq!(f.exec.stats().ets_generated, 0);
    }

    #[test]
    fn heartbeats_unblock_line_b() {
        let mut f = fig4(EtsPolicy::None, false);
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        f.exec.ingest(f.s1, data(100, 1)).unwrap();
        f.exec.run_until_quiescent(100).unwrap();
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 0);
        // Periodic heartbeat on the sparse stream at ts 200.
        f.exec.clock().advance_to(Timestamp::from_micros(200));
        f.exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(200))
            .unwrap();
        f.exec.run_until_quiescent(100).unwrap();
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 1);
    }

    #[test]
    fn merged_output_is_ordered_under_interleaving() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        // Interleaved arrivals on both streams.
        let mut arrivals: Vec<(SourceId, u64)> = vec![];
        for i in 0..50u64 {
            arrivals.push((f.s1, 100 + i * 20));
            if i % 10 == 0 {
                arrivals.push((f.s2, 105 + i * 20));
            }
        }
        arrivals.sort_by_key(|&(_, t)| t);
        for (src, t) in arrivals {
            f.exec.clock().advance_to(Timestamp::from_micros(t));
            // Internal timestamps are assigned on DSMS entry from the
            // system clock, which may have run past the arrival instant
            // while the CPU was busy.
            let stamp = f.exec.clock().now().max(Timestamp::from_micros(t));
            f.exec
                .ingest(src, data(stamp.as_micros(), t as i64))
                .unwrap();
            f.exec.run_until_quiescent(10_000).unwrap();
        }
        let delivered = f.out.0.lock().unwrap().delivered.clone();
        assert_eq!(delivered.len(), 55);
        let ts: Vec<u64> = delivered.iter().map(|(t, _)| t.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted, "sink receives a timestamp-ordered stream");
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.clock().advance_to(Timestamp::from_micros(10));
        f.exec.ingest(f.s1, data(10, 1)).unwrap();
        f.exec.run_until_quiescent(1_000).unwrap();
        let st = f.exec.stats();
        assert!(st.steps > 0);
        assert!(st.backtracks > 0);
        assert!(st.work_units > 0);

        // The built-in profiler attributes steps and virtual time per op.
        let profile = f.exec.profile();
        assert_eq!(profile.len(), 4);
        let total_steps: u64 = profile.iter().map(|p| p.steps).sum();
        assert_eq!(total_steps, st.steps);
        let sigma1 = profile.iter().find(|p| p.name == "σ1").unwrap();
        assert!(sigma1.consumed >= 1, "σ1 consumed the ingested tuple");
        assert!(sigma1.busy_micros > 0);
        let sink = profile.iter().find(|p| p.name == "sink").unwrap();
        assert!(sink.consumed >= 1);
        assert_eq!(sink.produced, 0, "sinks never produce");
    }

    #[test]
    fn round_robin_delivers_with_on_demand_ets() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        let mut rr = fig4(EtsPolicy::on_demand(), false);
        // Rebuild the executor with round-robin scheduling.
        take_mut(&mut rr.exec, |e| {
            e.with_sched_policy(SchedPolicy::RoundRobin)
        });

        for rig in [&mut f, &mut rr] {
            rig.exec.clock().advance_to(Timestamp::from_micros(100));
            rig.exec.ingest(rig.s1, data(100, 1)).unwrap();
            rig.exec.run_until_quiescent(10_000).unwrap();
        }
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 1, "DFS delivers");
        assert_eq!(
            rr.out.0.lock().unwrap().delivered.len(),
            1,
            "round-robin delivers"
        );
        assert!(rr.exec.stats().ets_generated >= 1);
    }

    #[test]
    fn trace_records_recent_activities() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.enable_trace(16);
        f.exec.clock().advance_to(Timestamp::from_micros(10));
        f.exec.ingest(f.s1, data(10, 1)).unwrap();
        f.exec.run_until_quiescent(1_000).unwrap();
        let rendered = f.exec.render_trace();
        assert!(rendered.contains("exec σ1"), "{rendered}");
        assert!(rendered.contains("ETS on S2"), "{rendered}");
        assert!(rendered.contains("exec sink"), "{rendered}");
        // Quiescent runs are collapsed and the buffer is bounded.
        assert!(f.exec.trace().count() <= 16);
        let quiescents = f
            .exec
            .trace()
            .filter(|(_, a)| matches!(a, Activity::Quiescent))
            .count();
        assert!(quiescents <= 1, "runs of quiescence collapse");
    }

    #[test]
    fn close_source_drains_everything() {
        let mut f = fig4(EtsPolicy::None, false);
        // Without ETS, data is stuck at the union…
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        for i in 0..5u64 {
            f.exec.ingest(f.s1, data(100 + i, (i as i64) + 1)).unwrap();
        }
        f.exec.run_until_quiescent(10_000).unwrap();
        assert_eq!(f.out.0.lock().unwrap().delivered.len(), 0);
        // …until both sources declare end-of-stream.
        f.exec.close_source(f.s1).unwrap();
        f.exec.close_source(f.s2).unwrap();
        f.exec.run_until_quiescent(10_000).unwrap();
        assert_eq!(
            f.out.0.lock().unwrap().delivered.len(),
            5,
            "EOS flushes the union"
        );
        assert_eq!(f.exec.graph().total_queued(), 0, "nothing left anywhere");
        // Idempotent close; rejected ingest.
        f.exec.close_source(f.s1).unwrap();
        assert!(f.exec.ingest(f.s1, data(999, 9)).is_err());
    }

    #[test]
    fn clock_advances_with_work() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.clock().advance_to(Timestamp::from_micros(10));
        let before = f.exec.clock().now();
        f.exec.ingest(f.s1, data(10, 1)).unwrap();
        f.exec.run_until_quiescent(1_000).unwrap();
        assert!(f.exec.clock().now() > before, "cost model charges time");
    }

    #[test]
    fn heartbeat_on_closed_source_errors_like_ingest() {
        let mut f = fig4(EtsPolicy::None, false);
        f.exec.close_source(f.s2).unwrap();
        let err = f
            .exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(100))
            .unwrap_err();
        assert!(err.to_string().contains("closed"), "{err}");
        // Identical contract to ingest on a closed source.
        let ingest_err = f.exec.ingest(f.s2, data(100, 1)).unwrap_err();
        assert_eq!(err.to_string(), ingest_err.to_string());
    }

    #[test]
    fn duplicate_heartbeats_are_dropped_and_counted() {
        let mut f = fig4(EtsPolicy::None, false);
        let hb = Timestamp::from_micros(200);
        f.exec.ingest_heartbeat(f.s2, hb).unwrap();
        let queued = f.exec.graph().total_queued();
        // The same heartbeat again adds no information: dropped at the
        // door, not pushed through the graph.
        f.exec.ingest_heartbeat(f.s2, hb).unwrap();
        assert_eq!(f.exec.graph().total_queued(), queued);
        assert_eq!(f.exec.stats().dropped_stale_heartbeats, 1);
        // A regressed heartbeat is dropped too.
        f.exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(150))
            .unwrap();
        assert_eq!(f.exec.stats().dropped_stale_heartbeats, 2);
        // A fresh heartbeat past the mark is admitted.
        f.exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(300))
            .unwrap();
        assert_eq!(f.exec.graph().total_queued(), queued + 1);
        assert_eq!(f.exec.stats().dropped_stale_heartbeats, 2);
    }

    #[test]
    fn heartbeat_at_data_high_water_is_still_admitted() {
        let mut f = fig4(EtsPolicy::None, false);
        f.exec.clock().advance_to(Timestamp::from_micros(100));
        f.exec.ingest(f.s2, data(100, 1)).unwrap();
        let queued = f.exec.graph().total_queued();
        // ts == data high-water: asserts silence up to 100 — informative.
        f.exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(100))
            .unwrap();
        assert_eq!(f.exec.graph().total_queued(), queued + 1);
        assert_eq!(f.exec.stats().dropped_stale_heartbeats, 0);
    }

    #[test]
    fn batched_execution_matches_per_tuple_output() {
        // Selective filters so Encore drop-runs actually fuse: only every
        // fourth value passes.
        fn selective(policy: EtsPolicy, k: usize) -> Fig4 {
            let mut f = fig4(policy, false);
            take_mut(&mut f.exec, |e| e.with_encore_batch(k));
            f
        }
        for policy in [EtsPolicy::None, EtsPolicy::on_demand()] {
            let mut base = selective(policy, 1);
            let mut batched = selective(policy, 64);
            for rig in [&mut base, &mut batched] {
                rig.exec.clock().advance_to(Timestamp::from_micros(100));
                for i in 0..40u64 {
                    rig.exec.ingest(rig.s1, data(100 + i, i as i64)).unwrap();
                    if i % 8 == 0 {
                        rig.exec.ingest(rig.s2, data(100 + i, -(i as i64))).unwrap();
                    }
                }
                rig.exec.run_until_quiescent(100_000).unwrap();
                rig.exec.close_source(rig.s1).unwrap();
                rig.exec.close_source(rig.s2).unwrap();
                rig.exec.run_until_quiescent(100_000).unwrap();
            }
            let base_out = base.out.0.lock().unwrap().delivered.clone();
            let batched_out = batched.out.0.lock().unwrap().delivered.clone();
            assert_eq!(base_out, batched_out, "byte-identical deliveries");
            let (bs, ks) = (base.exec.stats(), batched.exec.stats());
            assert_eq!(bs.steps, ks.steps, "same inner step count");
            assert_eq!(bs.ets_generated, ks.ets_generated);
            assert_eq!(bs.work_units, ks.work_units);
            assert_eq!(bs.batches, bs.steps, "K = 1: one step per decision");
            assert!(ks.batches <= ks.steps);
            assert_eq!(
                base.exec.clock().now(),
                batched.exec.clock().now(),
                "batch cost charging is sum-exact"
            );
        }
    }

    #[test]
    fn exec_options_default_and_builder() {
        let f = fig4(EtsPolicy::None, false);
        assert_eq!(f.exec.options(), ExecOptions::default());
        assert_eq!(f.exec.options().encore_batch, 1);
        let mut f = fig4(EtsPolicy::None, false);
        take_mut(&mut f.exec, |e| e.with_encore_batch(0));
        assert_eq!(f.exec.options().encore_batch, 1, "clamped to 1");
        let mut f = fig4(EtsPolicy::None, false);
        take_mut(&mut f.exec, |e| {
            e.with_exec_options(ExecOptions { encore_batch: 8 })
        });
        assert_eq!(f.exec.options().encore_batch, 8);
    }

    /// Regression (found by `msq fuzz`, seed 5): a heartbeat must advance
    /// the source's ETS frontier. Without that, backtracking at a clock
    /// instant *below* an asserted heartbeat generates an on-demand ETS
    /// that regresses behind the heartbeat's punctuation and is rejected
    /// by the source buffer as out-of-order.
    #[test]
    fn heartbeat_advances_the_ets_frontier() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        f.exec.clock().advance_to(Timestamp::from_micros(5));
        f.exec.ingest(f.s1, data(5, 1)).unwrap();
        f.exec.ingest(f.s2, data(5, 2)).unwrap();
        f.exec
            .ingest_heartbeat(f.s1, Timestamp::from_micros(20))
            .unwrap();
        f.exec
            .ingest_heartbeat(f.s2, Timestamp::from_micros(30))
            .unwrap();
        f.exec.clock().advance_to(Timestamp::from_micros(12));
        // The union drains both buffers; S1's register parks at 20 with an
        // empty buffer, so backtracking reaches S1 while the clock is
        // still below 20 — the generated ETS must not regress behind the
        // heartbeat.
        f.exec
            .run_until_quiescent(10_000)
            .expect("no regressed ETS punctuation");
    }

    /// Regression: in release builds the old `debug_assert!` let a
    /// punctuation tuple through `ingest`, where it was absorbed into the
    /// source's *data* high-water accounting and corrupted ETS state. The
    /// misuse must be a structured error on every build profile.
    #[test]
    fn ingest_rejects_punctuation_tuples() {
        let mut f = fig4(EtsPolicy::on_demand(), false);
        let err = f
            .exec
            .ingest(f.s1, Tuple::punctuation(Timestamp::from_micros(10)))
            .unwrap_err();
        assert!(matches!(err, Error::Runtime(_)), "{err:?}");
        assert!(err.to_string().contains("ingest_heartbeat"), "{err}");
        // The rejected punctuation left no trace: data ingest continues
        // from a clean slate and the heartbeat path still works.
        let s = f.exec.graph().source(f.s1);
        assert_eq!(s.ingested, 0);
        assert_eq!(s.last_data_ts, None);
        f.exec.ingest(f.s1, data(5, 1)).unwrap();
        f.exec
            .ingest_heartbeat(f.s1, Timestamp::from_micros(20))
            .unwrap();
        f.exec.run_until_quiescent(10_000).unwrap();
    }

    /// Builds unordered-S1 → Reorder → sink with the given check mode.
    fn sentinel_rig(mode: CheckMode) -> (Executor, SourceId) {
        use millstream_ops::Reorder;
        let mut b = GraphBuilder::new();
        let s1 = b.unordered_source("S1", schema(), TimestampKind::External);
        let r = b
            .operator(
                Box::new(Reorder::new("↻", schema(), TimeDelta::from_micros(100))),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(r)],
            )
            .unwrap();
        let graph = b.build().unwrap();
        let exec = Executor::new(
            graph,
            VirtualClock::shared(),
            CostModel::default(),
            EtsPolicy::None,
        )
        .with_check_mode(mode);
        (exec, s1)
    }

    #[test]
    fn sentinel_counters_record_punct_dominance() {
        let (mut exec, s1) = sentinel_rig(CheckMode::Counters);
        exec.ingest_heartbeat(s1, Timestamp::from_micros(10))
            .unwrap();
        exec.ingest(s1, data(5, 1))
            .expect("counters mode never fails the push");
        assert_eq!(exec.stats().invariant_violations, 1);
        assert_eq!(exec.sentinel_stats().punct_violations(), 1);
        assert_eq!(
            exec.sentinel_stats().order_regressions(),
            0,
            "Accept buffers don't count regressions"
        );
    }

    #[test]
    fn sentinel_strict_escalates_punct_dominance() {
        let (mut exec, s1) = sentinel_rig(CheckMode::Strict);
        exec.ingest_heartbeat(s1, Timestamp::from_micros(10))
            .unwrap();
        let err = exec.ingest(s1, data(5, 1)).expect_err("strict escalates");
        let msg = err.to_string();
        assert!(msg.contains("punctuation-dominance"), "{msg}");
        assert!(msg.contains("src:S1"), "{msg}");
        assert_eq!(exec.stats().invariant_violations, 1, "counted too");
    }

    #[test]
    fn sentinel_off_is_inert() {
        let (mut exec, s1) = sentinel_rig(CheckMode::Off);
        exec.ingest_heartbeat(s1, Timestamp::from_micros(10))
            .unwrap();
        exec.ingest(s1, data(5, 1)).unwrap();
        assert_eq!(exec.stats().invariant_violations, 0);
    }

    /// An operator that violates its own TSM contract: it claims τ = 0
    /// forever while forwarding tuples with arbitrary timestamps — the kind
    /// of bug the tsm-consistency check exists to catch.
    struct BrokenIwp {
        schema: Schema,
    }

    impl millstream_ops::Operator for BrokenIwp {
        fn name(&self) -> &str {
            "broken"
        }
        fn is_iwp(&self) -> bool {
            true
        }
        fn tsm_min(&self) -> Option<Timestamp> {
            Some(Timestamp::ZERO)
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_schema(&self) -> &Schema {
            &self.schema
        }
        fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
            if ctx.input(0).is_empty() {
                Poll::starved_on(0)
            } else {
                Poll::Ready
            }
        }
        fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
            let Some(t) = ctx.input_mut(0).pop() else {
                return Ok(StepOutcome::default());
            };
            ctx.output_mut(0).push(t)?;
            Ok(StepOutcome::consumed_one(1))
        }
    }

    fn broken_iwp_rig(mode: CheckMode) -> (Executor, SourceId) {
        let mut b = GraphBuilder::new();
        let s1 = b.source("S1", schema(), TimestampKind::Internal);
        let n = b
            .operator(
                Box::new(BrokenIwp { schema: schema() }),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let _k = b
            .operator(
                Box::new(Sink::new("sink", schema(), VecCollector::default())),
                vec![Input::Op(n)],
            )
            .unwrap();
        let graph = b.build().unwrap();
        let exec = Executor::new(
            graph,
            VirtualClock::shared(),
            CostModel::default(),
            EtsPolicy::None,
        )
        .with_check_mode(mode);
        (exec, s1)
    }

    #[test]
    fn sentinel_strict_escalates_tsm_violation() {
        let (mut exec, s1) = broken_iwp_rig(CheckMode::Strict);
        exec.ingest(s1, data(5, 1)).unwrap();
        let err = exec
            .run_until_quiescent(100)
            .expect_err("forwarding past a frozen τ must abort under strict");
        let msg = err.to_string();
        assert!(msg.contains("tsm-consistency"), "{msg}");
        assert!(msg.contains("broken"), "{msg}");
    }

    #[test]
    fn sentinel_counters_record_tsm_violation() {
        let (mut exec, s1) = broken_iwp_rig(CheckMode::Counters);
        exec.ingest(s1, data(5, 1)).unwrap();
        exec.run_until_quiescent(100).expect("counters never abort");
        assert!(exec.sentinel_stats().tsm_violations() >= 1);
        assert!(exec.stats().invariant_violations >= 1);
    }
}
