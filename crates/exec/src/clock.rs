//! The executor's clock abstraction.
//!
//! The paper's experiments ran against the system clock of a P4 host; this
//! reproduction runs against a **virtual clock** so that hours of stream
//! time simulate in milliseconds, deterministically. The executor charges
//! each operator step to the clock through a [`CostModel`], which is what
//! makes punctuation *overhead* visible — the effect behind the rising
//! right half of the paper's Fig. 8(b).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use millstream_types::{TimeDelta, Timestamp};

/// A shared, monotone virtual clock (`Arc<VirtualClock>`).
///
/// The counter is a relaxed atomic so a clock can be owned by a graph that
/// moves onto a worker thread. Under parallel execution each component has
/// its own clock, so all updates still come from one thread at a time and
/// relaxed ordering is exact.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A new clock at the epoch, wrapped for sharing.
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    /// Current reading.
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.micros.load(Ordering::Relaxed))
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: TimeDelta) {
        self.micros.fetch_add(delta.as_micros(), Ordering::Relaxed);
    }

    /// Jumps the clock forward to `to`; ignored if `to` is in the past
    /// (the clock never goes backwards).
    pub fn advance_to(&self, to: Timestamp) {
        self.micros.fetch_max(to.as_micros(), Ordering::Relaxed);
    }
}

/// Virtual CPU cost charged per executor action.
///
/// Defaults are calibrated to a mid-2000s CPU like the paper's P4 2.8 GHz:
/// a few microseconds per operator invocation. Absolute values only scale
/// the picture; the paper's *shape* (orders-of-magnitude gaps) comes from
/// idle-waiting spans of seconds versus service times of microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost of one operator step.
    pub step: TimeDelta,
    /// Cost per work unit (tuple consumed/produced, window pair probed).
    pub per_unit: TimeDelta,
    /// Cost of one backtracking hop.
    pub backtrack: TimeDelta,
    /// Cost of generating one on-demand ETS at a source.
    pub ets_generation: TimeDelta,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            step: TimeDelta::from_micros(2),
            per_unit: TimeDelta::from_micros(1),
            backtrack: TimeDelta::from_micros(0),
            ets_generation: TimeDelta::from_micros(2),
        }
    }
}

impl CostModel {
    /// A zero-cost model (pure logical execution; useful in unit tests
    /// where clock movement would obscure assertions).
    pub fn free() -> Self {
        CostModel {
            step: TimeDelta::ZERO,
            per_unit: TimeDelta::ZERO,
            backtrack: TimeDelta::ZERO,
            ets_generation: TimeDelta::ZERO,
        }
    }

    /// The cost of an operator step that performed `work` units.
    pub fn step_cost(&self, work: usize) -> TimeDelta {
        self.step + self.per_unit.saturating_mul(work as u64)
    }

    /// The cost of a batch of `steps` operator steps totalling `work`
    /// units. `step_cost` is linear in work, so this equals the sum of the
    /// per-step costs exactly — batched execution charges the same virtual
    /// time as per-tuple execution, just in one clock advance.
    pub fn batch_cost(&self, steps: usize, work: usize) -> TimeDelta {
        self.step.saturating_mul(steps as u64) + self.per_unit.saturating_mul(work as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = VirtualClock::shared();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(TimeDelta::from_micros(10));
        assert_eq!(c.now().as_micros(), 10);
        c.advance_to(Timestamp::from_micros(5));
        assert_eq!(c.now().as_micros(), 10, "never goes backwards");
        c.advance_to(Timestamp::from_micros(50));
        assert_eq!(c.now().as_micros(), 50);
    }

    #[test]
    fn cost_model_scales_with_work() {
        let m = CostModel::default();
        assert_eq!(m.step_cost(0), TimeDelta::from_micros(2));
        assert_eq!(m.step_cost(3), TimeDelta::from_micros(5));
        assert_eq!(CostModel::free().step_cost(100), TimeDelta::ZERO);
    }

    #[test]
    fn batch_cost_equals_sum_of_step_costs() {
        let m = CostModel::default();
        // A batch of 3 steps with work 2, 0, 5.
        let per_tuple = m.step_cost(2) + m.step_cost(0) + m.step_cost(5);
        assert_eq!(m.batch_cost(3, 7), per_tuple);
        assert_eq!(m.batch_cost(1, 4), m.step_cost(4), "K = 1 is one step");
        assert_eq!(CostModel::free().batch_cost(64, 1000), TimeDelta::ZERO);
    }
}
