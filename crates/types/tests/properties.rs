//! Property tests over the core data model: total ordering of values,
//! hash/equality consistency, timestamp arithmetic laws, and totality of
//! the expression evaluator.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use millstream_types::{BinOp, Expr, Row, RowBuilder, TimeDelta, Timestamp, Value, INLINE_ROW_CAP};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,6}".prop_map(Value::str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// `Ord` is a total order: antisymmetric and transitive.
    #[test]
    fn value_order_is_total(a in value(), b in value(), c in value()) {
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity (≤).
        if a <= b && b <= c {
            prop_assert!(a <= c, "{a:?} <= {b:?} <= {c:?} but not {a:?} <= {c:?}");
        }
        // Consistency of Eq with Ord.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    /// Equal values hash equally (including Int/Float cross-equality).
    #[test]
    fn value_hash_respects_eq(a in value(), b in value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "equal values must hash equally: {:?} == {:?}", a, b);
        }
    }

    /// Int(i) and Float(i as f64) are interchangeable for order and hash.
    #[test]
    fn int_float_coherence(i in -(1i64 << 52)..(1i64 << 52), other in value()) {
        let vi = Value::Int(i);
        let vf = Value::Float(i as f64);
        prop_assert_eq!(&vi, &vf);
        prop_assert_eq!(hash_of(&vi), hash_of(&vf));
        prop_assert_eq!(vi.cmp(&other), vf.cmp(&other));
    }

    /// Timestamp arithmetic: (t + d) − t = d; duration_since saturates;
    /// min/max are consistent with Ord.
    #[test]
    fn timestamp_arithmetic(t in 0u64..1u64 << 60, d in 0u64..1u64 << 30, e in 0u64..1u64 << 30) {
        let ts = Timestamp::from_micros(t);
        let dd = TimeDelta::from_micros(d);
        let ee = TimeDelta::from_micros(e);
        prop_assert_eq!((ts + dd) - ts, dd);
        prop_assert_eq!(ts.duration_since(ts + dd), TimeDelta::ZERO);
        prop_assert_eq!((ts + dd) + ee, (ts + ee) + dd, "commutes");
        // saturating_sub then adding back never overshoots the original.
        let back = ts.saturating_sub(dd).saturating_add(dd);
        prop_assert!(back >= ts, "{back:?} vs {ts:?}");
        prop_assert!(back.as_micros() - ts.as_micros() <= d);
    }

    /// The evaluator is total over well-formed expressions: it returns
    /// Ok or a structured error, never panics, and is deterministic.
    #[test]
    fn evaluator_is_total_and_deterministic(
        a in value(), b in value(), c in value(),
        op1 in 0usize..13, op2 in 0usize..13,
        col in 0usize..4,
    ) {
        let ops = [
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem,
            BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge,
            BinOp::And, BinOp::Or,
        ];
        let row = vec![a.clone(), b.clone(), c.clone()];
        let e = Expr::binary(
            ops[op1],
            Expr::binary(ops[op2], Expr::col(col.min(2)), Expr::Literal(b)),
            Expr::Literal(c),
        );
        let r1 = e.eval(&row);
        let r2 = e.eval(&row);
        match (&r1, &r2) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic evaluation"),
        }
        // Predicates coerce to bool or fail — never panic.
        let _ = e.eval_predicate(&row);
    }

    /// remap_columns shifts exactly the referenced columns.
    #[test]
    fn remap_is_consistent(cols in prop::collection::vec(0usize..8, 1..5), shift in 0usize..10) {
        let mut e = Expr::col(cols[0]);
        for &c in &cols[1..] {
            e = e.add(Expr::col(c));
        }
        let shifted = e.remap_columns(&|i| i + shift);
        let mut before = vec![];
        e.referenced_columns(&mut before);
        let mut after = vec![];
        shifted.referenced_columns(&mut after);
        let expect: Vec<usize> = before.iter().map(|i| i + shift).collect();
        prop_assert_eq!(after, expect);
    }
}

fn row_hash(r: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Every construction path — `Vec`, slice, iterator, incremental
    /// builder, pre-sized builder — yields the same row, round-trips the
    /// values exactly, and spills iff the row is wider than the inline cap.
    /// The width range straddles `INLINE_ROW_CAP` so both representations
    /// and the builder's overflow transition are exercised.
    #[test]
    fn row_construction_paths_agree(vals in prop::collection::vec(value(), 0..(3 * INLINE_ROW_CAP))) {
        let from_vec = Row::from(vals.clone());
        let from_slice = Row::from_slice(&vals);
        let collected: Row = vals.iter().cloned().collect();
        let mut b = RowBuilder::new();
        for v in &vals {
            b.push(v.clone());
        }
        prop_assert_eq!(b.len(), vals.len());
        let built = b.finish();
        let mut sized = RowBuilder::with_capacity(vals.len());
        sized.extend_from_slice(&vals);
        let built_sized = sized.finish();

        for row in [&from_vec, &from_slice, &collected, &built, &built_sized] {
            prop_assert_eq!(&row[..], &vals[..]);
            prop_assert_eq!(row.is_spilled(), vals.len() > INLINE_ROW_CAP);
        }
        let back: Vec<Value> = from_vec.clone().into();
        prop_assert_eq!(&back, &vals);
    }

    /// Row equality, ordering and hashing all follow the value slice,
    /// independent of representation: a row compares the same whether it
    /// was built inline or forced through the spill path.
    #[test]
    fn row_cmp_and_hash_follow_the_slice(
        a in prop::collection::vec(value(), 0..(2 * INLINE_ROW_CAP)),
        b in prop::collection::vec(value(), 0..(2 * INLINE_ROW_CAP)),
    ) {
        // `with_capacity` beyond the cap forces the spill representation
        // even for narrow rows, giving a second representation of `a`.
        let mut forced = RowBuilder::with_capacity(INLINE_ROW_CAP + 1);
        forced.extend_from_slice(&a);
        let ra_spilled = forced.finish();
        let ra = Row::from_slice(&a);
        let rb = Row::from_slice(&b);

        prop_assert_eq!(&ra, &ra_spilled);
        prop_assert_eq!(ra.cmp(&ra_spilled), Ordering::Equal);
        prop_assert_eq!(row_hash(&ra), row_hash(&ra_spilled));

        prop_assert_eq!(ra == rb, a == b);
        prop_assert_eq!(ra.cmp(&rb), a.cmp(&b));
        prop_assert_eq!(ra_spilled.cmp(&rb), a.cmp(&b), "spilled repr orders identically");
        if ra == rb {
            prop_assert_eq!(row_hash(&ra), row_hash(&rb));
        }
    }

    /// Clones are value-identical; wide rows share storage (clone = refcount
    /// bump), inline rows never do.
    #[test]
    fn row_clone_semantics(vals in prop::collection::vec(value(), 0..(3 * INLINE_ROW_CAP))) {
        let row = Row::from_slice(&vals);
        let clone = row.clone();
        prop_assert_eq!(&row, &clone);
        prop_assert_eq!(row.shares_storage_with(&clone), vals.len() > INLINE_ROW_CAP);
    }
}
