//! The error type shared across the millstream workspace.

use core::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T, E = Error> = core::result::Result<T, E>;

/// Errors raised by millstream components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value of the wrong dynamic type was supplied where another was
    /// required.
    TypeMismatch {
        /// The type that was expected.
        expected: String,
        /// The type that was found.
        found: String,
    },
    /// A column name could not be resolved against a schema.
    UnknownColumn(String),
    /// A column index was out of range for a row.
    ColumnIndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Row width.
        width: usize,
    },
    /// A tuple violated the timestamp ordering contract of its stream.
    OutOfOrder {
        /// The stream or buffer where the violation was detected.
        context: String,
        /// The timestamp that went backwards (microseconds).
        got: u64,
        /// The high-water mark it violated (microseconds).
        watermark: u64,
    },
    /// Expression evaluation failed (division by zero, bad operand, ...).
    Eval(String),
    /// A query-graph was structurally invalid (cycle, dangling buffer,
    /// arity mismatch, ...).
    Graph(String),
    /// The query-language front end rejected the input.
    Parse {
        /// Error message.
        message: String,
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        column: u32,
    },
    /// Semantic analysis / planning failed.
    Plan(String),
    /// A configuration value was invalid (negative rate, zero window, ...).
    Config(String),
    /// The real-time engine encountered a channel/thread failure.
    Runtime(String),
    /// A runtime ordering invariant was violated (`MILLSTREAM_CHECK=strict`).
    ///
    /// Raised by the sentinel layer when a graph-wide timestamp contract is
    /// broken: buffer monotonicity, punctuation dominance, TSM-register
    /// consistency at an IWP operator, or clock monotonicity.
    InvariantViolation {
        /// Which invariant was violated (`punctuation-dominance`,
        /// `tsm-consistency`, `clock-monotonicity`, ...).
        check: String,
        /// The graph node (operator or source) that produced the violation.
        node: String,
        /// The buffer where it was detected (empty for node-level checks).
        buffer: String,
        /// The offending timestamp (microseconds).
        got: u64,
        /// The bound it violated (microseconds).
        bound: u64,
    },
}

impl Error {
    /// Builds a [`Error::TypeMismatch`].
    pub fn type_mismatch(expected: impl Into<String>, found: impl Into<String>) -> Self {
        Error::TypeMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Builds an [`Error::Eval`].
    pub fn eval(msg: impl Into<String>) -> Self {
        Error::Eval(msg.into())
    }

    /// Builds an [`Error::Graph`].
    pub fn graph(msg: impl Into<String>) -> Self {
        Error::Graph(msg.into())
    }

    /// Builds an [`Error::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Builds an [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Builds an [`Error::Runtime`].
    pub fn runtime(msg: impl Into<String>) -> Self {
        Error::Runtime(msg.into())
    }

    /// Builds an [`Error::Parse`] with a source location.
    pub fn parse(msg: impl Into<String>, line: u32, column: u32) -> Self {
        Error::Parse {
            message: msg.into(),
            line,
            column,
        }
    }

    /// Builds an [`Error::InvariantViolation`].
    pub fn invariant(
        check: impl Into<String>,
        node: impl Into<String>,
        buffer: impl Into<String>,
        got: u64,
        bound: u64,
    ) -> Self {
        Error::InvariantViolation {
            check: check.into(),
            node: node.into(),
            buffer: buffer.into(),
            got,
            bound,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            Error::ColumnIndexOutOfRange { index, width } => {
                write!(
                    f,
                    "column index {index} out of range for row of width {width}"
                )
            }
            Error::OutOfOrder {
                context,
                got,
                watermark,
            } => write!(
                f,
                "out-of-order tuple in {context}: ts {got}us < watermark {watermark}us"
            ),
            Error::Eval(msg) => write!(f, "evaluation error: {msg}"),
            Error::Graph(msg) => write!(f, "invalid query graph: {msg}"),
            Error::Parse {
                message,
                line,
                column,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            Error::Plan(msg) => write!(f, "planning error: {msg}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Runtime(msg) => write!(f, "runtime error: {msg}"),
            Error::InvariantViolation {
                check,
                node,
                buffer,
                got,
                bound,
            } => {
                write!(f, "invariant violation [{check}] at node `{node}`")?;
                if !buffer.is_empty() {
                    write!(f, ", buffer `{buffer}`")?;
                }
                write!(f, ": ts {got}us violates bound {bound}us")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = Error::type_mismatch("INT", "STRING");
        assert_eq!(e.to_string(), "type mismatch: expected INT, found STRING");

        let e = Error::parse("unexpected `)`", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected `)`");

        let e = Error::OutOfOrder {
            context: "source packets".into(),
            got: 5,
            watermark: 9,
        };
        assert!(e.to_string().contains("watermark 9us"));

        let e = Error::invariant("punctuation-dominance", "union#2", "out:union#2.0", 5, 9);
        assert_eq!(
            e.to_string(),
            "invariant violation [punctuation-dominance] at node `union#2`, \
             buffer `out:union#2.0`: ts 5us violates bound 9us"
        );
        let e = Error::invariant("clock-monotonicity", "executor", "", 5, 9);
        assert!(!e.to_string().contains("buffer"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::eval("x"));
    }
}
