//! String interning for `Value::Str` payloads.
//!
//! Stream workloads repeat string payloads heavily — host names, event
//! kinds, status codes — and every `Value::str` call used to allocate a
//! fresh `Arc<str>` even for a payload seen a million times before. The
//! interner keeps one shared `Arc<str>` per distinct payload in a
//! process-global table: repeated constructions return a clone of the
//! existing `Arc` (a refcount bump, no allocation).
//!
//! The table is bounded by [`MAX_INTERNED`] entries so an adversarial
//! stream of unique strings cannot grow it without limit; once full, new
//! distinct payloads fall back to plain uninterned allocation, which is
//! exactly the old behaviour. Interning is semantically invisible —
//! `Value` equality and ordering compare string *contents* — so the only
//! observable effect is fewer allocations and pointer-equal `Arc`s.
//!
//! This crate deliberately depends only on `std` (no `parking_lot`), so
//! the table is a `std::sync::Mutex<HashSet<...>>`. The lock is held for
//! a hash lookup or insert only; `Value::str` is an ingest/construction
//! path, not a per-step operator path.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on distinct interned strings; beyond it, new payloads are
/// allocated uninterned (old behaviour) instead of growing the table.
pub const MAX_INTERNED: usize = 1 << 16;

fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Returns the shared `Arc<str>` for `s`, inserting it on first sight.
/// Falls back to a fresh allocation when the table is full or poisoned.
pub fn intern(s: &str) -> Arc<str> {
    let Ok(mut t) = table().lock() else {
        return Arc::from(s);
    };
    if let Some(existing) = t.get(s) {
        return Arc::clone(existing);
    }
    let arc: Arc<str> = Arc::from(s);
    if t.len() < MAX_INTERNED {
        t.insert(Arc::clone(&arc));
    }
    arc
}

/// Number of distinct strings currently interned (diagnostic).
pub fn interned_count() -> usize {
    table().lock().map(|t| t.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_payloads_share_one_allocation() {
        let a = intern("millstream-intern-test-payload");
        let b = intern("millstream-intern-test-payload");
        assert!(Arc::ptr_eq(&a, &b));
        // A distinct payload gets a distinct allocation.
        let c = intern("millstream-intern-other-payload");
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(interned_count() >= 2);
    }

    #[test]
    fn contents_are_preserved() {
        assert_eq!(&*intern("αβγ"), "αβγ");
        assert_eq!(&*intern(""), "");
    }
}
