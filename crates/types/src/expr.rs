//! Row expressions.
//!
//! Selections, projections-with-computation and join conditions all evaluate
//! a small expression language over a single row (or, for join conditions, a
//! concatenated pair of rows). The query-language front end
//! (`millstream-query`) parses into this same AST, so the expression
//! evaluator lives here in the data-model crate.

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// True for comparison operators (result type BOOL).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An expression over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, resolved to an index at plan time.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(index: usize) -> Expr {
        Expr::Column(index)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Builds `left op right`.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, rhs)
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ne, self, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Le, self, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ge, self, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::And, self, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, rhs)
    }
    /// `self + rhs`
    // Builder methods mirror the surface operators on purpose; implementing
    // std::ops would force `Expr + Expr` to mean AST construction, which
    // reads like evaluation.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }
    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }
    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }

    /// Evaluates the expression against a row.
    ///
    /// Null propagation follows SQL three-valued logic for comparisons and
    /// arithmetic (any null operand yields null); `AND`/`OR` use Kleene
    /// logic so that `false AND null = false` and `true OR null = true`.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Column(i) => row.get(*i).cloned().ok_or(Error::ColumnIndexOutOfRange {
                index: *i,
                width: row.len(),
            }),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(inner) => match inner.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Bool(!v.as_bool()?)),
            },
            Expr::Neg(inner) => match inner.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(Error::eval(format!("cannot negate {}", v.type_name()))),
            },
            Expr::IsNull(inner) => Ok(Value::Bool(inner.eval(row)?.is_null())),
            Expr::Binary { op, left, right } => {
                if op.is_logical() {
                    return eval_logical(*op, left, right, row);
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                    BinOp::Rem => l.rem(&r),
                    BinOp::Eq => Ok(Value::Bool(l == r)),
                    BinOp::Ne => Ok(Value::Bool(l != r)),
                    BinOp::Lt => Ok(Value::Bool(l < r)),
                    BinOp::Le => Ok(Value::Bool(l <= r)),
                    BinOp::Gt => Ok(Value::Bool(l > r)),
                    BinOp::Ge => Ok(Value::Bool(l >= r)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Evaluates the expression as a predicate: nulls count as false.
    ///
    /// The common filter shape `colᵢ ⟨cmp⟩ literal` is evaluated by
    /// reference — no [`Value`] clones — which matters on the executor's
    /// fused drop-run path where the predicate runs once per queued tuple.
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        if let Expr::Binary { op, left, right } = self {
            if let (Expr::Column(i), Expr::Literal(lit)) = (left.as_ref(), right.as_ref()) {
                if op.is_comparison() {
                    let v = row.get(*i).ok_or(Error::ColumnIndexOutOfRange {
                        index: *i,
                        width: row.len(),
                    })?;
                    // SQL three-valued logic: a null operand makes the
                    // comparison null, and null predicates are false.
                    if v.is_null() || lit.is_null() {
                        return Ok(false);
                    }
                    return Ok(match op {
                        BinOp::Eq => v == lit,
                        BinOp::Ne => v != lit,
                        BinOp::Lt => v < lit,
                        BinOp::Le => v <= lit,
                        BinOp::Gt => v > lit,
                        BinOp::Ge => v >= lit,
                        _ => unreachable!("is_comparison checked"),
                    });
                }
            }
        }
        match self.eval(row)? {
            Value::Null => Ok(false),
            v => v.as_bool(),
        }
    }

    /// Infers the static result type against a schema, checking column
    /// indices. Arithmetic on two INTs is INT, otherwise FLOAT.
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(i) => {
                schema
                    .field(*i)
                    .map(|f| f.data_type)
                    .ok_or(Error::ColumnIndexOutOfRange {
                        index: *i,
                        width: schema.len(),
                    })
            }
            Expr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Bool)),
            Expr::Not(inner) => {
                let t = inner.infer_type(schema)?;
                if t != DataType::Bool {
                    return Err(Error::type_mismatch("BOOL", t.to_string()));
                }
                Ok(DataType::Bool)
            }
            Expr::Neg(inner) => {
                let t = inner.infer_type(schema)?;
                if t != DataType::Int && t != DataType::Float {
                    return Err(Error::type_mismatch("INT or FLOAT", t.to_string()));
                }
                Ok(t)
            }
            Expr::IsNull(inner) => {
                inner.infer_type(schema)?;
                Ok(DataType::Bool)
            }
            Expr::Binary { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                if op.is_comparison() || op.is_logical() {
                    if op.is_logical() && (lt != DataType::Bool || rt != DataType::Bool) {
                        return Err(Error::type_mismatch(
                            "BOOL",
                            format!("{lt} {} {rt}", op.symbol()),
                        ));
                    }
                    Ok(DataType::Bool)
                } else if lt == DataType::Int && rt == DataType::Int {
                    Ok(DataType::Int)
                } else if matches!(lt, DataType::Int | DataType::Float)
                    && matches!(rt, DataType::Int | DataType::Float)
                {
                    Ok(DataType::Float)
                } else {
                    Err(Error::type_mismatch(
                        "numeric operands",
                        format!("{lt} {} {rt}", op.symbol()),
                    ))
                }
            }
        }
    }

    /// All column indices referenced by the expression (with duplicates).
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) => e.referenced_columns(out),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
        }
    }

    /// Rewrites column indices through `map` (old index → new index). Used
    /// when an expression authored against one schema must run against a
    /// projected or joined schema.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(map(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.remap_columns(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map))),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
        }
    }
}

/// Kleene three-valued AND/OR with short-circuiting.
fn eval_logical(op: BinOp, left: &Expr, right: &Expr, row: &[Value]) -> Result<Value> {
    let l = left.eval(row)?;
    match (op, &l) {
        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = right.eval(row)?;
    let lb = match &l {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let rb = match &r {
        Value::Null => None,
        v => Some(v.as_bool()?),
    };
    let out = match (op, lb, rb) {
        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
        (BinOp::And, Some(true), Some(true)) => Some(true),
        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
        (BinOp::Or, Some(false), Some(false)) => Some(false),
        _ => None,
    };
    Ok(out.map_or(Value::Null, Value::Bool))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::IsNull(e) => write!(f, "({e}) IS NULL"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Float(2.5),
            Value::str("tcp"),
            Value::Null,
        ]
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("c", DataType::Str),
            Field::new("d", DataType::Int),
        ])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::col(0).add(Expr::lit(5)).gt(Expr::lit(14));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));

        let e = Expr::col(1).mul(Expr::lit(4)).eq(Expr::lit(10.0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_equality() {
        let e = Expr::col(2).eq(Expr::lit("tcp"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::col(2).eq(Expr::lit("udp"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_propagation() {
        let e = Expr::col(3).add(Expr::lit(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::col(3).eq(Expr::lit(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        // Predicates treat null as false.
        assert!(!Expr::col(3)
            .eq(Expr::lit(1))
            .eval_predicate(&row())
            .unwrap());
        // IS NULL sees through.
        let e = Expr::IsNull(Box::new(Expr::col(3)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn predicate_fast_path_matches_eval() {
        // `colᵢ ⟨cmp⟩ literal` takes the by-reference fast path; its result
        // must agree with the general evaluator on every operator, on
        // nulls, and on column errors.
        let r = row();
        for (e, expect) in [
            (Expr::col(0).eq(Expr::lit(10)), true),
            (Expr::col(0).ne(Expr::lit(10)), false),
            (Expr::col(0).lt(Expr::lit(10)), false),
            (Expr::col(0).le(Expr::lit(10)), true),
            (Expr::col(0).gt(Expr::lit(9)), true),
            (Expr::col(0).ge(Expr::lit(11)), false),
            (Expr::col(2).eq(Expr::lit("tcp")), true),
            (Expr::col(3).eq(Expr::lit(1)), false), // null → false
            (Expr::col(0).eq(Expr::Literal(Value::Null)), false),
        ] {
            assert_eq!(e.eval_predicate(&r).unwrap(), expect, "{e}");
            let general = match e.eval(&r).unwrap() {
                Value::Null => false,
                v => v.as_bool().unwrap(),
            };
            assert_eq!(general, expect, "general evaluator disagrees: {e}");
        }
        assert!(Expr::col(9).eq(Expr::lit(1)).eval_predicate(&r).is_err());
    }

    #[test]
    fn kleene_logic() {
        let null = Expr::Literal(Value::Null);
        let tru = Expr::lit(true);
        let fal = Expr::lit(false);
        assert_eq!(
            fal.clone().and(null.clone()).eval(&[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            tru.clone().or(null.clone()).eval(&[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            tru.clone().and(null.clone()).eval(&[]).unwrap(),
            Value::Null
        );
        assert_eq!(fal.clone().or(null.clone()).eval(&[]).unwrap(), Value::Null);
        // Short-circuit: the right side would error if evaluated eagerly
        // with a bad type, but AND false short-circuits before the type
        // error in as_bool (note: eval of the right side still happens for
        // Kleene correctness, so use a null instead to test laziness of the
        // *boolean* outcome only).
        assert_eq!(
            Expr::lit(false)
                .and(Expr::col(9))
                .eval(&[Value::Int(0)])
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn negation() {
        assert_eq!(
            Expr::Neg(Box::new(Expr::lit(4))).eval(&[]).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(true))).eval(&[]).unwrap(),
            Value::Bool(false)
        );
        assert!(Expr::Neg(Box::new(Expr::lit("x"))).eval(&[]).is_err());
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(
            Expr::col(0).add(Expr::lit(1)).infer_type(&s).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Expr::col(0).add(Expr::col(1)).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col(0).lt(Expr::lit(3)).infer_type(&s).unwrap(),
            DataType::Bool
        );
        assert!(Expr::col(2).add(Expr::lit(1)).infer_type(&s).is_err());
        assert!(Expr::col(9).infer_type(&s).is_err());
        assert!(Expr::col(0).and(Expr::col(1)).infer_type(&s).is_err());
    }

    #[test]
    fn referenced_and_remapped_columns() {
        let e = Expr::col(1).add(Expr::col(3)).gt(Expr::col(1));
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![1, 3, 1]);

        let shifted = e.remap_columns(&|i| i + 10);
        let mut cols = vec![];
        shifted.referenced_columns(&mut cols);
        assert_eq!(cols, vec![11, 13, 11]);
    }

    #[test]
    fn out_of_range_column_errors() {
        assert!(matches!(
            Expr::col(7).eval(&row()),
            Err(Error::ColumnIndexOutOfRange { index: 7, width: 4 })
        ));
    }

    #[test]
    fn display_roundtrip_shape() {
        let e = Expr::col(0).add(Expr::lit(5)).gt(Expr::lit(14));
        assert_eq!(e.to_string(), "((#0 + 5) > 14)");
    }
}
