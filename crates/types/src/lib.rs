//! # millstream-types
//!
//! The shared data model of the **millstream** DSMS — a Rust reproduction of
//! *"Optimizing Timestamp Management in Data Stream Management Systems"*
//! (Bai, Thakkar, Wang, Zaniolo; ICDE 2007).
//!
//! This crate defines:
//!
//! * [`Timestamp`] / [`TimeDelta`] — microsecond instants and spans on the
//!   (virtual or wall-clock) timeline, plus the three stream timestamp
//!   disciplines of the paper's §5 ([`TimestampKind`]).
//! * [`Tuple`] — the unit of data flow, either a data row or a
//!   **punctuation tuple** carrying an Enabling Time-Stamp (ETS).
//! * [`Value`] / [`DataType`] / [`Schema`] — dynamically tagged rows and
//!   their static description.
//! * [`Row`] / [`RowBuilder`] — the row storage behind data tuples:
//!   inline for ≤ [`INLINE_ROW_CAP`] values (allocation-free clone and
//!   construction), shared heap storage for wide rows; plus the string
//!   interner ([`intern`]) deduplicating repeated `Value::Str` payloads.
//! * [`Expr`] — the row-expression language used by selections, maps and
//!   join conditions.
//! * [`Error`] — the workspace-wide error type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod expr;
pub mod intern;
pub mod row;
pub mod schema;
pub mod timestamp;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use expr::{BinOp, Expr};
pub use row::{Row, RowBuilder, INLINE_ROW_CAP};
pub use schema::{Field, Schema};
pub use timestamp::{TimeDelta, Timestamp, TimestampKind, MICROS_PER_MILLI, MICROS_PER_SEC};
pub use tuple::{Tuple, TupleBody};
pub use value::{DataType, Value};
