//! Stream schemas.
//!
//! A [`Schema`] names and types the columns of a stream. Schemas are cheap
//! to clone (`Arc` inside) because every operator in a query graph holds the
//! schemas of its inputs and output.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// One column of a stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// The ordered column list of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Builds a schema from a list of fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: fields.into(),
        }
    }

    /// The empty schema (zero columns). Punctuation-only streams use it.
    pub fn empty() -> Self {
        Schema {
            fields: Arc::from([]),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `index`, if in range.
    pub fn field(&self, index: usize) -> Option<&Field> {
        self.fields.get(index)
    }

    /// Resolves a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Validates that `row` has the right width and element types.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(Error::ColumnIndexOutOfRange {
                index: row.len(),
                width: self.fields.len(),
            });
        }
        for (value, field) in row.iter().zip(self.fields.iter()) {
            if !value.conforms_to(field.data_type) {
                return Err(Error::type_mismatch(
                    field.data_type.to_string(),
                    value.type_name(),
                ));
            }
        }
        Ok(())
    }

    /// Concatenates two schemas (used by joins), prefixing colliding names
    /// with the given qualifiers.
    pub fn join(&self, other: &Schema, left_qualifier: &str, right_qualifier: &str) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        for f in self.fields.iter() {
            let name = if other.index_of(&f.name).is_ok() {
                format!("{left_qualifier}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        for f in other.fields.iter() {
            let name = if self.index_of(&f.name).is_ok() {
                format!("{right_qualifier}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }

    /// Projects a subset of columns by index, preserving order of `indices`.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            let f = self.field(i).ok_or(Error::ColumnIndexOutOfRange {
                index: i,
                width: self.len(),
            })?;
            fields.push(f.clone());
        }
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets() -> Schema {
        Schema::new(vec![
            Field::new("src", DataType::Int),
            Field::new("len", DataType::Int),
            Field::new("proto", DataType::Str),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = packets();
        assert_eq!(s.index_of("len").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(Error::UnknownColumn(n)) if n == "nope"
        ));
    }

    #[test]
    fn row_validation() {
        let s = packets();
        assert!(s
            .check_row(&[Value::Int(1), Value::Int(2), Value::str("tcp")])
            .is_ok());
        // Null conforms to any column type.
        assert!(s
            .check_row(&[Value::Null, Value::Int(2), Value::Null])
            .is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Int(2)]).is_err());
        assert!(s
            .check_row(&[Value::str("x"), Value::Int(2), Value::str("tcp")])
            .is_err());
    }

    #[test]
    fn join_qualifies_collisions() {
        let a = packets();
        let b = Schema::new(vec![
            Field::new("src", DataType::Int),
            Field::new("alert", DataType::Str),
        ]);
        let j = a.join(&b, "a", "b");
        assert_eq!(j.len(), 5);
        assert_eq!(j.field(0).unwrap().name, "a.src");
        assert_eq!(j.field(3).unwrap().name, "b.src");
        assert_eq!(j.field(1).unwrap().name, "len");
        assert_eq!(j.field(4).unwrap().name, "alert");
    }

    #[test]
    fn projection() {
        let s = packets();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.field(0).unwrap().name, "proto");
        assert_eq!(p.field(1).unwrap().name, "src");
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(packets().to_string(), "(src INT, len INT, proto STRING)");
        assert_eq!(Schema::empty().to_string(), "()");
        assert!(Schema::empty().is_empty());
    }
}
