//! Row storage — the values carried by a data tuple.
//!
//! The hot path of a DSMS clones, moves and rebuilds rows millions of
//! times per second, and every workload in the paper (and in this repo's
//! benches) carries narrow rows: one to three columns, occasionally four
//! after a join. [`Row`] therefore stores up to [`INLINE_ROW_CAP`] values
//! *inline* — cloning or constructing such a row never touches the heap —
//! and spills wider rows to a shared `Arc<[Value]>`, where clones are a
//! reference-count bump exactly as before.
//!
//! The representation is private. Everything downstream sees a `Row` as
//! `&[Value]` (via `Deref`), compares it by value (an inline row equals a
//! spilled row carrying the same values), and builds it either from an
//! existing `Vec<Value>`/array or incrementally through [`RowBuilder`],
//! which lets operators like `Project` and the joins assemble an output
//! row in place without an intermediate `Vec`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::value::Value;

/// Widest row stored without heap allocation. Four `Value`s cover every
/// paper workload (≤ 3 columns) and binary-join outputs up to 2+2; wider
/// rows spill to shared storage.
pub const INLINE_ROW_CAP: usize = 4;

const NULL_ROW: [Value; INLINE_ROW_CAP] = [Value::Null, Value::Null, Value::Null, Value::Null];

#[derive(Clone)]
enum Repr {
    /// `len` leading slots of `vals` are the row; the rest are `Null`.
    Inline {
        len: u8,
        vals: [Value; INLINE_ROW_CAP],
    },
    /// Wide rows share one allocation; clones bump the refcount.
    Spilled(Arc<[Value]>),
}

/// The values of a data tuple: inline up to [`INLINE_ROW_CAP`], shared
/// heap storage beyond. Dereferences to `&[Value]`.
#[derive(Clone)]
pub struct Row(Repr);

impl Row {
    /// An empty row.
    pub fn empty() -> Row {
        Row(Repr::Inline {
            len: 0,
            vals: NULL_ROW,
        })
    }

    /// Builds a row from a slice, cloning the values (no allocation when
    /// the slice fits inline).
    pub fn from_slice(values: &[Value]) -> Row {
        if values.len() <= INLINE_ROW_CAP {
            let mut vals = NULL_ROW;
            for (slot, v) in vals.iter_mut().zip(values) {
                *slot = v.clone();
            }
            Row(Repr::Inline {
                len: values.len() as u8,
                vals,
            })
        } else {
            Row(Repr::Spilled(values.into()))
        }
    }

    /// True iff the row lives in shared heap storage rather than inline.
    /// Diagnostic only — semantics never depend on the representation.
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, Repr::Spilled(_))
    }

    /// True iff `self` and `other` are spilled rows sharing one
    /// allocation (the wide-row analogue of the old `Arc::ptr_eq` test).
    pub fn shares_storage_with(&self, other: &Row) -> bool {
        match (&self.0, &other.0) {
            (Repr::Spilled(a), Repr::Spilled(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Starts an in-place builder sized for `capacity` values.
    pub fn builder(capacity: usize) -> RowBuilder {
        RowBuilder::with_capacity(capacity)
    }
}

impl Deref for Row {
    type Target = [Value];

    #[inline]
    fn deref(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Spilled(vals) => vals,
        }
    }
}

impl AsRef<[Value]> for Row {
    fn as_ref(&self) -> &[Value] {
        self
    }
}

/// Rows compare by value: an inline row equals a spilled row carrying the
/// same values. Differential tests rely on this when comparing deliveries
/// across representations.
impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Row {}

/// Ordered like the value slice, so `Row` can key a `BTreeMap` (grouped
/// aggregation) with the same order `Vec<Value>` keys had.
impl PartialOrd for Row {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Row {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl core::hash::Hash for Row {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        if values.len() <= INLINE_ROW_CAP {
            let len = values.len() as u8;
            let mut vals = NULL_ROW;
            for (slot, v) in vals.iter_mut().zip(values) {
                *slot = v;
            }
            Row(Repr::Inline { len, vals })
        } else {
            Row(Repr::Spilled(values.into()))
        }
    }
}

impl From<&[Value]> for Row {
    fn from(values: &[Value]) -> Row {
        Row::from_slice(values)
    }
}

impl<const N: usize> From<[Value; N]> for Row {
    fn from(values: [Value; N]) -> Row {
        if N <= INLINE_ROW_CAP {
            let mut vals = NULL_ROW;
            for (slot, v) in vals.iter_mut().zip(values) {
                *slot = v;
            }
            Row(Repr::Inline { len: N as u8, vals })
        } else {
            Row(Repr::Spilled(Arc::from(values)))
        }
    }
}

impl From<Row> for Vec<Value> {
    fn from(row: Row) -> Vec<Value> {
        row.to_vec()
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Row {
        let mut b = RowBuilder::new();
        for v in iter {
            b.push(v);
        }
        b.finish()
    }
}

/// Assembles a row in place. Stays inline (no allocation) while at most
/// [`INLINE_ROW_CAP`] values are pushed; transparently moves to a spill
/// vector beyond that. `Project` and the joins use this instead of
/// collecting into an intermediate `Vec`.
pub struct RowBuilder {
    len: usize,
    inline: [Value; INLINE_ROW_CAP],
    spill: Vec<Value>,
}

impl RowBuilder {
    /// An empty builder (inline until it overflows).
    pub fn new() -> RowBuilder {
        RowBuilder {
            len: 0,
            inline: NULL_ROW,
            spill: Vec::new(),
        }
    }

    /// A builder sized for `capacity` values: rows known to be wide
    /// reserve their spill vector up front, one allocation total.
    pub fn with_capacity(capacity: usize) -> RowBuilder {
        RowBuilder {
            len: 0,
            inline: NULL_ROW,
            spill: if capacity > INLINE_ROW_CAP {
                Vec::with_capacity(capacity)
            } else {
                Vec::new()
            },
        }
    }

    /// Appends one value.
    pub fn push(&mut self, value: Value) {
        if !self.spill.is_empty() || self.spill.capacity() > 0 {
            self.spill.push(value);
        } else if self.len < INLINE_ROW_CAP {
            self.inline[self.len] = value;
        } else {
            // Inline overflow: migrate the four inline values, then append.
            self.spill.reserve(self.len + 1);
            for v in &mut self.inline {
                self.spill.push(std::mem::replace(v, Value::Null));
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Appends every value of a slice (cloned).
    pub fn extend_from_slice(&mut self, values: &[Value]) {
        for v in values {
            self.push(v.clone());
        }
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finishes the row: inline if it never overflowed, spilled otherwise.
    pub fn finish(self) -> Row {
        if self.spill.is_empty() && self.len <= INLINE_ROW_CAP {
            Row(Repr::Inline {
                len: self.len as u8,
                vals: self.inline,
            })
        } else {
            Row(Repr::Spilled(self.spill.into()))
        }
    }
}

impl Default for RowBuilder {
    fn default() -> Self {
        RowBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(ns: std::ops::Range<i64>) -> Vec<Value> {
        ns.map(Value::Int).collect()
    }

    #[test]
    fn narrow_rows_stay_inline() {
        for n in 0..=INLINE_ROW_CAP as i64 {
            let row = Row::from(ints(0..n));
            assert!(!row.is_spilled(), "{n} values must stay inline");
            assert_eq!(&row[..], &ints(0..n)[..]);
        }
    }

    #[test]
    fn wide_rows_spill_and_share_on_clone() {
        let row = Row::from(ints(0..5));
        assert!(row.is_spilled());
        assert_eq!(row.len(), 5);
        let clone = row.clone();
        assert!(row.shares_storage_with(&clone));
    }

    #[test]
    fn inline_clones_do_not_share() {
        let row = Row::from(ints(0..2));
        let clone = row.clone();
        assert!(!row.shares_storage_with(&clone));
        assert_eq!(row, clone);
    }

    #[test]
    fn equality_is_by_value_across_representations() {
        // Force a spilled representation of a narrow row via the builder
        // overflow path truncated back — not expressible; instead compare
        // a wide row against itself reconstructed.
        let wide = ints(0..6);
        let a = Row::from(wide.clone());
        let b = Row::from_slice(&wide);
        assert_eq!(a, b);
        assert!(!a.shares_storage_with(&b));

        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |r: &Row| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn builder_matches_vec_construction() {
        for n in 0..10i64 {
            let vals = ints(0..n);
            let mut b = RowBuilder::new();
            for v in &vals {
                b.push(v.clone());
            }
            assert_eq!(b.len(), n as usize);
            let built = b.finish();
            assert_eq!(built, Row::from(vals));
            assert_eq!(built.is_spilled(), n as usize > INLINE_ROW_CAP);
        }
    }

    #[test]
    fn builder_with_capacity_hint_spills_directly() {
        let mut b = RowBuilder::with_capacity(INLINE_ROW_CAP + 2);
        for v in ints(0..(INLINE_ROW_CAP as i64 + 2)) {
            b.push(v);
        }
        let row = b.finish();
        assert!(row.is_spilled());
        assert_eq!(row.len(), INLINE_ROW_CAP + 2);
    }

    #[test]
    fn empty_row() {
        let row = Row::empty();
        assert!(row.is_empty());
        assert!(!row.is_spilled());
        assert_eq!(row, RowBuilder::new().finish());
    }

    #[test]
    fn array_and_iterator_conversions() {
        let row: Row = [Value::Int(1), Value::Int(2)].into();
        assert!(!row.is_spilled());
        let collected: Row = (0..7).map(Value::Int).collect();
        assert!(collected.is_spilled());
        let back: Vec<Value> = collected.into();
        assert_eq!(back.len(), 7);
    }
}
