//! Runtime values and their static types.
//!
//! millstream tuples are rows of dynamically tagged [`Value`]s described by a
//! [`DataType`]. The set of types is deliberately small — integers, floats,
//! booleans and interned strings — which is all the paper's workloads (and a
//! realistic network-monitoring DSMS) need.

use core::cmp::Ordering;
use core::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string (reference counted; cloning a tuple does not copy the
    /// bytes).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Bool => "BOOL",
            DataType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// A dynamically tagged runtime value.
///
/// `Value` implements a *total* ordering (needed so operators can key and
/// sort on any column): values of the same type compare naturally, floats
/// compare with NaN greatest, and values of different types compare by a
/// fixed type rank. `Null` sorts before everything.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Shared UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values. The payload is interned
    /// (see [`crate::intern`]): constructing the same string repeatedly
    /// returns clones of one shared allocation.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(crate::intern::intern(s.as_ref()))
    }

    /// Constructs a string value without interning — for payloads known
    /// to be unique (free-form text) where table lookups are waste.
    pub fn str_uninterned(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True iff the value conforms to `ty` (`Null` conforms to every type).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        self.data_type().is_none_or(|t| t == ty)
    }

    /// Extracts an `i64`, coercing from `Float`/`Bool` where lossless-ish.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::type_mismatch("INT", other.type_name())),
        }
    }

    /// Extracts an `f64`, coercing from `Int`.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::type_mismatch("FLOAT", other.type_name())),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("BOOL", other.type_name())),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::type_mismatch("STRING", other.type_name())),
        }
    }

    /// Human-readable name of the dynamic type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Bool(_) => "BOOL",
            Value::Str(_) => "STRING",
        }
    }

    /// Rank used to order values of *different* types so that `Ord` is total.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Numeric addition with Int/Float promotion.
    pub fn add(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, "+", |a, b| a.wrapping_add(b), |a, b| a + b)
    }

    /// Numeric subtraction with Int/Float promotion.
    pub fn sub(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, "-", |a, b| a.wrapping_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication with Int/Float promotion.
    pub fn mul(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, "*", |a, b| a.wrapping_mul(b), |a, b| a * b)
    }

    /// Numeric division. Integer division by zero is an error; float
    /// division follows IEEE-754.
    pub fn div(&self, rhs: &Value) -> Result<Value> {
        match (self, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(Error::eval("division by zero")),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_div(*b))),
            _ => {
                let a = self.as_float()?;
                let b = rhs.as_float()?;
                Ok(Value::Float(a / b))
            }
        }
    }

    /// Remainder, with the same zero-divisor rules as [`Value::div`].
    pub fn rem(&self, rhs: &Value) -> Result<Value> {
        match (self, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(Error::eval("modulo by zero")),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(*b))),
            _ => {
                let a = self.as_float()?;
                let b = rhs.as_float()?;
                Ok(Value::Float(a % b))
            }
        }
    }
}

fn numeric_binop(
    lhs: &Value,
    rhs: &Value,
    op: &'static str,
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(int_op(*a, *b))),
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            // At least one side is a float; promote both.
            Ok(Value::Float(float_op(lhs.as_float()?, rhs.as_float()?)))
        }
        _ => Err(Error::eval(format!(
            "cannot apply `{op}` to {} and {}",
            lhs.type_name(),
            rhs.type_name()
        ))),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            // Mixed numeric types compare by numeric value so that
            // `Int(1) == Float(1.0)` — the behaviour users of a query
            // language expect.
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl core::hash::Hash for Value {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because
            // they compare equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                normalize_f64(*f).to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Total order on f64 with NaN greatest and -0.0 == 0.0.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN floats compare"),
    }
}

/// Collapses -0.0 to 0.0 and all NaNs to one canonical NaN for hashing.
fn normalize_f64(f: f64) -> f64 {
    if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Float(4.0).as_int().unwrap(), 4);
        assert!(Value::Float(4.5).as_int().is_err());
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::str("abc").as_str().unwrap(), "abc");
    }

    #[test]
    fn arithmetic_promotes() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(7).rem(&Value::Int(3)).unwrap(), Value::Int(1));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::str("a").add(&Value::Int(1)).is_err());
    }

    #[test]
    fn mixed_numeric_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
    }

    #[test]
    fn nan_is_greatest_float() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
    }

    #[test]
    fn cross_type_order_is_stable() {
        let mut vals = [
            Value::str("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(*vals.last().unwrap(), Value::str("z"));
    }

    #[test]
    fn repeated_strings_share_one_allocation() {
        let (Value::Str(a), Value::Str(b)) = (
            Value::str("value-intern-test"),
            Value::str("value-intern-test"),
        ) else {
            panic!("string values expected")
        };
        assert!(Arc::ptr_eq(&a, &b), "repeated payloads must be interned");
        let Value::Str(c) = Value::str_uninterned("value-intern-test") else {
            panic!("string value expected")
        };
        assert!(
            !Arc::ptr_eq(&a, &c),
            "uninterned constructor must not share"
        );
        assert_eq!(a, c);
    }

    #[test]
    fn conforms_to_type() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(!Value::Int(1).conforms_to(DataType::Str));
        assert!(Value::Null.conforms_to(DataType::Float));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Str.to_string(), "STRING");
    }
}
