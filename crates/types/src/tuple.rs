//! Tuples — the unit of data flowing through a query graph.
//!
//! Two kinds of tuples flow through millstream buffers (paper §4.2):
//!
//! * **data tuples** carry a row of values plus their stream timestamp, and
//! * **punctuation tuples** carry *only* a timestamp — an Enabling
//!   Time-Stamp — promising that every future tuple on this path has a
//!   timestamp ≥ that value. Punctuation is what reactivates idle-waiting
//!   operators; sinks eliminate it (footnote 3 of the paper).
//!
//! Every tuple additionally records its `entry` time — the instant the
//! originating data entered the DSMS — which is what output-latency
//! measurements subtract from the emission time. For punctuation the entry
//! time equals the generation time.

use std::fmt;

use crate::row::Row;
use crate::timestamp::Timestamp;
use crate::value::Value;

/// The payload of a tuple: either a data row or punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum TupleBody {
    /// A regular data row ([`Row`]: inline storage for narrow rows,
    /// shared heap storage for wide ones).
    Data(Row),
    /// A punctuation tuple carrying an Enabling Time-Stamp. All future
    /// tuples on the same path have timestamps `>=` the tuple's `ts`.
    Punctuation,
}

/// A timestamped item in a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The stream timestamp. Streams are ordered by this value.
    pub ts: Timestamp,
    /// The instant the originating data entered the DSMS; used for latency
    /// accounting. For internally timestamped streams this equals `ts` at
    /// the source.
    pub entry: Timestamp,
    /// Row data or punctuation.
    pub body: TupleBody,
}

impl Tuple {
    /// Creates a data tuple whose entry time equals its timestamp (the
    /// common case for internally timestamped sources). Accepts anything
    /// convertible to a [`Row`] — a `Vec<Value>`, a value array (which
    /// never allocates for ≤ [`crate::row::INLINE_ROW_CAP`] values), or a
    /// prebuilt `Row`.
    pub fn data(ts: Timestamp, values: impl Into<Row>) -> Self {
        Tuple {
            ts,
            entry: ts,
            body: TupleBody::Data(values.into()),
        }
    }

    /// Creates a data tuple with an explicit entry time (external timestamps
    /// where application time and arrival time differ).
    pub fn data_with_entry(ts: Timestamp, entry: Timestamp, values: impl Into<Row>) -> Self {
        Tuple {
            ts,
            entry,
            body: TupleBody::Data(values.into()),
        }
    }

    /// Creates a punctuation tuple carrying the ETS `ts`.
    pub fn punctuation(ts: Timestamp) -> Self {
        Tuple {
            ts,
            entry: ts,
            body: TupleBody::Punctuation,
        }
    }

    /// True iff this is a punctuation tuple.
    #[inline]
    pub fn is_punctuation(&self) -> bool {
        matches!(self.body, TupleBody::Punctuation)
    }

    /// True iff this is a data tuple.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.body, TupleBody::Data(_))
    }

    /// The row values, or `None` for punctuation.
    #[inline]
    pub fn values(&self) -> Option<&[Value]> {
        match &self.body {
            TupleBody::Data(v) => Some(v),
            TupleBody::Punctuation => None,
        }
    }

    /// The row, or `None` for punctuation. Use this over [`Tuple::values`]
    /// when the row itself is reused (cloning a `Row` is cheaper than
    /// rebuilding one from a slice).
    #[inline]
    pub fn row(&self) -> Option<&Row> {
        match &self.body {
            TupleBody::Data(v) => Some(v),
            TupleBody::Punctuation => None,
        }
    }

    /// The row values, panicking on punctuation. Operators call this only
    /// after checking [`Tuple::is_data`].
    #[inline]
    pub fn values_expect(&self) -> &[Value] {
        self.values()
            .expect("data tuple expected, found punctuation")
    }

    /// Returns a copy of this tuple with a different row but the same
    /// timestamps. Non-IWP operators use this: the paper requires output
    /// tuples to take "their timestamps from the tuple in A".
    pub fn with_values(&self, values: impl Into<Row>) -> Tuple {
        Tuple {
            ts: self.ts,
            entry: self.entry,
            body: TupleBody::Data(values.into()),
        }
    }

    /// Concatenates two data tuples into a join result. The result takes
    /// both its timestamp *and* its entry time from `probe` (the newly
    /// arrived tuple), per the window-join semantics of
    /// Kang/Naughton/Viglas adopted by the paper (Fig. 1): the result can
    /// only exist once the probe arrives, so output latency is measured
    /// from the probe's entry into the DSMS.
    pub fn join(probe: &Tuple, stored: &Tuple) -> Tuple {
        let p = probe.values_expect();
        let s = stored.values_expect();
        let mut row = Row::builder(p.len() + s.len());
        row.extend_from_slice(p);
        row.extend_from_slice(s);
        Tuple {
            ts: probe.ts,
            entry: probe.entry,
            body: TupleBody::Data(row.finish()),
        }
    }

    /// Number of values carried (0 for punctuation). Used by buffer
    /// occupancy accounting.
    pub fn width(&self) -> usize {
        self.values().map_or(0, |v| v.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            TupleBody::Punctuation => write!(f, "⟨punct @ {}⟩", self.ts),
            TupleBody::Data(values) => {
                write!(f, "⟨")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " @ {}⟩", self.ts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ts: u64, v: i64) -> Tuple {
        Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
    }

    #[test]
    fn constructors() {
        let d = t(5, 42);
        assert!(d.is_data());
        assert!(!d.is_punctuation());
        assert_eq!(d.entry, d.ts);
        assert_eq!(d.values().unwrap(), &[Value::Int(42)]);
        assert_eq!(d.width(), 1);

        let p = Tuple::punctuation(Timestamp::from_micros(9));
        assert!(p.is_punctuation());
        assert_eq!(p.values(), None);
        assert_eq!(p.width(), 0);
    }

    #[test]
    fn explicit_entry_time() {
        let d = Tuple::data_with_entry(
            Timestamp::from_micros(100),
            Timestamp::from_micros(130),
            vec![Value::Int(1)],
        );
        assert_eq!(d.ts.as_micros(), 100);
        assert_eq!(d.entry.as_micros(), 130);
    }

    #[test]
    fn with_values_preserves_time() {
        let d = Tuple::data_with_entry(
            Timestamp::from_micros(10),
            Timestamp::from_micros(12),
            vec![Value::Int(1), Value::Int(2)],
        );
        let m = d.with_values(vec![Value::Int(3)]);
        assert_eq!(m.ts, d.ts);
        assert_eq!(m.entry, d.entry);
        assert_eq!(m.values().unwrap(), &[Value::Int(3)]);
    }

    #[test]
    fn join_takes_probe_ts_and_entry() {
        let probe = Tuple::data_with_entry(
            Timestamp::from_micros(50),
            Timestamp::from_micros(55),
            vec![Value::Int(1)],
        );
        let stored = Tuple::data_with_entry(
            Timestamp::from_micros(20),
            Timestamp::from_micros(21),
            vec![Value::Int(2), Value::Int(3)],
        );
        let j = Tuple::join(&probe, &stored);
        assert_eq!(j.ts.as_micros(), 50);
        assert_eq!(j.entry.as_micros(), 55, "latency measured from the probe");
        assert_eq!(
            j.values().unwrap(),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    #[should_panic(expected = "data tuple expected")]
    fn values_expect_panics_on_punctuation() {
        Tuple::punctuation(Timestamp::ZERO).values_expect();
    }

    #[test]
    fn display_forms() {
        assert_eq!(t(1_000_000, 7).to_string(), "⟨7 @ 1.000000s⟩");
        assert!(Tuple::punctuation(Timestamp::ZERO)
            .to_string()
            .starts_with("⟨punct"));
    }

    #[test]
    fn narrow_clone_is_inline_and_equal() {
        // Narrow rows live inline: a clone copies the values (no heap
        // traffic, nothing to share) and compares equal by value.
        let d = t(1, 9);
        let c = d.clone();
        assert_eq!(d, c);
        if let (TupleBody::Data(a), TupleBody::Data(b)) = (&d.body, &c.body) {
            assert!(!a.is_spilled());
            assert!(!a.shares_storage_with(b));
        } else {
            panic!("expected data bodies");
        }
    }

    #[test]
    fn wide_clone_shares_row_storage() {
        // Wide rows spill to shared storage; clones bump the refcount
        // exactly as the old Arc<[Value]> representation did.
        let wide: Vec<Value> = (0..=crate::row::INLINE_ROW_CAP as i64)
            .map(Value::Int)
            .collect();
        let d = Tuple::data(Timestamp::from_micros(1), wide);
        let c = d.clone();
        if let (TupleBody::Data(a), TupleBody::Data(b)) = (&d.body, &c.body) {
            assert!(a.is_spilled());
            assert!(a.shares_storage_with(b));
        } else {
            panic!("expected data bodies");
        }
    }

    #[test]
    fn join_output_stays_inline_when_narrow() {
        let probe = t(1, 1);
        let stored = t(2, 2);
        let j = Tuple::join(&probe, &stored);
        assert!(!j.row().unwrap().is_spilled());
        let wide = Tuple::data(
            Timestamp::from_micros(3),
            (0..4).map(Value::Int).collect::<Vec<_>>(),
        );
        let jw = Tuple::join(&probe, &wide);
        assert!(jw.row().unwrap().is_spilled());
        assert_eq!(jw.width(), 5);
    }
}
