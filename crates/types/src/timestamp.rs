//! Timestamps and durations.
//!
//! The paper (§5) distinguishes three kinds of timestamps a data stream may
//! carry — *external* (assigned by the producing application), *internal*
//! (assigned on entry to the DSMS from the system clock) and *latent*
//! (assigned lazily by individual operators that need one). The kind is a
//! property of a **stream**, not of an individual tuple, and it determines
//! whether idle-waiting can occur at all and how Enabling Time-Stamps (ETS)
//! are generated for it; see [`TimestampKind`].
//!
//! A [`Timestamp`] itself is a plain monotone instant measured in
//! microseconds from an arbitrary epoch (simulation start in the
//! discrete-event engine, process start in the real-time engine).
//! Microsecond resolution is fine enough to resolve the paper's headline
//! ~0.1 ms latency gap between on-demand ETS and latent timestamps while
//! keeping arithmetic in `u64`.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An instant on the (virtual or wall-clock) timeline, in microseconds since
/// an arbitrary epoch.
///
/// `Timestamp` is totally ordered; streams entering the DSMS are required to
/// be non-decreasing in their timestamps, which is the property every
/// idle-waiting-prone operator relies on.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The epoch (time zero).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable instant. Useful as an identity for `min`.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from raw microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Builds a timestamp from milliseconds, saturating at
    /// [`Timestamp::MAX`] on overflow.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis.saturating_mul(MICROS_PER_MILLI))
    }

    /// Builds a timestamp from whole seconds, saturating at
    /// [`Timestamp::MAX`] on overflow.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs.saturating_mul(MICROS_PER_SEC))
    }

    /// Builds a timestamp from fractional seconds, saturating at zero for
    /// negative inputs.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            Timestamp::ZERO
        } else {
            Timestamp((secs * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Raw microsecond count since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction producing the elapsed duration between two
    /// instants; zero if `earlier` is actually later.
    #[inline]
    pub fn duration_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration, saturating at the epoch. ETS
    /// generation for externally timestamped streams (`t + τ − δ`) must not
    /// underflow when the skew bound exceeds the elapsed time.
    #[inline]
    pub fn saturating_sub(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta.as_micros()))
    }

    /// Addition that saturates at `Timestamp::MAX` instead of overflowing.
    #[inline]
    pub fn saturating_add(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(delta.as_micros()))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        // Saturate: a wrapping add would send time backwards, violating the
        // monotonicity contract every buffer and IWP operator relies on.
        Timestamp(self.0.saturating_add(rhs.as_micros()))
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.as_micros());
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta::from_micros(self.0.saturating_sub(rhs.0))
    }
}

/// A non-negative span of time, in microseconds.
///
/// Distinct from [`Timestamp`] so that instants and spans cannot be mixed up
/// in ETS arithmetic.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Builds a span from raw microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Builds a span from milliseconds, saturating on overflow.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis.saturating_mul(MICROS_PER_MILLI))
    }

    /// Builds a span from whole seconds, saturating on overflow.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs.saturating_mul(MICROS_PER_SEC))
    }

    /// Builds a span from fractional seconds, saturating at zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            TimeDelta::ZERO
        } else {
            TimeDelta((secs * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True iff this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MICROS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl core::iter::Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> Self {
        iter.fold(TimeDelta::ZERO, |acc, d| acc + d)
    }
}

/// The three timestamp disciplines a stream can use (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TimestampKind {
    /// Tuples were timestamped by the producing application. Future tuples
    /// are only bounded by an application-specific maximum skew, so ETS for
    /// such streams must apply the `t + τ − δ` rule of §5.
    External,
    /// Tuples are timestamped with the system clock when they enter the
    /// DSMS. An ETS can always be generated from the current clock value.
    Internal,
    /// Tuples carry no timestamp until an operator that needs one assigns it
    /// on the fly. Streams with latent timestamps never idle-wait: a union
    /// may forward tuples the moment they arrive. This is the paper's
    /// experimental lower bound (line **D**).
    Latent,
}

impl TimestampKind {
    /// Whether idle-waiting can occur on a stream of this kind. Latent
    /// streams are exempt by construction.
    #[inline]
    pub fn idle_waiting_possible(self) -> bool {
        !matches!(self, TimestampKind::Latent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Timestamp::from_secs(3), Timestamp::from_micros(3_000_000));
        assert_eq!(Timestamp::from_millis(5), Timestamp::from_micros(5_000));
        assert_eq!(TimeDelta::from_secs(2), TimeDelta::from_micros(2_000_000));
        assert_eq!(
            Timestamp::from_secs_f64(1.5),
            Timestamp::from_micros(1_500_000)
        );
        assert_eq!(Timestamp::from_secs_f64(-1.0), Timestamp::ZERO);
    }

    #[test]
    fn ordering_is_total_and_monotone() {
        let a = Timestamp::from_micros(10);
        let b = Timestamp::from_micros(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(Timestamp::MAX.min(a), a);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_secs(1);
        let d = TimeDelta::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
        // duration_since saturates rather than underflowing.
        assert_eq!(t.duration_since(t + d), TimeDelta::ZERO);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let t = Timestamp::from_micros(5);
        assert_eq!(
            t.saturating_sub(TimeDelta::from_micros(10)),
            Timestamp::ZERO
        );
        assert_eq!(
            Timestamp::MAX.saturating_add(TimeDelta::from_secs(1)),
            Timestamp::MAX
        );
        assert_eq!(
            TimeDelta::from_micros(u64::MAX).saturating_mul(2),
            TimeDelta::from_micros(u64::MAX)
        );
    }

    #[test]
    fn add_saturates_at_the_u64_boundary() {
        // Plain `+` must never wrap past Timestamp::MAX: in release builds a
        // wrapped timestamp would travel backwards in time and silently
        // violate every ordering contract downstream.
        let near_max = Timestamp::from_micros(u64::MAX - 1);
        assert_eq!(near_max + TimeDelta::from_micros(1), Timestamp::MAX);
        assert_eq!(near_max + TimeDelta::from_micros(2), Timestamp::MAX);
        assert_eq!(Timestamp::MAX + TimeDelta::from_secs(1), Timestamp::MAX);

        let mut t = Timestamp::from_micros(u64::MAX - 5);
        t += TimeDelta::from_micros(100);
        assert_eq!(t, Timestamp::MAX);

        let d_max = TimeDelta::from_micros(u64::MAX);
        assert_eq!(d_max + TimeDelta::from_micros(1), d_max);
        let mut d = TimeDelta::from_micros(u64::MAX - 1);
        d += TimeDelta::from_micros(7);
        assert_eq!(d, d_max);
    }

    #[test]
    fn constructors_saturate_on_overflow() {
        assert_eq!(Timestamp::from_millis(u64::MAX), Timestamp::MAX);
        assert_eq!(Timestamp::from_secs(u64::MAX), Timestamp::MAX);
        assert_eq!(
            TimeDelta::from_millis(u64::MAX),
            TimeDelta::from_micros(u64::MAX)
        );
        assert_eq!(
            TimeDelta::from_secs(u64::MAX),
            TimeDelta::from_micros(u64::MAX)
        );
        // Values just below the boundary still multiply exactly.
        let ok = u64::MAX / MICROS_PER_SEC;
        assert_eq!(
            Timestamp::from_secs(ok),
            Timestamp::from_micros(ok * MICROS_PER_SEC)
        );
    }

    #[test]
    fn sum_saturates_instead_of_panicking() {
        let total: TimeDelta = [u64::MAX, u64::MAX, 1]
            .into_iter()
            .map(TimeDelta::from_micros)
            .sum();
        assert_eq!(total, TimeDelta::from_micros(u64::MAX));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(TimeDelta::from_micros(12).to_string(), "12us");
        assert_eq!(TimeDelta::from_millis(3).to_string(), "3.000ms");
        assert_eq!(TimeDelta::from_secs(2).to_string(), "2.000s");
        assert_eq!(Timestamp::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn latent_streams_never_idle_wait() {
        assert!(TimestampKind::External.idle_waiting_possible());
        assert!(TimestampKind::Internal.idle_waiting_possible());
        assert!(!TimestampKind::Latent.idle_waiting_possible());
    }

    #[test]
    fn sum_of_deltas() {
        let total: TimeDelta = [1u64, 2, 3].into_iter().map(TimeDelta::from_micros).sum();
        assert_eq!(total, TimeDelta::from_micros(6));
    }
}
