//! # millstream-bench
//!
//! Shared infrastructure for the experiment harnesses that regenerate every
//! table and figure of the paper's evaluation (§6). Each harness is a
//! `harness = false` bench target; `cargo bench -p millstream-bench`
//! reproduces the full evaluation and prints paper-style tables.
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `fig7_latency` | Fig. 7(a)/(b): average output latency vs. punctuation rate |
//! | `idle_waiting_table` | §6 in-text idle-waiting percentages |
//! | `fig8_memory` | Fig. 8(a)/(b): peak total queue size vs. punctuation rate |
//! | `ablation_*` | design-choice ablations (DESIGN.md §6) |
//! | `micro_ops` | Criterion micro-benchmarks of operator primitives |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;
use std::path::PathBuf;

use millstream_metrics::Json;

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Formats a millisecond value with adaptive precision (log-scale friendly).
pub fn fmt_ms(ms: f64) -> String {
    if !ms.is_finite() {
        "n/a".into()
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    if frac < 0.001 && frac > 0.0 {
        format!("{:.3}%", frac * 100.0)
    } else {
        format!("{:.1}%", frac * 100.0)
    }
}

/// The punctuation-rate sweep shared by Fig. 7 and Fig. 8 (tuples/s
/// injected into the sparse stream for line B).
pub const PERIODIC_RATES: [f64; 8] = [0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];

/// Persists a harness's machine-readable results under the workspace's
/// `target/experiments/<name>.json` and reports the path on stdout.
/// Failures to write are reported but never fail the experiment.
pub fn write_results(name: &str, results: Json) {
    // Bench binaries run with the package as cwd; anchor at the workspace
    // root so artifacts land in one place.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, results.render_pretty()) {
        Ok(()) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Persists a harness's headline numbers as `BENCH_<name>.json` at the
/// **workspace root**, next to EXPERIMENTS.md. Unlike the full dumps under
/// `target/experiments/`, these land in the tree so the perf trajectory is
/// tracked across PRs. Failures to write are reported but never fail the
/// experiment.
pub fn write_bench_summary(name: &str, results: Json) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    match std::fs::write(&path, results.render_pretty()) {
        Ok(()) => println!("summary written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2000".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().filter(|l| !l.is_empty()).collect();
        // title, header, rule, two data rows.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn ms_formatting_is_adaptive() {
        assert_eq!(fmt_ms(12345.6), "12346");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.12345), "0.1235");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.99), "99.0%");
        assert_eq!(fmt_pct(0.0005), "0.050%");
        assert_eq!(fmt_pct(0.0), "0.0%");
    }
}
