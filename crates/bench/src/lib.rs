//! # millstream-bench
//!
//! Shared infrastructure for the experiment harnesses that regenerate every
//! table and figure of the paper's evaluation (§6). Each harness is a
//! `harness = false` bench target; `cargo bench -p millstream-bench`
//! reproduces the full evaluation and prints paper-style tables.
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `fig7_latency` | Fig. 7(a)/(b): average output latency vs. punctuation rate |
//! | `idle_waiting_table` | §6 in-text idle-waiting percentages |
//! | `fig8_memory` | Fig. 8(a)/(b): peak total queue size vs. punctuation rate |
//! | `ablation_*` | design-choice ablations (DESIGN.md §9) |
//! | `micro_ops` | Criterion micro-benchmarks of operator primitives |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;

use std::fmt::Write as _;
use std::path::PathBuf;

use millstream_metrics::Json;

/// With the `count-alloc` feature every binary linking this crate (the
/// bench harnesses and `msq`) routes heap traffic through the counting
/// wrapper, making [`alloc_track::allocations`] a live census.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOCATOR: alloc_track::CountingAllocator = alloc_track::CountingAllocator;

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// True iff the bench was invoked with `--quick` (via `cargo bench ... --
/// --quick`, or `msq bench --quick`): a bounded run for CI gates that
/// keeps the shape checks but shrinks waves/rounds/durations.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Formats a millisecond value with adaptive precision (log-scale friendly).
pub fn fmt_ms(ms: f64) -> String {
    if !ms.is_finite() {
        "n/a".into()
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    if frac < 0.001 && frac > 0.0 {
        format!("{:.3}%", frac * 100.0)
    } else {
        format!("{:.1}%", frac * 100.0)
    }
}

/// The punctuation-rate sweep shared by Fig. 7 and Fig. 8 (tuples/s
/// injected into the sparse stream for line B).
pub const PERIODIC_RATES: [f64; 8] = [0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];

/// Persists a harness's machine-readable results under the workspace's
/// `target/experiments/<name>.json` and reports the path on stdout.
/// Failures to write are reported but never fail the experiment.
pub fn write_results(name: &str, results: Json) {
    // Bench binaries run with the package as cwd; anchor at the workspace
    // root so artifacts land in one place.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, results.render_pretty()) {
        Ok(()) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Persists a harness's headline numbers as `BENCH_<name>.json` at the
/// **workspace root**, next to EXPERIMENTS.md. Unlike the full dumps under
/// `target/experiments/`, these land in the tree so the perf trajectory is
/// tracked across PRs. Failures to write are reported but never fail the
/// experiment.
pub fn write_bench_summary(name: &str, results: Json) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    match std::fs::write(&path, with_host_cores(results).render_pretty()) {
        Ok(()) => println!("summary written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Stamps `host_cores` into a summary object so every `BENCH_*.json`
/// records the parallelism of the machine that produced it (a 0.35×
/// "speedup" means something very different on 1 core than on 8). A
/// harness that already set the key wins.
fn with_host_cores(results: Json) -> Json {
    match results {
        Json::Obj(mut fields) => {
            if !fields.iter().any(|(k, _)| k == "host_cores") {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                fields.push(("host_cores".to_string(), Json::Num(cores as f64)));
            }
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Extracts the number following `"key":` in a flat JSON document. The
/// bench harnesses only ever read back the small flat files they (or the
/// repo) own — the allocation baseline and budget — so a full parser
/// would be dead weight; unknown or malformed keys simply return `None`.
pub fn read_json_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2000".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().filter(|l| !l.is_empty()).collect();
        // title, header, rule, two data rows.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn ms_formatting_is_adaptive() {
        assert_eq!(fmt_ms(12345.6), "12346");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.12345), "0.1235");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
    }

    #[test]
    fn read_json_num_extracts_flat_keys() {
        let doc = r#"{ "k1_allocs_per_tuple": 2.375, "k64_tuples_per_sec": 1.2e6, "neg": -3 }"#;
        assert_eq!(read_json_num(doc, "k1_allocs_per_tuple"), Some(2.375));
        assert_eq!(read_json_num(doc, "k64_tuples_per_sec"), Some(1.2e6));
        assert_eq!(read_json_num(doc, "neg"), Some(-3.0));
        assert_eq!(read_json_num(doc, "missing"), None);
        assert_eq!(read_json_num("not json", "k"), None);
    }

    #[test]
    fn host_cores_stamped_once() {
        let stamped = with_host_cores(Json::obj([("x", Json::Num(1.0))]));
        let Json::Obj(fields) = &stamped else {
            panic!("object expected")
        };
        assert!(fields.iter().any(|(k, _)| k == "host_cores"));
        // A harness-provided value is not overwritten or duplicated.
        let kept = with_host_cores(Json::obj([("host_cores", Json::Num(64.0))]));
        let Json::Obj(fields) = &kept else {
            panic!("object expected")
        };
        let hits: Vec<_> = fields.iter().filter(|(k, _)| k == "host_cores").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, Json::Num(64.0));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.99), "99.0%");
        assert_eq!(fmt_pct(0.0005), "0.050%");
        assert_eq!(fmt_pct(0.0), "0.0%");
    }
}
