//! Heap-allocation counting for the zero-allocation hot-path benchmarks.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocating call (`alloc`, `alloc_zeroed`, `realloc`) in a relaxed
//! atomic. The counter is process-global: registering the allocator with
//! `#[global_allocator]` makes [`allocations`] a precise census of heap
//! traffic, which `micro_alloc` samples around a steady-state window to
//! report *allocations per delivered tuple*.
//!
//! Registration is feature-gated (`count-alloc`): the type is always
//! compiled, but the `#[global_allocator]` item in `lib.rs` only exists
//! when the feature is enabled, so ordinary builds keep the plain system
//! allocator. [`counting`] reports at runtime whether the gate is on —
//! harnesses that need real numbers assert it instead of silently
//! reporting zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that forwards to [`System`] and counts allocating calls.
pub struct CountingAllocator;

// SAFETY: forwards every call unchanged to the system allocator; the only
// addition is a relaxed counter increment, which cannot allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move (and therefore allocate); count it as one.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocating calls since process start (0 unless the `count-alloc`
/// feature registered [`CountingAllocator`] as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// True iff this build registered the counting allocator.
pub fn counting() -> bool {
    cfg!(feature = "count-alloc")
}

#[cfg(all(test, feature = "count-alloc"))]
mod tests {
    use super::*;

    #[test]
    fn counts_heap_allocations() {
        let before = allocations();
        let v: Vec<u64> = Vec::with_capacity(32);
        let after = allocations();
        assert!(after > before, "Vec::with_capacity must be counted");
        drop(v);
        assert!(counting());
    }
}
