//! Ablation **A3** — when does on-demand ETS matter? A sweep of the
//! fast:slow rate ratio.
//!
//! The paper motivates ETS with rate-skewed inputs ("B is experiencing
//! heavier traffic than A"). This bench fixes the fast stream at 50/s and
//! sweeps the slow stream from 50/s (no skew) down to 0.005/s (10⁴×),
//! reporting the latency of no-ETS (A) and on-demand (C). The A line should
//! grow roughly like the slow stream's inter-arrival time, while C stays
//! flat in the microsecond regime.

use millstream_bench::{fmt_ms, print_table, write_results};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn latency(strategy: Strategy, slow_rate_hz: f64) -> f64 {
    let cfg = UnionExperiment {
        strategy,
        slow_rate_hz,
        duration: TimeDelta::from_secs(600),
        seed: 9,
        ..UnionExperiment::default()
    };
    run_union_experiment(&cfg)
        .expect("experiment runs")
        .metrics
        .latency
        .mean_ms
}

fn main() {
    println!("millstream ablation A3 — latency vs input rate skew (fast fixed at 50/s)");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &slow in &[50.0, 5.0, 0.5, 0.05, 0.005] {
        let a = latency(Strategy::NoEts, slow);
        let c = latency(Strategy::OnDemand, slow);
        series.push((slow, a, c));
        rows.push(vec![
            format!("{:.0}x", 50.0 / slow),
            format!("{slow}"),
            fmt_ms(a),
            fmt_ms(c),
            format!("{:.0}x", a / c.max(1e-9)),
        ]);
    }
    print_table(
        "mean output latency (ms) by rate skew",
        &["skew", "slow rate/s", "A no-ETS", "C on-demand", "A / C"],
        &rows,
    );

    write_results(
        "ablation_skew",
        Json::Arr(
            series
                .iter()
                .map(|&(slow, a, c)| {
                    Json::obj([
                        ("slow_rate_hz", Json::Num(slow)),
                        ("a_no_ets_ms", Json::Num(a)),
                        ("c_on_demand_ms", Json::Num(c)),
                    ])
                })
                .collect(),
        ),
    );
    // A grows with skew; C stays flat.
    let a_small = series.first().expect("rows").1;
    let a_large = series.last().expect("rows").1;
    assert!(
        a_large > a_small * 50.0,
        "A latency must grow with skew ({a_small} -> {a_large})"
    );
    let c_max = series.iter().map(|&(_, _, c)| c).fold(0.0, f64::max);
    assert!(
        c_max < 1.0,
        "C stays sub-millisecond at every skew, got {c_max}"
    );
    println!("\nshape checks passed: idle-waiting cost scales with skew; on-demand ETS is flat");
}
