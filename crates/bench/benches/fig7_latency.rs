//! Reproduces **Figure 7** of the paper: average output latency of the
//! Fig. 4 union query under the four timestamp-management strategies, as a
//! function of the periodic-punctuation rate (for line B).
//!
//! Paper setup: Poisson arrivals at 50 tuples/s (fast) and 0.05 tuples/s
//! (slow); 95%-selectivity selections before the union; punctuation
//! injected into the sparse stream.
//!
//! Expected shape (paper, log-scale):
//! * **A** (no ETS): ~10³–10⁴ ms — tuples on the fast stream wait for the
//!   next slow-stream arrival (~20 s apart on average);
//! * **B** (periodic): falls steadily as the rate increases, but never
//!   reaches C;
//! * **C** (on-demand): four orders of magnitude below A;
//! * **D** (latent): indistinguishable from C at Fig. 7(a) scale; the
//!   second table (the Fig. 7(b) zoom) shows C − D ≈ a tenth of a
//!   millisecond or less.

use millstream_bench::{fmt_ms, print_table, write_results, PERIODIC_RATES};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn config(strategy: Strategy, seed: u64) -> UnionExperiment {
    UnionExperiment {
        strategy,
        duration: TimeDelta::from_secs(400),
        seed,
        ..UnionExperiment::default()
    }
}

fn mean_latency(strategy: Strategy) -> (f64, u64) {
    // Average over a few seeds to smooth the sparse stream's variance.
    let seeds = [11u64, 23, 47];
    let mut total = 0.0;
    let mut delivered = 0;
    for &seed in &seeds {
        let r = run_union_experiment(&config(strategy, seed)).expect("experiment runs");
        total += r.metrics.latency.mean_ms;
        delivered += r.metrics.delivered;
    }
    (total / seeds.len() as f64, delivered / seeds.len() as u64)
}

fn main() {
    println!("millstream reproduction of Fig. 7 — average output latency (ms)");
    println!("workload: Poisson 50/s + 0.05/s, selectivity 0.95, 400 s virtual time, 3 seeds");

    let (a_ms, _) = mean_latency(Strategy::NoEts);
    let (c_ms, _) = mean_latency(Strategy::OnDemand);
    let (d_ms, _) = mean_latency(Strategy::Latent);

    // Fig. 7(a): one row per periodic rate; A, C, D are rate-independent.
    let mut rows = Vec::new();
    let mut b_points = Vec::new();
    for &rate in &PERIODIC_RATES {
        let (b_ms, _) = mean_latency(Strategy::Periodic { rate_hz: rate });
        b_points.push(Json::obj([
            ("rate_hz", Json::Num(rate)),
            ("mean_ms", Json::Num(b_ms)),
        ]));
        rows.push(vec![
            format!("{rate}"),
            fmt_ms(a_ms),
            fmt_ms(b_ms),
            fmt_ms(c_ms),
            fmt_ms(d_ms),
        ]);
    }
    print_table(
        "Fig. 7(a) — avg output latency (ms) vs punctuation rate (log-scale in paper)",
        &[
            "punct/s",
            "A no-ETS",
            "B periodic",
            "C on-demand",
            "D latent",
        ],
        &rows,
    );

    // Fig. 7(b): the C vs D zoom.
    print_table(
        "Fig. 7(b) — zoom: C vs D",
        &["series", "mean latency (ms)"],
        &[
            vec!["C on-demand".into(), fmt_ms(c_ms)],
            vec!["D latent".into(), fmt_ms(d_ms)],
            vec!["C − D".into(), fmt_ms(c_ms - d_ms)],
        ],
    );

    // Shape assertions: fail loudly if the reproduction drifts.
    assert!(
        a_ms > 1_000.0,
        "line A must be in the seconds range, got {a_ms} ms"
    );
    assert!(c_ms < 1.0, "line C must be sub-millisecond, got {c_ms} ms");
    assert!(d_ms <= c_ms, "latent is the lower bound");
    assert!(
        a_ms / c_ms > 1_000.0,
        "C must sit orders of magnitude below A (A/C = {:.0})",
        a_ms / c_ms
    );
    write_results(
        "fig7_latency",
        Json::obj([
            ("a_no_ets_mean_ms", Json::Num(a_ms)),
            ("c_on_demand_mean_ms", Json::Num(c_ms)),
            ("d_latent_mean_ms", Json::Num(d_ms)),
            ("b_periodic", Json::Arr(b_points)),
        ]),
    );
    println!("\nshape checks passed: A ≫ B(rate)↓ > C ≈ D");
}
