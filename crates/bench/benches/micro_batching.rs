//! Micro-benchmark — the batched Encore hot path (`ExecOptions::encore_batch`).
//!
//! The depth-first NOS cycle pays a fixed scheduling toll per operator
//! step: poll, next-operator selection, cost charging, clock advance and
//! idle refresh. When a filter drops a run of consecutive tuples the
//! Encore rule re-selects the same operator over and over, so that toll is
//! pure overhead. Batching fuses up to `K` consecutive Encore steps into
//! one scheduling decision; this harness measures the wall-clock payoff on
//! the paper's filter→union shape with a selective predicate (1-in-32
//! passes, so drop-runs of ~31 dominate the filter's work).
//!
//! Methodology: only the executor drain is timed — tuple construction and
//! ingest are identical at every `K` and are not what batching optimises.
//! Batch sizes are sampled in alternating rounds (K=1, 8, 64, repeat) and
//! the per-K minimum is reported, so machine-level noise hits every
//! configuration equally.
//!
//! Shape check: K = 64 must deliver at least 2× the tuple throughput of
//! per-tuple execution (K = 1). The measured numbers are recorded in
//! EXPERIMENTS.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use millstream_bench::{print_table, quick_mode, write_bench_summary, write_results};
use millstream_core::prelude::*;
use millstream_metrics::Json;

/// Counts deliveries without storing tuples (keeps the sink cost flat).
#[derive(Clone, Default)]
struct Count(Arc<AtomicU64>);

impl SinkCollector for Count {
    fn deliver(&mut self, _tuple: Tuple, _now: Timestamp) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

const WAVES: u64 = 64;
const WAVE_TUPLES: u64 = 1024; // per source, per wave
const ROUNDS: usize = 5;

/// Waves per run: `--quick` shrinks the run 4× for CI-bounded sweeps.
fn waves() -> u64 {
    if quick_mode() {
        WAVES / 4
    } else {
        WAVES
    }
}

fn rounds() -> usize {
    if quick_mode() {
        2
    } else {
        ROUNDS
    }
}

struct RunResult {
    tuples: u64,
    delivered: u64,
    secs: f64,
    steps: u64,
    batches: u64,
}

/// Builds the Fig. 4 shape (two sources → selective filter each → union →
/// counting sink), ingests `WAVES` bursts on both sources and times the
/// drain after each burst.
fn run(encore_batch: usize) -> RunResult {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("S2", schema.clone(), TimestampKind::Internal);
    let pred = Expr::col(0).ge(Expr::lit(0));
    let f1 = b
        .operator(
            Box::new(Filter::new("σ1", schema.clone(), pred.clone())),
            vec![Input::Source(s1)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new("σ2", schema.clone(), pred)),
            vec![Input::Source(s2)],
        )
        .unwrap();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    let out = Count::default();
    b.operator(
        Box::new(Sink::new("sink", schema, out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::None,
    )
    .with_encore_batch(encore_batch);

    // Shared payloads: ingest clones a template (cheap Arc bump) so the
    // timed region measures the execution engine, not the allocator.
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let mut busy = std::time::Duration::ZERO;
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let n = w * WAVE_TUPLES + i;
            let ts = Timestamp::from_millis(n);
            // 1-in-32 passes the `v >= 0` predicate.
            let mut t = if n.is_multiple_of(32) {
                pass.clone()
            } else {
                fail.clone()
            };
            t.ts = ts;
            t.entry = ts;
            exec.ingest(s1, t.clone()).unwrap();
            exec.ingest(s2, t).unwrap();
            ingested += 2;
        }
        let started = Instant::now();
        exec.run_until_quiescent(100_000_000).unwrap();
        busy += started.elapsed();
    }
    exec.close_source(s1).unwrap();
    exec.close_source(s2).unwrap();
    let started = Instant::now();
    exec.run_until_quiescent(100_000_000).unwrap();
    busy += started.elapsed();
    let secs = busy.as_secs_f64();

    let stats = exec.stats();
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs,
        steps: stats.steps,
        batches: stats.batches,
    }
}

fn main() {
    println!("millstream micro-benchmark — batched Encore execution (ExecOptions::encore_batch)");
    println!(
        "filter→union pipeline, 1-in-32 selectivity, {} tuples per run, best of {} interleaved rounds{}\n",
        2 * waves() * WAVE_TUPLES,
        rounds(),
        if quick_mode() { " (quick mode)" } else { "" }
    );

    // Warm up the allocator and caches before timing anything.
    let _ = run(1);

    let ks = [1usize, 8, 64];
    let mut results: Vec<(usize, RunResult)> = ks.iter().map(|&k| (k, run(k))).collect();
    for _ in 1..rounds() {
        for (i, &k) in ks.iter().enumerate() {
            let r = run(k);
            if r.secs < results[i].1.secs {
                results[i].1 = r;
            }
        }
    }
    let base = &results[0].1;
    assert!(
        results
            .iter()
            .all(|(_, r)| r.delivered == base.delivered && r.steps == base.steps),
        "batched runs must do identical work"
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (k, r) in &results {
        let throughput = r.tuples as f64 / r.secs;
        let speedup = base.secs / r.secs;
        rows.push(vec![
            format!("K={k}"),
            format!("{:.2}", r.secs * 1e3),
            format!("{:.2}M", throughput / 1e6),
            format!("{speedup:.2}x"),
            r.batches.to_string(),
            format!("{:.2}", r.steps as f64 / r.batches as f64),
        ]);
        json_rows.push(Json::obj([
            ("encore_batch", Json::Num(*k as f64)),
            ("tuples_per_sec", Json::Num(throughput)),
            ("speedup_vs_per_tuple", Json::Num(speedup)),
            ("scheduling_decisions", Json::Num(r.batches as f64)),
            ("steps", Json::Num(r.steps as f64)),
        ]));
    }
    print_table(
        "tuple throughput vs encore batch size",
        &[
            "batch",
            "time ms",
            "tuples/s",
            "speedup",
            "decisions",
            "steps/decision",
        ],
        &rows,
    );
    let summary = Json::obj([
        (
            "tuples_per_run",
            Json::Num((2 * waves() * WAVE_TUPLES) as f64),
        ),
        ("selectivity", Json::str("1-in-32")),
        ("quick", Json::Bool(quick_mode())),
        ("rows", Json::Arr(json_rows)),
    ]);
    write_results("micro_batching", summary.clone());
    write_bench_summary("micro_batching", summary);

    let k64 = results.iter().find(|(k, _)| *k == 64).unwrap();
    let speedup = base.secs / k64.1.secs;
    assert!(
        speedup >= 2.0,
        "K=64 must at least double tuple throughput over per-tuple execution, got {speedup:.2}x"
    );
    println!(
        "\nshape checks passed: identical output ({} tuples) and steps; K=64 runs {speedup:.2}x faster",
        base.delivered
    );
}
