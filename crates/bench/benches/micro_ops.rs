//! Ablation **A6** — Criterion micro-benchmarks of the primitives whose
//! costs the simulator's [`CostModel`] abstracts: buffer push/pop, union
//! merge steps, join probes, expression evaluation, and the end-to-end
//! executor cycle including on-demand ETS generation.

use std::cell::RefCell;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use millstream_buffer::Buffer;
use millstream_exec::{CostModel, EtsPolicy, Executor, GraphBuilder, Input, VirtualClock};
use millstream_ops::{
    AggExpr, AggFunc, Filter, JoinSpec, OpContext, Operator, Reorder, Sink, SlidingAggregate,
    Union, VecCollector, WindowJoin,
};
use millstream_types::{
    DataType, Expr, Field, Schema, TimeDelta, Timestamp, TimestampKind, Tuple, Value,
};

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

fn data(ts: u64, v: i64) -> Tuple {
    Tuple::data(Timestamp::from_micros(ts), vec![Value::Int(v)])
}

fn bench_buffer(c: &mut Criterion) {
    c.bench_function("buffer/push_pop", |b| {
        let mut buf = Buffer::new("bench");
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            buf.push(data(ts, ts as i64)).unwrap();
            std::hint::black_box(buf.pop());
        });
    });
}

fn bench_expr(c: &mut Criterion) {
    let expr = Expr::col(0)
        .mul(Expr::lit(3))
        .add(Expr::lit(7))
        .gt(Expr::lit(100));
    let row = vec![Value::Int(42)];
    c.bench_function("expr/eval_predicate", |b| {
        b.iter(|| std::hint::black_box(expr.eval_predicate(&row).unwrap()));
    });
}

fn bench_union_step(c: &mut Criterion) {
    c.bench_function("union/merge_1k", |b| {
        b.iter_batched(
            || {
                let a = RefCell::new(Buffer::new("a"));
                let bb = RefCell::new(Buffer::new("b"));
                let out = RefCell::new(Buffer::new("out"));
                for i in 0..500u64 {
                    a.borrow_mut().push(data(2 * i, i as i64)).unwrap();
                    bb.borrow_mut().push(data(2 * i + 1, i as i64)).unwrap();
                }
                (a, bb, out, Union::new("∪", schema(), 2))
            },
            |(a, bb, out, mut u)| {
                let inputs = [&a, &bb];
                let outputs = [&out];
                let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
                while u.poll(&ctx).is_ready() {
                    u.step(&ctx).unwrap();
                }
                std::hint::black_box(out.borrow().len());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_join_probe(c: &mut Criterion) {
    c.bench_function("join/probe_window_64", |b| {
        b.iter_batched(
            || {
                let a = RefCell::new(Buffer::new("a"));
                let bb = RefCell::new(Buffer::new("b"));
                let out = RefCell::new(Buffer::new("out"));
                let mut j = WindowJoin::new(
                    "⋈",
                    schema().join(&schema(), "a", "b"),
                    JoinSpec::symmetric(TimeDelta::from_secs(10)).with_key(0, 0),
                );
                // Preload W(B) with 64 tuples by running them through.
                {
                    let inputs = [&a, &bb];
                    let outputs = [&out];
                    let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
                    for i in 0..64u64 {
                        ctx.input_mut(1).push(data(i, (i % 8) as i64)).unwrap();
                    }
                    ctx.input_mut(0)
                        .push(Tuple::punctuation(Timestamp::from_micros(100)))
                        .unwrap();
                    while j.poll(&ctx).is_ready() {
                        j.step(&ctx).unwrap();
                    }
                    out.borrow_mut().clear();
                }
                // One probe tuple on A.
                a.borrow_mut().push(data(101, 3)).unwrap();
                bb.borrow_mut()
                    .push(Tuple::punctuation(Timestamp::from_micros(200)))
                    .unwrap();
                (a, bb, out, j)
            },
            |(a, bb, out, mut j)| {
                let inputs = [&a, &bb];
                let outputs = [&out];
                let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
                while j.poll(&ctx).is_ready() {
                    j.step(&ctx).unwrap();
                }
                std::hint::black_box(out.borrow().len());
            },
            BatchSize::SmallInput,
        );
    });
}

/// Fig. 4 graph + one tuple wave including the on-demand ETS round — the
/// real-world cost of what the simulator charges as a handful of steps.
fn bench_executor_wave(c: &mut Criterion) {
    c.bench_function("executor/fig4_wave_with_ets", |b| {
        b.iter_batched(
            || {
                let mut gb = GraphBuilder::new();
                let s1 = gb.source("S1", schema(), TimestampKind::Internal);
                let s2 = gb.source("S2", schema(), TimestampKind::Internal);
                let pass = Expr::col(0).ge(Expr::lit(0));
                let f1 = gb
                    .operator(
                        Box::new(Filter::new("σ1", schema(), pass.clone())),
                        vec![Input::Source(s1)],
                    )
                    .unwrap();
                let f2 = gb
                    .operator(
                        Box::new(Filter::new("σ2", schema(), pass)),
                        vec![Input::Source(s2)],
                    )
                    .unwrap();
                let u = gb
                    .operator(
                        Box::new(Union::new("∪", schema(), 2)),
                        vec![Input::Op(f1), Input::Op(f2)],
                    )
                    .unwrap();
                let _k = gb
                    .operator(
                        Box::new(Sink::new("sink", schema(), VecCollector::default())),
                        vec![Input::Op(u)],
                    )
                    .unwrap();
                let exec = Executor::new(
                    gb.build().unwrap(),
                    VirtualClock::shared(),
                    CostModel::free(),
                    EtsPolicy::on_demand(),
                );
                (exec, s1)
            },
            |(mut exec, s1)| {
                exec.clock().advance(TimeDelta::from_micros(10));
                exec.ingest(s1, data(exec.clock().now().as_micros(), 1))
                    .unwrap();
                exec.run_until_quiescent(1_000).unwrap();
                std::hint::black_box(exec.stats().steps);
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_reorder(c: &mut Criterion) {
    use millstream_buffer::OrderPolicy;
    c.bench_function("reorder/jittered_512", |b| {
        b.iter_batched(
            || {
                let input = RefCell::new(Buffer::new("in").with_order_policy(OrderPolicy::Accept));
                let out = RefCell::new(Buffer::new("out"));
                // Deterministic jitter pattern within a 64 µs bound.
                for i in 0..512u64 {
                    let jitter = (i * 37) % 64;
                    let ts = 100 * i + jitter;
                    input.borrow_mut().push(data(ts, i as i64)).unwrap();
                }
                let r = Reorder::new("↻", schema(), TimeDelta::from_micros(64));
                (input, out, r)
            },
            |(input, out, mut r)| {
                let inputs = [&input];
                let outputs = [&out];
                let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
                while r.poll(&ctx).is_ready() {
                    r.step(&ctx).unwrap();
                }
                std::hint::black_box(out.borrow().len());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_sliding_aggregate(c: &mut Criterion) {
    c.bench_function("sliding/panes_1k_tuples", |b| {
        b.iter_batched(
            || {
                let input = RefCell::new(Buffer::new("in"));
                let out = RefCell::new(Buffer::new("out"));
                for i in 0..1_000u64 {
                    input
                        .borrow_mut()
                        .push(data(10 * i, (i % 8) as i64))
                        .unwrap();
                }
                input
                    .borrow_mut()
                    .push(Tuple::punctuation(Timestamp::from_micros(100_000)))
                    .unwrap();
                let agg = SlidingAggregate::new(
                    "γs",
                    &schema(),
                    TimeDelta::from_micros(4_000),
                    TimeDelta::from_micros(1_000),
                    vec![("k".into(), millstream_types::Expr::col(0))],
                    vec![AggExpr {
                        func: AggFunc::Count,
                        arg: millstream_types::Expr::col(0),
                        name: "n".into(),
                    }],
                )
                .unwrap();
                (input, out, agg)
            },
            |(input, out, mut agg)| {
                let inputs = [&input];
                let outputs = [&out];
                let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
                while agg.poll(&ctx).is_ready() {
                    agg.step(&ctx).unwrap();
                }
                std::hint::black_box(out.borrow().len());
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_buffer, bench_expr, bench_union_step, bench_join_probe, bench_executor_wave, bench_reorder, bench_sliding_aggregate
);
criterion_main!(benches);
