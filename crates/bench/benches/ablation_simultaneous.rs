//! Ablation **A1** — TSM registers + relaxed `more` (paper §4.1, Figs. 5–6)
//! versus the naive Fig. 1 rules, on workloads with **simultaneous tuples**
//! (coarse timestamps).
//!
//! The §4.1 scenario: input B delivers one tuple at coarse timestamp τ and
//! goes quiet; more tuples *with the same timestamp τ* keep arriving on A.
//! Under the Fig. 1 rules the union refuses to run (B is empty), so the
//! late simultaneous tuples idle-wait until B's next timestamp — even
//! though emitting them is safe. TSM registers remember that B already
//! reached τ, and the relaxed `more` condition lets every τ-tuple through
//! immediately.
//!
//! The bench delivers the same phased interleaving to both union variants
//! and compares how many tuples each has emitted after every phase.

use std::cell::RefCell;

use millstream_bench::print_table;
use millstream_buffer::Buffer;
use millstream_ops::{OpContext, Operator, Poll, StepOutcome, Union};
use millstream_types::{DataType, Field, Result, Schema, Timestamp, Tuple, Value};

/// The paper's *original* Fig. 1 union: `more` requires tuples present on
/// **all** inputs; one tuple with minimal timestamp moves per step.
struct NaiveUnion {
    schema: Schema,
    inputs: usize,
}

impl Operator for NaiveUnion {
    fn name(&self) -> &str {
        "naive-∪"
    }

    fn is_iwp(&self) -> bool {
        true
    }

    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn output_schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, ctx: &OpContext<'_>) -> Poll {
        let empty: millstream_buffer::StarveList = (0..self.inputs)
            .filter(|&i| ctx.input(i).is_empty())
            .collect();
        if empty.is_empty() {
            Poll::Ready
        } else {
            Poll::Starved { starving: empty }
        }
    }

    fn step(&mut self, ctx: &OpContext<'_>) -> Result<StepOutcome> {
        // Simultaneous tuples may be processed in either order (paper §2);
        // this variant breaks ties toward the *later* input — the order
        // that exposes the Fig. 1 stranding problem ("either A or B will
        // be emptied first and the other will be left holding one or more
        // simultaneous tuples").
        let mut best: Option<(usize, Timestamp)> = None;
        for i in 0..self.inputs {
            match ctx.input(i).front_ts() {
                Some(ts) => {
                    if best.is_none_or(|(_, b)| ts <= b) {
                        best = Some((i, ts));
                    }
                }
                None => return Ok(StepOutcome::default()),
            }
        }
        let Some((i, _)) = best else {
            return Ok(StepOutcome::default());
        };
        let t = ctx.input_mut(i).pop().expect("head");
        ctx.output_mut(0).push(t)?;
        Ok(StepOutcome::consumed_one(1))
    }
}

/// One delivery phase: tuples appended to inputs A and B.
type Phase = (Vec<Tuple>, Vec<Tuple>);

/// Builds the §4.1 workload: per round, phase 1 delivers `burst` A-tuples
/// and one B-tuple at the round's coarse timestamp; phase 2 delivers
/// `burst` *more* A-tuples at the **same** timestamp after B went quiet.
fn workload(rounds: u64, burst: u64) -> Vec<Phase> {
    let mut phases = Vec::new();
    for r in 0..rounds {
        let ts = Timestamp::from_millis(100 * (r + 1));
        let mk = |k: u64| Tuple::data(ts, vec![Value::Int((r * 100 + k) as i64)]);
        phases.push(((0..burst).map(mk).collect(), vec![mk(99)]));
        phases.push((((burst)..2 * burst).map(mk).collect(), vec![]));
    }
    phases
}

/// Drives an operator through the phases; returns cumulative emitted counts
/// after each phase plus the tuples left stranded at the end.
fn drive(op: &mut dyn Operator, phases: &[Phase]) -> (Vec<usize>, usize) {
    let ia = RefCell::new(Buffer::new("a"));
    let ib = RefCell::new(Buffer::new("b"));
    let out = RefCell::new(Buffer::new("out"));
    let mut emitted = 0usize;
    let mut curve = Vec::with_capacity(phases.len());
    {
        let inputs = [&ia, &ib];
        let outputs = [&out];
        let ctx = OpContext::new(&inputs, &outputs, Timestamp::ZERO);
        for (pa, pb) in phases {
            for t in pa {
                ctx.input_mut(0).push(t.clone()).unwrap();
            }
            for t in pb {
                ctx.input_mut(1).push(t.clone()).unwrap();
            }
            while op.poll(&ctx).is_ready() {
                op.step(&ctx).unwrap();
            }
            emitted += {
                let mut n = 0;
                while ctx.output_mut(0).pop().is_some() {
                    n += 1;
                }
                n
            };
            curve.push(emitted);
        }
    }
    let stranded = ia.borrow().len() + ib.borrow().len();
    (curve, stranded)
}

fn main() {
    println!("millstream ablation A1 — simultaneous tuples: TSM registers vs naive Fig. 1 rules");

    let mut rows = Vec::new();
    let mut final_lag = 0usize;
    for (rounds, burst) in [(10u64, 5u64), (50, 10), (200, 20)] {
        let phases = workload(rounds, burst);
        let total: usize = phases.iter().map(|(a, b)| a.len() + b.len()).sum();
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);

        let mut naive = NaiveUnion {
            schema: schema.clone(),
            inputs: 2,
        };
        let (naive_curve, naive_stranded) = drive(&mut naive, &phases);

        let mut tsm = Union::new("∪", schema, 2);
        let (tsm_curve, tsm_stranded) = drive(&mut tsm, &phases);

        // Lag: how many tuple-phases the naive union trails the TSM union.
        let lag: usize = naive_curve.iter().zip(&tsm_curve).map(|(n, t)| t - n).sum();
        final_lag = lag;
        rows.push(vec![
            format!("{total}"),
            format!("{} / {naive_stranded}", naive_curve.last().unwrap()),
            format!("{} / {tsm_stranded}", tsm_curve.last().unwrap()),
            lag.to_string(),
        ]);
        assert!(
            tsm_curve.iter().zip(&naive_curve).all(|(t, n)| t >= n),
            "TSM is never behind the naive rules"
        );
    }
    print_table(
        "emitted/stranded at end, and cumulative emission lag of the naive rules",
        &[
            "input tuples",
            "naive: emitted/stranded",
            "TSM: emitted/stranded",
            "naive lag (tuple·phases)",
        ],
        &rows,
    );

    assert!(
        final_lag > 2_000,
        "the naive rules must trail substantially on simultaneous workloads, lag {final_lag}"
    );
    println!(
        "\nshape checks passed: TSM + relaxed `more` eliminates simultaneous-tuple idle-waiting"
    );
}
