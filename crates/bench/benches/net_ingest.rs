//! **BENCH_net** — async sharded ingest soak: wire→sink latency under
//! concurrent-producer fan-in, and the batching win of the ingest pump.
//!
//! Spawns one producer connection per stream (1024 full, 256 `--quick`)
//! against a `Server` hosting an N-way UNION, with a live subscriber
//! draining the output. Every producer pipelines its tuples through the
//! real wire protocol (handshake, acks, close), so the run exercises the
//! poller pool, the per-shard ingest queues, the batched engine critical
//! sections and the shared-slab fan-out end to end — with strict
//! sentinels on.
//!
//! Correctness gate: the subscriber's output is byte-compared (as encoded
//! `Output` frames) against a serial in-process oracle that ingests the
//! identical tuples through a plain `Executor` one at a time. Any drop,
//! duplicate or reorder fails the run. The headline perf figure is
//! **frames per engine critical section** (`frames_in / ingest_sections`,
//! must be ≥ 8 at the measured cell) plus the wire→sink p50/p95/p99 the
//! server's latency recorder attributes outside the engine lock.
//!
//! Writes `BENCH_net.json` via `write_bench_summary` (stamps
//! `host_cores`).

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use millstream_bench::{print_table, quick_mode, write_bench_summary};
use millstream_buffer::CheckMode;
use millstream_exec::{CostModel, EtsPolicy, Executor, GraphBuilder, Input, VirtualClock};
use millstream_metrics::{Json, ToJson};
use millstream_net::{ClientConfig, Frame, Server, ServerConfig, StreamClient, Subscription};
use millstream_ops::{Sink, SinkCollector, Union};
use millstream_types::{
    DataType, Field, Schema, Timestamp, TimestampKind, Tuple, TupleBody, Value,
};

#[derive(Clone, Default)]
struct Cap(Arc<Mutex<Vec<Tuple>>>);

impl SinkCollector for Cap {
    fn deliver(&mut self, tuple: Tuple, _now: Timestamp) {
        self.0.lock().unwrap().push(tuple);
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// Globally distinct, per-producer strictly increasing timestamps:
/// producer `p` sends `ts(p, 0) < ts(p, 1) < …`, and no two producers
/// ever share a timestamp, so the UNION's ts-ordered output is a single
/// deterministic sequence.
fn ts(producers: usize, p: usize, i: usize) -> u64 {
    ((i * producers + p) as u64 + 1) * 10
}

fn tuple_at(us: u64) -> Tuple {
    Tuple::data(Timestamp::from_micros(us), vec![Value::Int(us as i64)])
}

/// The serial oracle: the same tuples through an in-process `Executor`,
/// one `{advance, ingest, run}` step per tuple, in global timestamp
/// order. Returns the delivered tuples.
fn oracle(producers: usize, per_producer: usize) -> Vec<Tuple> {
    let mut b = GraphBuilder::new();
    let sources: Vec<_> = (0..producers)
        .map(|p| b.source(format!("s{p}"), schema(), TimestampKind::Internal))
        .collect();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema(), producers)),
            sources.iter().map(|&s| Input::Source(s)).collect(),
        )
        .expect("union");
    let cap = Cap::default();
    b.operator(
        Box::new(Sink::new("sink", schema(), cap.clone())),
        vec![Input::Op(u)],
    )
    .expect("sink");
    let mut ex = Executor::new(
        b.build().expect("graph"),
        VirtualClock::shared(),
        CostModel::free(),
        EtsPolicy::None,
    );
    for i in 0..per_producer {
        for (p, &s) in sources.iter().enumerate() {
            let t = ts(producers, p, i);
            ex.clock().advance_to(Timestamp::from_micros(t));
            ex.ingest(s, tuple_at(t)).expect("oracle ingest");
            ex.run_until_quiescent(u64::MAX).expect("oracle run");
        }
    }
    for &s in &sources {
        ex.close_source(s).expect("oracle close");
    }
    ex.run_until_quiescent(u64::MAX).expect("oracle drain");
    let got = cap.0.lock().unwrap().clone();
    got
}

/// Encodes a delivered sequence exactly as the server's fan-out slab
/// encoder does, for the byte-for-byte comparison.
fn wire_bytes(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tuples {
        out.extend_from_slice(
            &Frame::Output { tuple: t.clone() }
                .encode()
                .expect("encode output"),
        );
    }
    out
}

fn program(producers: usize) -> String {
    let mut p = String::new();
    for i in 0..producers {
        p.push_str(&format!("CREATE STREAM s{i} (v INT);\n"));
    }
    let selects: Vec<String> = (0..producers)
        .map(|i| format!("SELECT v FROM s{i}"))
        .collect();
    p.push_str(&selects.join(" UNION "));
    p.push(';');
    p
}

fn main() {
    let quick = quick_mode();
    let producers: usize = if quick { 256 } else { 1024 };
    let per_producer: usize = if quick { 24 } else { 32 };
    let total = producers * per_producer;

    let mut cfg = ServerConfig::new(program(producers));
    cfg.check = Some(CheckMode::Strict);
    cfg.io_threads = 4;
    cfg.ingest_shards = 8;
    cfg.workers = 2;
    // The byte-compare needs zero shedding: queue every output.
    cfg.subscriber_queue = total + 64;
    // Pacing would throttle the flood nondeterministically; the feedback
    // path has its own soak (crates/net/tests/feedback.rs).
    cfg.feedback = None;
    let io_threads = cfg.io_threads;
    let ingest_shards = cfg.ingest_shards;
    let server = Server::start(cfg).expect("server");
    let addr = server.addr();

    // Subscriber drains concurrently until the final ETS mark.
    let sub_thread = std::thread::spawn(move || {
        let mut sub = Subscription::connect(&addr.to_string()).expect("subscribe");
        let mut got = Vec::new();
        while let Some(t) = sub.next(Duration::from_secs(120)).expect("subscription") {
            if matches!(t.body, TupleBody::Data(_)) {
                got.push(t);
            }
        }
        assert_eq!(sub.dropped(), 0, "undeclared-drop-free by construction");
        got
    });

    let started = Instant::now();
    let gate = Arc::new(Barrier::new(producers));
    let senders: Vec<_> = (0..producers)
        .map(|p| {
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .stack_size(128 * 1024)
                .spawn(move || {
                    let mut cc = ClientConfig::new(addr.to_string(), format!("s{p}"));
                    // A small ack window keeps every producer advancing in
                    // lockstep with the pump: an unbounded pipeline would
                    // land each connection's whole stream as one burst, so
                    // the UNION frontier (min over all sources) could only
                    // move once the *last* port drained — collapsing every
                    // delivery into the final engine section.
                    cc.ack_window = 8;
                    let mut c = StreamClient::connect(cc).expect("producer connect");
                    gate.wait();
                    for i in 0..per_producer {
                        let t = ts(producers, p, i);
                        c.send(tuple_at(t)).expect("send");
                        // Periodic progress marks so the UNION frontier
                        // advances (and output flows) *during* the flood
                        // instead of only at the close wave.
                        if (i + 1) % 8 == 0 {
                            c.heartbeat(Timestamp::from_micros(t)).expect("heartbeat");
                        }
                    }
                    c.close().expect("close")
                })
                .expect("spawn producer")
        })
        .collect();
    let mut sent = 0u64;
    let mut acked = 0u64;
    for h in senders {
        let r = h.join().expect("producer thread");
        sent += r.sent;
        acked += r.acked;
        assert_eq!(r.reconnects, 0, "no link chaos in this soak");
    }
    assert_eq!(acked, sent, "every frame acked");
    let report = server.shutdown().expect("shutdown");
    let wall = started.elapsed();
    let delivered = sub_thread.join().expect("subscriber thread");

    // Correctness: byte-identical to the serial oracle, zero drops.
    assert_eq!(delivered.len(), total, "every tuple delivered exactly once");
    let expect = oracle(producers, per_producer);
    assert_eq!(expect.len(), total);
    assert!(
        wire_bytes(&delivered) == wire_bytes(&expect),
        "wire output diverged from the serial oracle"
    );
    assert_eq!(report.stats.tuples_ingested as usize, total);
    assert_eq!(report.stats.duplicates_dropped, 0);
    assert_eq!(report.stats.rejected_tuples, 0);
    assert_eq!(report.stats.sub_shed, 0);
    assert_eq!(report.stats.subscriber_overflows, 0);
    assert_eq!(report.wire_sentinel_violations, 0);
    assert_eq!(report.latency_lock_violations, 0);

    // The batching win: frames per engine critical section.
    let sections = report.stats.ingest_sections.max(1);
    let frames_per_section = report.stats.frames_in as f64 / sections as f64;
    assert!(
        frames_per_section >= 8.0,
        "ingest batching collapsed: {:.2} frames/section ({} frames, {} sections)",
        frames_per_section,
        report.stats.frames_in,
        sections
    );

    let lat = &report.latency;
    print_table(
        &format!(
            "BENCH_net — {} producers × {} tuples ({})",
            producers,
            per_producer,
            if quick { "quick" } else { "full" }
        ),
        &[
            "frames",
            "sections",
            "frames/section",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "wall s",
        ],
        &[vec![
            report.stats.frames_in.to_string(),
            report.stats.ingest_sections.to_string(),
            format!("{frames_per_section:.1}"),
            format!("{:.3}", lat.p50_ms),
            format!("{:.3}", lat.p95_ms),
            format!("{:.3}", lat.p99_ms),
            format!("{:.2}", wall.as_secs_f64()),
        ]],
    );

    write_bench_summary(
        "net",
        Json::obj([
            ("mode", Json::str(if quick { "quick" } else { "full" })),
            ("producers", Json::Num(producers as f64)),
            ("tuples_per_producer", Json::Num(per_producer as f64)),
            ("io_threads", Json::Num(io_threads as f64)),
            ("ingest_shards", Json::Num(ingest_shards as f64)),
            ("frames_in", Json::Num(report.stats.frames_in as f64)),
            (
                "ingest_sections",
                Json::Num(report.stats.ingest_sections as f64),
            ),
            ("frames_per_section", Json::Num(frames_per_section)),
            ("delivered", Json::Num(report.stats.delivered as f64)),
            ("p50_ms", Json::Num(lat.p50_ms)),
            ("p95_ms", Json::Num(lat.p95_ms)),
            ("p99_ms", Json::Num(lat.p99_ms)),
            ("latency", lat.to_json()),
            ("oracle_match", Json::Bool(true)),
            ("wall_seconds", Json::Num(wall.as_secs_f64())),
        ]),
    );
}
