//! Ablation **A2** — punctuation coalescing in buffers.
//!
//! Figure 8(b) shows periodic punctuation at high rates inflating peak
//! memory: punctuation piles up in queues while the CPU is busy with data
//! bursts. Coalescing (a punctuation pushed onto a punctuation tail
//! replaces it) bounds each buffer to at most one trailing punctuation.
//! This bench measures the peak queue size and punctuation traffic with the
//! optimization on and off, across heartbeat rates, on bursty traffic.

use millstream_bench::{print_table, quick_mode, write_bench_summary, write_results};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

/// Simulated duration: `--quick` shrinks the run 5× for CI-bounded sweeps.
fn duration() -> TimeDelta {
    if quick_mode() {
        TimeDelta::from_secs(60)
    } else {
        TimeDelta::from_secs(300)
    }
}

fn run(rate_hz: f64, coalesce: bool) -> (usize, u64) {
    let cfg = UnionExperiment {
        strategy: Strategy::Periodic { rate_hz },
        duration: duration(),
        seed: 71,
        fast_mean_burst: 64.0,
        coalesce_punctuation: coalesce,
        ..UnionExperiment::default()
    };
    let r = run_union_experiment(&cfg).expect("experiment runs");
    (r.metrics.peak_queue_tuples, r.metrics.punctuation_enqueued)
}

fn main() {
    println!(
        "millstream ablation A2 — punctuation coalescing (bursty traffic, mean burst 64){}",
        if quick_mode() { " (quick mode)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut improvements = Vec::new();
    for &rate in &[100.0, 500.0, 1_000.0, 2_000.0, 5_000.0] {
        let (peak_off, punct_off) = run(rate, false);
        let (peak_on, punct_on) = run(rate, true);
        improvements.push((rate, peak_off, peak_on));
        rows.push(vec![
            format!("{rate}"),
            peak_off.to_string(),
            peak_on.to_string(),
            punct_off.to_string(),
            punct_on.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("punct_rate_hz", Json::Num(rate)),
            ("peak_queue_off", Json::Num(peak_off as f64)),
            ("peak_queue_on", Json::Num(peak_on as f64)),
            ("punct_enqueued_off", Json::Num(punct_off as f64)),
            ("punct_enqueued_on", Json::Num(punct_on as f64)),
        ]));
    }
    print_table(
        "peak queue (tuples) and punctuation enqueued, coalescing off vs on",
        &[
            "punct/s",
            "peak off",
            "peak on",
            "punct enq. off",
            "punct enq. on",
        ],
        &rows,
    );

    let summary = Json::obj([
        ("duration_secs", Json::Num(duration().as_secs_f64())),
        ("quick", Json::Bool(quick_mode())),
        ("rows", Json::Arr(json_rows)),
    ]);
    write_results("ablation_coalescing", summary.clone());
    write_bench_summary("ablation_coalescing", summary);

    let &(rate, off, on) = improvements.last().expect("rows");
    assert!(
        on <= off,
        "coalescing must not increase the peak (rate {rate}: {off} -> {on})"
    );
    let improved = improvements.iter().any(|&(_, off, on)| off > on + on / 4);
    assert!(
        improved,
        "at some high rate coalescing must visibly cut the peak: {improvements:?}"
    );
    println!("\nshape checks passed: coalescing bounds high-rate punctuation memory");
}
