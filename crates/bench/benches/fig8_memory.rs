//! Reproduces **Figure 8** of the paper: peak total queue size (tuples
//! across all buffers) under the 50 / 0.05 tuples-per-second workload.
//!
//! Expected shape:
//! * **Fig. 8(a)** — A (no ETS) peaks at thousands of tuples (the whole
//!   inter-arrival backlog of the slow stream); C (on-demand) is more than
//!   two orders of magnitude lower.
//! * **Fig. 8(b)** — B (periodic) first falls as the punctuation rate grows
//!   (less idle-waiting) and then **rises again**: punctuation produced at
//!   high rates occupies queue memory while the CPU is busy with bursts of
//!   data tuples. We drive the burst regime with a compound-Poisson fast
//!   stream (mean burst 64) exactly as the paper's explanation requires.

use millstream_bench::{print_table, write_results, PERIODIC_RATES};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn peak(strategy: Strategy, mean_burst: f64) -> usize {
    let seeds = [5u64, 17, 31];
    let mut worst = 0usize;
    for &seed in &seeds {
        let cfg = UnionExperiment {
            strategy,
            duration: TimeDelta::from_secs(400),
            seed,
            fast_mean_burst: mean_burst,
            ..UnionExperiment::default()
        };
        let r = run_union_experiment(&cfg).expect("experiment runs");
        worst = worst.max(r.metrics.peak_queue_tuples);
    }
    worst
}

fn main() {
    println!("millstream reproduction of Fig. 8 — peak total queue size (tuples)");
    println!("workload: 50/s + 0.05/s, selectivity 0.95, 400 s virtual time, worst of 3 seeds");

    // Fig. 8(a): plain Poisson traffic.
    let a_plain = peak(Strategy::NoEts, 1.0);
    let c_plain = peak(Strategy::OnDemand, 1.0);
    let d_plain = peak(Strategy::Latent, 1.0);
    let mut rows = Vec::new();
    for &rate in &PERIODIC_RATES {
        let b = peak(Strategy::Periodic { rate_hz: rate }, 1.0);
        rows.push(vec![
            format!("{rate}"),
            a_plain.to_string(),
            b.to_string(),
            c_plain.to_string(),
            d_plain.to_string(),
        ]);
    }
    print_table(
        "Fig. 8(a) — peak total queue size (tuples), Poisson traffic",
        &[
            "punct/s",
            "A no-ETS",
            "B periodic",
            "C on-demand",
            "D latent",
        ],
        &rows,
    );

    // Fig. 8(b): bursty fast stream, extended rate sweep to expose the
    // U-shape of line B.
    const BURST: f64 = 64.0;
    let a_burst = peak(Strategy::NoEts, BURST);
    let c_burst = peak(Strategy::OnDemand, BURST);
    let mut rows = Vec::new();
    let mut b_series = Vec::new();
    for &rate in &[1.0, 10.0, 100.0, 500.0, 1_000.0, 2_000.0, 5_000.0] {
        let b = peak(Strategy::Periodic { rate_hz: rate }, BURST);
        b_series.push((rate, b));
        rows.push(vec![
            format!("{rate}"),
            a_burst.to_string(),
            b.to_string(),
            c_burst.to_string(),
        ]);
    }
    print_table(
        "Fig. 8(b) — peak total queue size (tuples), bursty traffic (mean burst 64)",
        &["punct/s", "A no-ETS", "B periodic", "C on-demand"],
        &rows,
    );

    // Shape checks.
    assert!(
        a_plain > 500,
        "line A must queue the slow-stream backlog, got {a_plain}"
    );
    assert!(
        a_plain / c_plain.max(1) >= 20,
        "C must be well over an order of magnitude below A ({a_plain} vs {c_plain})"
    );
    let b_best = b_series.iter().map(|&(_, b)| b).min().unwrap();
    let b_last = b_series.last().unwrap().1;
    assert!(
        b_last > b_best,
        "B must rise again at high punctuation rates (best {b_best}, at max rate {b_last})"
    );
    write_results(
        "fig8_memory",
        Json::obj([
            ("a_poisson_peak", Json::Num(a_plain as f64)),
            ("c_poisson_peak", Json::Num(c_plain as f64)),
            ("d_poisson_peak", Json::Num(d_plain as f64)),
            ("a_bursty_peak", Json::Num(a_burst as f64)),
            ("c_bursty_peak", Json::Num(c_burst as f64)),
            (
                "b_bursty",
                Json::Arr(
                    b_series
                        .iter()
                        .map(|&(rate, peak)| {
                            Json::obj([
                                ("rate_hz", Json::Num(rate)),
                                ("peak_tuples", Json::Num(peak as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    println!("\nshape checks passed: A high; C ≪ A; B falls then rises under bursts");
}
