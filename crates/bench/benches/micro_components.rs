//! Micro-benchmark — parallel multi-component execution (`ParallelExecutor`).
//!
//! ETS backtracking never crosses a connected-component boundary, so a
//! plan with N independent components is embarrassingly parallel: each
//! component can run its own single-threaded depth-first executor on its
//! own worker. This harness replicates the paper's filter→union shape
//! into 1→N identical components and measures aggregate tuple throughput,
//! serial (one executor owning the whole graph) vs. parallel (one worker
//! thread per component).
//!
//! Methodology: the whole wave cycle — ingest plus drain-to-quiescence —
//! is timed, because the parallel path pays its channel-send cost on
//! ingest; timing only the drain would flatter it. Configurations are
//! sampled in alternating rounds and the per-configuration minimum is
//! reported, as in `micro_batching`.
//!
//! Shape checks: serial and parallel must deliver identical tuple counts
//! at every N. The ≥2× speedup criterion at N = 4 is asserted only when
//! the host actually has ≥4 cores — on fewer cores real threads cannot
//! speed anything up and the honest (likely <1×) number is recorded
//! instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use millstream_bench::{print_table, quick_mode, write_bench_summary, write_results};
use millstream_core::prelude::*;
use millstream_exec::{ParallelConfig, ParallelExecutor};
use millstream_metrics::Json;

/// Counts deliveries without storing tuples (keeps the sink cost flat).
#[derive(Clone, Default)]
struct Count(Arc<AtomicU64>);

impl SinkCollector for Count {
    fn deliver(&mut self, _tuple: Tuple, _now: Timestamp) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

const WAVES: u64 = 32;
const WAVE_TUPLES: u64 = 512; // per source, per wave
const ROUNDS: usize = 5;

/// Waves per run: `--quick` shrinks the run 4× for CI-bounded sweeps.
fn waves() -> u64 {
    if quick_mode() {
        WAVES / 4
    } else {
        WAVES
    }
}

fn rounds() -> usize {
    if quick_mode() {
        2
    } else {
        ROUNDS
    }
}

/// Builds `n` disjoint copies of the Fig. 4 shape: two sources → one
/// selective filter each → union → counting sink. Returns the graph, the
/// source pairs per component and the shared delivery counter.
fn build(n: usize) -> (QueryGraph, Vec<(SourceId, SourceId)>, Count) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let out = Count::default();
    let mut b = GraphBuilder::new();
    let mut sources = Vec::new();
    for c in 0..n {
        let s1 = b.source(format!("S{c}a"), schema.clone(), TimestampKind::Internal);
        let s2 = b.source(format!("S{c}b"), schema.clone(), TimestampKind::Internal);
        let pred = Expr::col(0).ge(Expr::lit(0));
        let f1 = b
            .operator(
                Box::new(Filter::new(format!("σ{c}a"), schema.clone(), pred.clone())),
                vec![Input::Source(s1)],
            )
            .unwrap();
        let f2 = b
            .operator(
                Box::new(Filter::new(format!("σ{c}b"), schema.clone(), pred)),
                vec![Input::Source(s2)],
            )
            .unwrap();
        let u = b
            .operator(
                Box::new(Union::new(format!("∪{c}"), schema.clone(), 2)),
                vec![Input::Op(f1), Input::Op(f2)],
            )
            .unwrap();
        b.operator(
            Box::new(Sink::new(format!("sink{c}"), schema.clone(), out.clone())),
            vec![Input::Op(u)],
        )
        .unwrap();
        sources.push((s1, s2));
    }
    (b.build().unwrap(), sources, out)
}

/// One tuple per (wave, index): a 1-in-32 pass rate, monotone timestamps.
fn tuple_at(n: u64, pass: &Tuple, fail: &Tuple) -> Tuple {
    let ts = Timestamp::from_millis(n);
    let mut t = if n.is_multiple_of(32) {
        pass.clone()
    } else {
        fail.clone()
    };
    t.ts = ts;
    t.entry = ts;
    t
}

struct RunResult {
    tuples: u64,
    delivered: u64,
    secs: f64,
}

fn run_serial(n: usize) -> RunResult {
    let (graph, sources, out) = build(n);
    let mut exec = Executor::new(
        graph,
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::None,
    );
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let started = Instant::now();
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let t = tuple_at(w * WAVE_TUPLES + i, &pass, &fail);
            for &(s1, s2) in &sources {
                exec.ingest(s1, t.clone()).unwrap();
                exec.ingest(s2, t.clone()).unwrap();
                ingested += 2;
            }
        }
        exec.run_until_quiescent(100_000_000).unwrap();
    }
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs: started.elapsed().as_secs_f64(),
    }
}

fn run_parallel(n: usize, workers: usize) -> RunResult {
    let (graph, sources, out) = build(n);
    let pex = ParallelExecutor::new(
        graph,
        ParallelConfig::new(CostModel::default(), EtsPolicy::None, workers),
    );
    assert_eq!(pex.num_components(), n, "each copy must be one component");
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let started = Instant::now();
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let t = tuple_at(w * WAVE_TUPLES + i, &pass, &fail);
            for &(s1, s2) in &sources {
                pex.ingest(s1, t.clone()).unwrap();
                pex.ingest(s2, t.clone()).unwrap();
                ingested += 2;
            }
        }
        pex.run_until_quiescent(100_000_000).unwrap();
    }
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("millstream micro-benchmark — parallel multi-component execution (ParallelExecutor)");
    println!(
        "N disjoint filter→union components, {} tuples per component per run, best of {} interleaved rounds, {cores} core(s){}\n",
        2 * waves() * WAVE_TUPLES,
        rounds(),
        if quick_mode() { " (quick mode)" } else { "" }
    );

    // Warm up the allocator, caches and thread spawning before timing.
    let _ = run_serial(1);
    let _ = run_parallel(1, 1);

    let ns = [1usize, 2, 4];
    let mut serial: Vec<RunResult> = ns.iter().map(|&n| run_serial(n)).collect();
    let mut parallel: Vec<RunResult> = ns.iter().map(|&n| run_parallel(n, n)).collect();
    for _ in 1..rounds() {
        for (i, &n) in ns.iter().enumerate() {
            let s = run_serial(n);
            if s.secs < serial[i].secs {
                serial[i] = s;
            }
            let p = run_parallel(n, n);
            if p.secs < parallel[i].secs {
                parallel[i] = p;
            }
        }
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let (s, p) = (&serial[i], &parallel[i]);
        assert_eq!(
            s.delivered, p.delivered,
            "serial and parallel must deliver identical output at N={n}"
        );
        let s_tps = s.tuples as f64 / s.secs;
        let p_tps = p.tuples as f64 / p.secs;
        let speedup = s.secs / p.secs;
        rows.push(vec![
            format!("N={n}"),
            format!("{:.2}", s.secs * 1e3),
            format!("{:.2}M", s_tps / 1e6),
            format!("{:.2}", p.secs * 1e3),
            format!("{:.2}M", p_tps / 1e6),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(Json::obj([
            ("components", Json::Num(n as f64)),
            ("workers", Json::Num(n as f64)),
            ("serial_tuples_per_sec", Json::Num(s_tps)),
            ("parallel_tuples_per_sec", Json::Num(p_tps)),
            ("parallel_speedup", Json::Num(speedup)),
            ("delivered", Json::Num(s.delivered as f64)),
        ]));
    }
    print_table(
        "aggregate tuple throughput, serial vs one worker per component",
        &[
            "components",
            "serial ms",
            "serial t/s",
            "parallel ms",
            "parallel t/s",
            "speedup",
        ],
        &rows,
    );

    let summary = Json::obj([
        (
            "tuples_per_component",
            Json::Num((2 * waves() * WAVE_TUPLES) as f64),
        ),
        ("host_cores", Json::Num(cores as f64)),
        ("quick", Json::Bool(quick_mode())),
        ("speedup_assert_enforced", Json::Bool(cores >= 4)),
        ("rows", Json::Arr(json_rows)),
    ]);
    write_results("micro_components", summary.clone());
    write_bench_summary("components", summary);

    let speedup4 = serial[2].secs / parallel[2].secs;
    if cores >= 4 {
        assert!(
            speedup4 >= 2.0,
            "4 components on 4 workers must at least double aggregate throughput, got {speedup4:.2}x"
        );
        println!("\nshape checks passed: identical output at every N; N=4 runs {speedup4:.2}x faster in parallel");
    } else {
        println!(
            "\nshape checks passed: identical output at every N; N=4 parallel speedup {speedup4:.2}x recorded without asserting (criterion needs ≥4 cores, host has {cores})"
        );
    }
}
