//! Micro-benchmark — parallel execution, across components and within one.
//!
//! Two parallelism axes are measured against the same serial baseline:
//!
//! * **`ParallelExecutor`** (inter-component): ETS backtracking never
//!   crosses a connected-component boundary, so a plan with N independent
//!   components is embarrassingly parallel — one single-threaded
//!   depth-first executor per component. The harness replicates the
//!   paper's filter→union shape into 1→N identical components.
//! * **`ShardedExecutor`** (intra-component): a *single* component is
//!   key-partitioned across N shard workers behind exchange edges, with
//!   per-worker frontier summaries replacing the per-source ETS/TSM
//!   registers and a timestamp merge re-establishing one ordered output.
//!
//! Methodology: the whole wave cycle — ingest plus drain-to-quiescence —
//! is timed, because both parallel paths pay their channel-send cost on
//! ingest; timing only the drain would flatter them. Configurations are
//! sampled in alternating rounds and the per-configuration minimum is
//! reported, as in `micro_batching`.
//!
//! Honesty: every parallel row records its workers' **busy/idle split**
//! (wall-clock time inside command processing vs blocked on the channel)
//! and an explicit `insufficient_cores` marker whenever the row ran more
//! worker threads than the host has cores — on such hosts real threads
//! cannot speed anything up, so the ≥2× speedup criteria are *skipped*
//! (loudly, never silently un-enforced) and the honest sub-1× numbers are
//! recorded as-is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use millstream_bench::{print_table, quick_mode, write_bench_summary, write_results};
use millstream_core::prelude::*;
use millstream_exec::{ParallelConfig, ParallelExecutor, ShardedConfig, ShardedExecutor};
use millstream_metrics::Json;

/// Counts deliveries without storing tuples (keeps the sink cost flat).
#[derive(Clone, Default)]
struct Count(Arc<AtomicU64>);

impl SinkCollector for Count {
    fn deliver(&mut self, _tuple: Tuple, _now: Timestamp) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

const WAVES: u64 = 32;
const WAVE_TUPLES: u64 = 512; // per source, per wave
const ROUNDS: usize = 5;

/// Waves per run: `--quick` shrinks the run 4× for CI-bounded sweeps.
fn waves() -> u64 {
    if quick_mode() {
        WAVES / 4
    } else {
        WAVES
    }
}

fn rounds() -> usize {
    if quick_mode() {
        2
    } else {
        ROUNDS
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

/// Appends one copy of the Fig. 4 shape — two sources → one selective
/// filter each → union → sink delivering to `out` — and returns its
/// source pair.
fn append_copy<C: SinkCollector + 'static>(
    b: &mut GraphBuilder,
    c: usize,
    out: C,
) -> (SourceId, SourceId) {
    let schema = schema();
    let s1 = b.source(format!("S{c}a"), schema.clone(), TimestampKind::Internal);
    let s2 = b.source(format!("S{c}b"), schema.clone(), TimestampKind::Internal);
    let pred = Expr::col(0).ge(Expr::lit(0));
    let f1 = b
        .operator(
            Box::new(Filter::new(format!("σ{c}a"), schema.clone(), pred.clone())),
            vec![Input::Source(s1)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new(format!("σ{c}b"), schema.clone(), pred)),
            vec![Input::Source(s2)],
        )
        .unwrap();
    let u = b
        .operator(
            Box::new(Union::new(format!("∪{c}"), schema.clone(), 2)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    b.operator(
        Box::new(Sink::new(format!("sink{c}"), schema, out)),
        vec![Input::Op(u)],
    )
    .unwrap();
    (s1, s2)
}

/// Builds `n` disjoint copies of the Fig. 4 shape sharing one counting
/// sink. Returns the graph, the source pairs per component and the
/// counter.
fn build(n: usize) -> (QueryGraph, Vec<(SourceId, SourceId)>, Count) {
    let out = Count::default();
    let mut b = GraphBuilder::new();
    let sources = (0..n)
        .map(|c| append_copy(&mut b, c, out.clone()))
        .collect();
    (b.build().unwrap(), sources, out)
}

/// One tuple per (wave, index): a 1-in-32 pass rate, monotone timestamps.
fn tuple_at(n: u64, pass: &Tuple, fail: &Tuple) -> Tuple {
    let ts = Timestamp::from_millis(n);
    let mut t = if n.is_multiple_of(32) {
        pass.clone()
    } else {
        fail.clone()
    };
    t.ts = ts;
    t.entry = ts;
    t
}

struct RunResult {
    tuples: u64,
    delivered: u64,
    secs: f64,
    /// Per worker/shard thread: wall-clock seconds spent busy (command
    /// processing). Empty for the serial baseline, whose only "worker" is
    /// the benchmark thread itself.
    busy_secs: Vec<f64>,
}

fn run_serial(n: usize) -> RunResult {
    let (graph, sources, out) = build(n);
    let mut exec = Executor::new(
        graph,
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::None,
    );
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let started = Instant::now();
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let t = tuple_at(w * WAVE_TUPLES + i, &pass, &fail);
            for &(s1, s2) in &sources {
                exec.ingest(s1, t.clone()).unwrap();
                exec.ingest(s2, t.clone()).unwrap();
                ingested += 2;
            }
        }
        exec.run_until_quiescent(100_000_000).unwrap();
    }
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs: started.elapsed().as_secs_f64(),
        busy_secs: Vec::new(),
    }
}

fn run_parallel(n: usize, workers: usize) -> RunResult {
    let (graph, sources, out) = build(n);
    let pex = ParallelExecutor::new(
        graph,
        ParallelConfig::new(CostModel::default(), EtsPolicy::None, workers),
    );
    assert_eq!(pex.num_components(), n, "each copy must be one component");
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let started = Instant::now();
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let t = tuple_at(w * WAVE_TUPLES + i, &pass, &fail);
            for &(s1, s2) in &sources {
                pex.ingest(s1, t.clone()).unwrap();
                pex.ingest(s2, t.clone()).unwrap();
                ingested += 2;
            }
        }
        pex.run_until_quiescent(100_000_000).unwrap();
    }
    let secs = started.elapsed().as_secs_f64();
    let busy_secs = pex
        .snapshot()
        .unwrap()
        .worker_busy_nanos
        .iter()
        .map(|&n| n as f64 / 1e9)
        .collect();
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs,
        busy_secs,
    }
}

/// One component, key-partitioned across `shards` exchange-edge workers.
fn run_sharded(shards: usize) -> RunResult {
    let out = Count::default();
    let mut pair = None;
    let mut sx = ShardedExecutor::new(
        |replica, shard_out| {
            let mut b = GraphBuilder::new();
            let ids = append_copy(&mut b, 0, shard_out);
            if replica == 0 {
                pair = Some(ids);
            }
            b.build()
        },
        schema(),
        Box::new(out.clone()),
        ShardedConfig::new(CostModel::default(), EtsPolicy::None, shards),
    )
    .unwrap();
    let (s1, s2) = pair.expect("replica 0 built");
    let pass = Tuple::data(Timestamp::ZERO, vec![Value::Int(1)]);
    let fail = Tuple::data(Timestamp::ZERO, vec![Value::Int(-1)]);
    let mut ingested = 0u64;
    let started = Instant::now();
    for w in 0..waves() {
        for i in 0..WAVE_TUPLES {
            let t = tuple_at(w * WAVE_TUPLES + i, &pass, &fail);
            sx.ingest(s1, t.clone()).unwrap();
            sx.ingest(s2, t).unwrap();
            ingested += 2;
        }
        sx.run_until_quiescent(100_000_000).unwrap();
    }
    let secs = started.elapsed().as_secs_f64();
    let busy_secs = sx
        .snapshot()
        .unwrap()
        .busy_nanos
        .iter()
        .map(|&n| n as f64 / 1e9)
        .collect();
    RunResult {
        tuples: ingested,
        delivered: out.0.load(Ordering::Relaxed),
        secs,
        busy_secs,
    }
}

/// Keeps the better (faster) of two samples of the same configuration.
fn keep_min(best: &mut RunResult, sample: RunResult) {
    if sample.secs < best.secs {
        *best = sample;
    }
}

/// JSON row shared by both parallel axes: throughputs, speedup, the
/// workers' busy/idle split over the run, and the honesty marker.
#[allow(clippy::too_many_arguments)]
fn json_row(
    label: (&'static str, f64),
    workers: usize,
    cores: usize,
    s: &RunResult,
    p: &RunResult,
) -> Json {
    let busy: f64 = p.busy_secs.iter().sum();
    let wall = workers as f64 * p.secs;
    Json::obj([
        (label.0, Json::Num(label.1)),
        ("workers", Json::Num(workers as f64)),
        ("serial_tuples_per_sec", Json::Num(s.tuples as f64 / s.secs)),
        (
            "parallel_tuples_per_sec",
            Json::Num(p.tuples as f64 / p.secs),
        ),
        ("parallel_speedup", Json::Num(s.secs / p.secs)),
        ("delivered", Json::Num(s.delivered as f64)),
        ("worker_busy_secs", Json::Num(busy)),
        ("worker_idle_secs", Json::Num((wall - busy).max(0.0))),
        (
            "busy_fraction",
            Json::Num(if wall > 0.0 { busy / wall } else { 0.0 }),
        ),
        ("insufficient_cores", Json::Bool(workers > cores)),
    ])
}

fn table_row(
    name: String,
    s: &RunResult,
    p: &RunResult,
    workers: usize,
    cores: usize,
) -> Vec<String> {
    let busy: f64 = p.busy_secs.iter().sum();
    let wall = workers as f64 * p.secs;
    let marker = if workers > cores { " ⚠cores" } else { "" };
    vec![
        name,
        format!("{:.2}", s.secs * 1e3),
        format!("{:.2}M", s.tuples as f64 / s.secs / 1e6),
        format!("{:.2}", p.secs * 1e3),
        format!("{:.2}M", p.tuples as f64 / p.secs / 1e6),
        format!("{:.2}x", s.secs / p.secs),
        format!("{:.0}%{marker}", 100.0 * busy / wall.max(f64::MIN_POSITIVE)),
    ]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("millstream micro-benchmark — parallel execution across components (ParallelExecutor) and within one (ShardedExecutor)");
    println!(
        "filter→union shape, {} tuples per component per run, best of {} interleaved rounds, {cores} core(s){}\n",
        2 * waves() * WAVE_TUPLES,
        rounds(),
        if quick_mode() { " (quick mode)" } else { "" }
    );

    // Warm up the allocator, caches and thread spawning before timing.
    let _ = run_serial(1);
    let _ = run_parallel(1, 1);
    let _ = run_sharded(2);

    let ns = [1usize, 2, 4];
    let shard_ns = [1usize, 2, 4];
    let mut serial: Vec<RunResult> = ns.iter().map(|&n| run_serial(n)).collect();
    let mut parallel: Vec<RunResult> = ns.iter().map(|&n| run_parallel(n, n)).collect();
    let mut sharded: Vec<RunResult> = shard_ns.iter().map(|&n| run_sharded(n)).collect();
    for _ in 1..rounds() {
        for (i, &n) in ns.iter().enumerate() {
            keep_min(&mut serial[i], run_serial(n));
            keep_min(&mut parallel[i], run_parallel(n, n));
        }
        for (i, &n) in shard_ns.iter().enumerate() {
            keep_min(&mut sharded[i], run_sharded(n));
        }
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let (s, p) = (&serial[i], &parallel[i]);
        assert_eq!(
            s.delivered, p.delivered,
            "serial and parallel must deliver identical output at N={n}"
        );
        rows.push(table_row(format!("N={n} comps"), s, p, n, cores));
        json_rows.push(json_row(("components", n as f64), n, cores, s, p));
    }
    let mut shard_rows = Vec::new();
    let mut shard_json = Vec::new();
    for (i, &n) in shard_ns.iter().enumerate() {
        let (s, p) = (&serial[0], &sharded[i]);
        assert_eq!(
            s.delivered, p.delivered,
            "serial and sharded must deliver identical output at shards={n}"
        );
        shard_rows.push(table_row(format!("{n} shard(s)"), s, p, n, cores));
        shard_json.push(json_row(("shards", n as f64), n, cores, s, p));
    }
    print_table(
        "aggregate tuple throughput, serial vs one worker per component",
        &[
            "components",
            "serial ms",
            "serial t/s",
            "parallel ms",
            "parallel t/s",
            "speedup",
            "busy",
        ],
        &rows,
    );
    print_table(
        "single-component throughput, serial vs key-partitioned exchange shards",
        &[
            "exchange",
            "serial ms",
            "serial t/s",
            "sharded ms",
            "sharded t/s",
            "speedup",
            "busy",
        ],
        &shard_rows,
    );

    let summary = Json::obj([
        (
            "tuples_per_component",
            Json::Num((2 * waves() * WAVE_TUPLES) as f64),
        ),
        ("host_cores", Json::Num(cores as f64)),
        ("quick", Json::Bool(quick_mode())),
        ("speedup_assert_enforced", Json::Bool(cores >= 4)),
        ("insufficient_cores", Json::Bool(cores < 4)),
        ("rows", Json::Arr(json_rows)),
        ("sharded_rows", Json::Arr(shard_json)),
    ]);
    write_results("micro_components", summary.clone());
    write_bench_summary("components", summary);

    let speedup4 = serial[2].secs / parallel[2].secs;
    let shard_speedup4 = serial[0].secs / sharded[2].secs;
    if cores >= 4 {
        assert!(
            speedup4 >= 2.0,
            "4 components on 4 workers must at least double aggregate throughput, got {speedup4:.2}x"
        );
        assert!(
            shard_speedup4 >= 2.0,
            "4 exchange shards must at least double single-component throughput, got {shard_speedup4:.2}x"
        );
        println!(
            "\nshape checks passed: identical output everywhere; N=4 components {speedup4:.2}x, 4 shards {shard_speedup4:.2}x vs serial"
        );
    } else {
        println!(
            "\nshape checks passed: identical output everywhere; speedups recorded WITHOUT asserting \
             (insufficient_cores: criteria need ≥4 cores, host has {cores}) — \
             N=4 components {speedup4:.2}x, 4 shards {shard_speedup4:.2}x"
        );
    }
}
