//! Ablation **A8** — disordered external streams, the Reorder slack stage,
//! and the §5 skew bound.
//!
//! The fast stream's application timestamps are jittered by a uniform
//! random per-tuple delay (disorder bound = the jitter span). A `Reorder`
//! stage with configurable slack restores the ordering contract and the
//! on-demand ETS uses δ = jitter per §5's `t + τ − δ` rule. The sweep
//! shows the slack trade-off the flexible-time-management literature
//! describes: slack below the true disorder sheds tuples as too-late;
//! slack above it only adds latency.

use millstream_bench::{fmt_ms, print_table};
use millstream_sim::{run_disorder_experiment, DisorderExperiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn run(jitter_ms: u64, slack_ms: u64) -> (u64, f64, u64) {
    let cfg = DisorderExperiment {
        base: UnionExperiment {
            strategy: Strategy::OnDemand,
            duration: TimeDelta::from_secs(120),
            seed: 99,
            ..UnionExperiment::default()
        },
        jitter: TimeDelta::from_millis(jitter_ms),
        slack: TimeDelta::from_millis(slack_ms),
    };
    let r = run_disorder_experiment(&cfg).expect("experiment runs");
    (
        r.late_tuples,
        r.report.metrics.latency.mean_ms,
        r.report.metrics.delivered,
    )
}

fn main() {
    println!("millstream ablation A8 — disordered fast stream (uniform jitter 20 ms), Reorder slack sweep");
    println!("on-demand ETS with δ = jitter per §5; 120 s virtual time\n");

    const JITTER_MS: u64 = 20;
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &slack_ms in &[0u64, 2, 5, 10, 20, 25, 50, 200] {
        let (late, mean, delivered) = run(JITTER_MS, slack_ms);
        series.push((slack_ms, late, mean));
        rows.push(vec![
            format!("{slack_ms}"),
            late.to_string(),
            fmt_ms(mean),
            delivered.to_string(),
        ]);
    }
    print_table(
        "late-dropped tuples and mean latency by Reorder slack",
        &["slack (ms)", "late drops", "mean latency (ms)", "delivered"],
        &rows,
    );

    // Shape: late drops (nearly) vanish once slack ≥ jitter; latency grows
    // with slack beyond that point. A handful of drops remain even with
    // generous slack: the §5 formula `t + τ − δ` is stamped from the
    // DSMS-side clock, so an arrival racing the ETS inside one service
    // interval (µs) can still undercut it — the same boundary effect a
    // real wrapper has, and ≲0.1% of traffic here.
    let under = series
        .iter()
        .find(|&&(s, _, _)| s < JITTER_MS / 4)
        .expect("row");
    let covered: Vec<&(u64, u64, f64)> = series
        .iter()
        .filter(|&&(s, _, _)| s >= JITTER_MS + 5)
        .collect();
    assert!(
        under.1 > 50,
        "tight slack must shed tuples, got {}",
        under.1
    );
    assert!(
        covered.iter().all(|&&(_, late, _)| late <= 10),
        "slack ≥ jitter+ε sheds at most the ETS-race residue: {series:?}"
    );
    let lat_25 = covered.first().expect("row").2;
    let lat_200 = covered.last().expect("row").2;
    assert!(
        lat_200 > lat_25 * 2.0,
        "beyond the disorder bound, slack only buys latency ({lat_25} → {lat_200})"
    );
    println!("\nshape checks passed: slack < jitter sheds; slack > jitter only delays");
}
