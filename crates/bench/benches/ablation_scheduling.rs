//! Ablation **A9** — depth-first NOS scheduling vs. round-robin.
//!
//! The paper adopts depth-first scheduling "to expedite tuple progress
//! toward output" (§3.1). This bench quantifies that choice against the
//! simplest fair alternative — cycling over runnable operators one step at
//! a time — under increasing load. Depth-first walks each tuple to the
//! sink before touching the next, so inter-operator queues stay near
//! empty; round-robin drains level by level and lets tuples sit in the
//! middle of the pipeline, which shows up as a larger peak queue and a
//! higher latency tail as utilization grows.

use millstream_bench::{fmt_ms, print_table};
use millstream_exec::SchedPolicy;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn run(sched: SchedPolicy, fast_rate_hz: f64, burst: f64) -> (f64, f64, usize) {
    let cfg = UnionExperiment {
        strategy: Strategy::OnDemand,
        fast_rate_hz,
        fast_mean_burst: burst,
        duration: TimeDelta::from_secs(120),
        seed: 5,
        sched,
        ..UnionExperiment::default()
    };
    let r = run_union_experiment(&cfg).expect("experiment runs");
    (
        r.metrics.latency.mean_ms,
        r.metrics.latency.p99_ms,
        r.metrics.peak_queue_tuples,
    )
}

fn main() {
    println!("millstream ablation A9 — depth-first vs round-robin scheduling (on-demand ETS)");
    println!("120 s virtual time; load scaled via fast-stream rate and burstiness\n");

    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    for &(rate, burst, label) in &[
        (50.0, 1.0, "paper load (50/s)"),
        (500.0, 8.0, "10x, bursty"),
        (2_000.0, 64.0, "40x, heavy bursts"),
    ] {
        let (dfs_mean, dfs_p99, dfs_peak) = run(SchedPolicy::DepthFirst, rate, burst);
        let (rr_mean, rr_p99, rr_peak) = run(SchedPolicy::RoundRobin, rate, burst);
        worst_ratio = worst_ratio.max(rr_peak as f64 / dfs_peak.max(1) as f64);
        rows.push(vec![
            label.to_string(),
            fmt_ms(dfs_mean),
            fmt_ms(rr_mean),
            fmt_ms(dfs_p99),
            fmt_ms(rr_p99),
            dfs_peak.to_string(),
            rr_peak.to_string(),
        ]);
    }
    print_table(
        "depth-first (DFS) vs round-robin (RR)",
        &[
            "load",
            "mean DFS",
            "mean RR",
            "p99 DFS",
            "p99 RR",
            "peak q DFS",
            "peak q RR",
        ],
        &rows,
    );

    assert!(
        worst_ratio >= 1.0,
        "round-robin must not beat depth-first on peak queues, ratio {worst_ratio}"
    );
    println!(
        "\nshape checks passed: depth-first keeps queues at or below round-robin (worst RR/DFS peak ratio {worst_ratio:.1}x)"
    );
}
