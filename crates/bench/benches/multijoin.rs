//! **BENCH_multijoin** — N-ary window join probe cost and state retention.
//!
//! Sweeps the `MultiWindowJoin` over arity × window length × key skew and
//! contrasts the two state layouts the operator supports:
//!
//! * **keyed** — equi-keys installed via `with_keys`, so each probe walks
//!   only its hash bucket (`JoinState` key partition);
//! * **scan** — the same equality expressed as a residual condition, so
//!   each probe walks whole windows with per-depth conjunct pruning (the
//!   seed cross-product behaviour).
//!
//! Both layouts are driven through the public operator contract
//! (`poll`/`step` over `OpContext`, exactly as the executor does) on
//! identical input schedules, so their `matches` counters must agree —
//! the bench asserts that output equivalence on every cell. The paper's
//! Fig. 8 methodology carries over to state: punctuation is injected once
//! per window length and the lifetime `peak_state` high-water is checked
//! against the `arity × O(window)` bound the purge contract guarantees
//! (§11 of DESIGN.md), independent of run length.
//!
//! The headline acceptance number is the probe-work ratio at the largest
//! arity × window cell: keyed probing must examine ≥5× fewer candidate
//! tuples than the scan layout (in practice the ratio tracks the window
//! length, i.e. hundreds).

use std::cell::RefCell;
use std::time::Instant;

use millstream_bench::{print_table, quick_mode, write_bench_summary, write_results};
use millstream_buffer::Buffer;
use millstream_metrics::Json;
use millstream_ops::{MultiWindowJoin, OpContext, Operator, TierConfig};
use millstream_types::{DataType, Expr, Field, Schema, TimeDelta, Timestamp, Tuple, Value};

/// Key-skew regimes for the single INT join column.
#[derive(Clone, Copy, PartialEq)]
enum Skew {
    /// Every step carries a fresh key — each probe matches exactly the
    /// aligned tuples of the other inputs (point-join regime).
    Unique,
    /// Keys cycle over a domain of 16 — buckets hold ~window/16 tuples.
    Uniform,
    /// Half the traffic lands on one hot key, the rest cycles — buckets
    /// are unbalanced, the worst case for scan-layout pruning.
    Hot,
}

impl Skew {
    fn name(self) -> &'static str {
        match self {
            Skew::Unique => "unique",
            Skew::Uniform => "uniform16",
            Skew::Hot => "hot50",
        }
    }

    fn key(self, step: u64) -> i64 {
        match self {
            Skew::Unique => step as i64,
            Skew::Uniform => (step % 16) as i64,
            Skew::Hot => {
                if step.is_multiple_of(2) {
                    0
                } else {
                    1 + ((step / 2) % 15) as i64
                }
            }
        }
    }
}

/// One sweep cell: `arity` inputs joined over `window_ms`-long windows.
struct Cell {
    arity: usize,
    window_ms: u64,
    skew: Skew,
}

/// Counters from one run of a cell under one state layout.
struct Measured {
    /// Candidate tuples examined across all enumeration depths.
    probes: u64,
    /// Combinations emitted.
    matches: u64,
    /// Lifetime high-water of stored tuples, summed over inputs.
    peak_state: u64,
    /// Ingested data tuples per second of wall-clock drain time.
    tuples_per_sec: f64,
}

/// Runs one cell: `steps` rounds, each pushing one tuple per input at a
/// 1 ms cadence and draining the operator to quiescence, with progress
/// punctuation on every input once per window length (the purge driver).
fn run_cell(cell: &Cell, keyed: bool, steps: u64) -> Measured {
    let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
    let schemas = vec![schema; cell.arity];
    let windows = vec![TimeDelta::from_millis(cell.window_ms); cell.arity];
    // The scan layout states the same equi-join as a conjunct chain over
    // the concatenated row (input i's only column sits at offset i).
    let condition = if keyed {
        None
    } else {
        (1..cell.arity)
            .map(|i| Expr::col(i - 1).eq(Expr::col(i)))
            .reduce(Expr::and)
    };
    let mut join = MultiWindowJoin::new("⋈", &schemas, windows, condition);
    if keyed {
        join = join.with_keys(vec![0; cell.arity]);
    }

    let bufs: Vec<RefCell<Buffer>> = (0..cell.arity)
        .map(|i| RefCell::new(Buffer::new(format!("in{i}"))))
        .collect();
    let out = RefCell::new(Buffer::new("out"));
    let inputs: Vec<&RefCell<Buffer>> = bufs.iter().collect();
    let outputs = [&out];

    let mut matches = 0u64;
    let started = Instant::now();
    for step in 0..steps {
        let ts = Timestamp::from_millis(step);
        let key = cell.skew.key(step);
        for buf in &bufs {
            buf.borrow_mut()
                .push(Tuple::data(ts, vec![Value::Int(key)]))
                .unwrap();
        }
        if step > 0 && step.is_multiple_of(cell.window_ms) {
            // Punctuation witnesses at the data timestamp: drives the
            // keyed purge sweep exactly once per window length.
            for buf in &bufs {
                buf.borrow_mut().push(Tuple::punctuation(ts)).unwrap();
            }
        }
        let ctx = OpContext::new(&inputs, &outputs, ts);
        while join.poll(&ctx).is_ready() {
            join.step(&ctx).unwrap();
        }
        let mut o = out.borrow_mut();
        while let Some(t) = o.pop() {
            if t.is_data() {
                matches += 1;
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(matches, join.matches(), "sink count matches operator count");

    Measured {
        probes: join.probes(),
        matches,
        peak_state: join.peak_state() as u64,
        tuples_per_sec: (steps * cell.arity as u64) as f64 / secs.max(1e-9),
    }
}

/// Counters from one run of the spill cell.
struct SpillMeasured {
    /// Output rows in emission order, `(ts, values)` — compared across
    /// budgets for byte-identity.
    output: Vec<(u64, Vec<Value>)>,
    /// High-water of `resident_state_bytes()` sampled after every step.
    peak_resident_bytes: u64,
    stats: millstream_ops::SpillStats,
}

/// The long-window spill cell: a keyed binary join over string-heavy rows
/// whose window holds far more payload than the spill budget. Drives the
/// operator exactly like [`run_cell`] and samples the resident join-state
/// footprint each step.
fn run_spill_cell(tier: Option<TierConfig>, window_ms: u64, steps: u64) -> SpillMeasured {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("p", DataType::Str),
    ]);
    let schemas = vec![schema; 2];
    let windows = vec![TimeDelta::from_millis(window_ms); 2];
    let mut join = MultiWindowJoin::new("⋈", &schemas, windows, None)
        .with_keys(vec![0; 2])
        .with_tier(tier);

    let bufs: Vec<RefCell<Buffer>> = (0..2)
        .map(|i| RefCell::new(Buffer::new(format!("in{i}"))))
        .collect();
    let out = RefCell::new(Buffer::new("out"));
    let inputs: Vec<&RefCell<Buffer>> = bufs.iter().collect();
    let outputs = [&out];

    let mut output = Vec::new();
    let mut peak = 0u64;
    for step in 0..steps {
        let ts = Timestamp::from_millis(step);
        let row = vec![
            Value::Int((step % 8) as i64),
            Value::str(format!("payload-{step:-<120}")),
        ];
        for buf in &bufs {
            buf.borrow_mut().push(Tuple::data(ts, row.clone())).unwrap();
        }
        if step > 0 && step.is_multiple_of(window_ms) {
            for buf in &bufs {
                buf.borrow_mut().push(Tuple::punctuation(ts)).unwrap();
            }
        }
        let ctx = OpContext::new(&inputs, &outputs, ts);
        while join.poll(&ctx).is_ready() {
            join.step(&ctx).unwrap();
        }
        peak = peak.max(join.resident_state_bytes());
        let mut o = out.borrow_mut();
        while let Some(t) = o.pop() {
            if t.is_data() {
                output.push((t.ts.as_micros(), t.values_expect().to_vec()));
            }
        }
    }
    SpillMeasured {
        output,
        peak_resident_bytes: peak,
        stats: join.spill_stats(),
    }
}

fn main() {
    let quick = quick_mode();
    // Quick mode shrinks windows and run length but keeps every cell, so
    // the CI smoke exercises the full sweep shape.
    let (w_small, w_large) = if quick { (16, 64) } else { (64, 256) };
    let steps_for = |window_ms: u64| (4 * window_ms).max(if quick { 64 } else { 256 });

    println!("millstream BENCH_multijoin — N-ary join probe cost: keyed buckets vs window scan");
    println!(
        "1 ms cadence, punctuation once per window{}\n",
        if quick { " (quick mode)" } else { "" }
    );

    let cells = [
        Cell {
            arity: 2,
            window_ms: w_small,
            skew: Skew::Unique,
        },
        Cell {
            arity: 3,
            window_ms: w_small,
            skew: Skew::Unique,
        },
        Cell {
            arity: 4,
            window_ms: w_small,
            skew: Skew::Unique,
        },
        Cell {
            arity: 4,
            window_ms: w_large,
            skew: Skew::Unique,
        },
        Cell {
            arity: 3,
            window_ms: w_small,
            skew: Skew::Uniform,
        },
        Cell {
            arity: 3,
            window_ms: w_small,
            skew: Skew::Hot,
        },
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut largest_speedup = 0.0f64;
    for cell in &cells {
        let steps = steps_for(cell.window_ms);
        let keyed = run_cell(cell, true, steps);
        let scan = run_cell(cell, false, steps);

        // Output equivalence: both layouts enumerate the same join.
        assert_eq!(
            keyed.matches,
            scan.matches,
            "keyed and scan layouts must emit identical combinations \
             (arity {}, window {} ms, {})",
            cell.arity,
            cell.window_ms,
            cell.skew.name()
        );
        // Purge contract: peak retention is O(arity × window), regardless
        // of how many steps ran. The factor 2 covers the amortized sweep
        // (half-window hysteresis) plus the in-flight probe tuple.
        let bound = cell.arity as u64 * (2 * cell.window_ms + 4);
        assert!(
            keyed.peak_state <= bound,
            "peak state {} exceeds purge bound {bound} (arity {}, window {} ms)",
            keyed.peak_state,
            cell.arity,
            cell.window_ms
        );

        let speedup = scan.probes as f64 / keyed.probes.max(1) as f64;
        if cell.arity == 4 && cell.window_ms == w_large {
            largest_speedup = speedup;
        }
        rows.push(vec![
            format!("{}-ary", cell.arity),
            format!("{} ms", cell.window_ms),
            cell.skew.name().into(),
            keyed.probes.to_string(),
            scan.probes.to_string(),
            format!("{speedup:.1}x"),
            keyed.matches.to_string(),
            format!("{}/{}", keyed.peak_state, scan.peak_state),
        ]);
        let layout = |m: &Measured| {
            Json::obj([
                ("probes", Json::Num(m.probes as f64)),
                ("matches", Json::Num(m.matches as f64)),
                ("peak_state", Json::Num(m.peak_state as f64)),
                ("tuples_per_sec", Json::Num(m.tuples_per_sec)),
            ])
        };
        json_rows.push(Json::obj([
            ("arity", Json::Num(cell.arity as f64)),
            ("window_ms", Json::Num(cell.window_ms as f64)),
            ("skew", Json::str(cell.skew.name())),
            ("steps", Json::Num(steps as f64)),
            ("keyed", layout(&keyed)),
            ("scan", layout(&scan)),
            ("probe_speedup", Json::Num(speedup)),
            ("peak_state_bound", Json::Num(bound as f64)),
        ]));
    }

    print_table(
        "candidate tuples examined (probes): keyed buckets vs window scan",
        &[
            "arity", "window", "skew", "keyed", "scan", "speedup", "matches", "peak k/s",
        ],
        &rows,
    );

    assert!(
        largest_speedup >= 5.0,
        "keyed probing must win ≥5x at the largest arity × window cell, got {largest_speedup:.1}x"
    );
    println!(
        "\nacceptance: keyed probe work is {largest_speedup:.1}x below scan at 4-ary × {w_large} ms (≥5x required)"
    );

    // Spill cell: a long window of string-heavy rows, run untiered (every
    // live byte resident) and with a tiny spill budget. The tier must cut
    // the peak resident footprint ≥4x while leaving the output stream
    // byte-identical.
    let spill_window = if quick { 256 } else { 1024 };
    let spill_steps = 3 * spill_window;
    let budget = 4096u64;
    let unbounded = run_spill_cell(None, spill_window, spill_steps);
    let budgeted = run_spill_cell(
        Some(TierConfig {
            budget,
            hot_fraction: 0.05,
            min_run_rows: 16,
        }),
        spill_window,
        spill_steps,
    );
    let output_identical = unbounded.output == budgeted.output;
    assert!(
        output_identical,
        "tiered join output diverged from untiered ({} vs {} rows)",
        budgeted.output.len(),
        unbounded.output.len()
    );
    assert!(budgeted.stats.spilled_bytes > 0, "budget {budget} must spill");
    assert!(budgeted.stats.run_drops > 0, "punctuation must drop runs");
    let reduction =
        unbounded.peak_resident_bytes as f64 / budgeted.peak_resident_bytes.max(1) as f64;
    assert!(
        reduction >= 4.0,
        "spill budget must cut peak resident state ≥4x, got {reduction:.1}x \
         ({} -> {} bytes)",
        unbounded.peak_resident_bytes,
        budgeted.peak_resident_bytes
    );
    println!(
        "spill: peak resident join state {} -> {} bytes ({reduction:.1}x) under a {budget}-byte \
         budget at window {spill_window} ms; {} bytes spilled, {} runs compacted, {} runs \
         dropped, output identical over {} rows (≥4x required)",
        unbounded.peak_resident_bytes,
        budgeted.peak_resident_bytes,
        budgeted.stats.spilled_bytes,
        budgeted.stats.compacted_runs,
        budgeted.stats.run_drops,
        budgeted.output.len(),
    );

    let summary = Json::obj([
        (
            "method",
            Json::str(
                "MultiWindowJoin driven via poll/step; keyed = with_keys hash buckets, \
                 scan = same equality as residual condition; punctuation once per window",
            ),
        ),
        ("quick", Json::Bool(quick)),
        ("largest_cell_probe_speedup", Json::Num(largest_speedup)),
        ("rows", Json::Arr(json_rows)),
        (
            "spill",
            Json::obj([
                ("window_ms", Json::Num(spill_window as f64)),
                ("budget_bytes", Json::Num(budget as f64)),
                (
                    "unbounded_peak_bytes",
                    Json::Num(unbounded.peak_resident_bytes as f64),
                ),
                (
                    "budgeted_peak_bytes",
                    Json::Num(budgeted.peak_resident_bytes as f64),
                ),
                ("peak_reduction", Json::Num(reduction)),
                (
                    "spilled_bytes",
                    Json::Num(budgeted.stats.spilled_bytes as f64),
                ),
                (
                    "compacted_runs",
                    Json::Num(budgeted.stats.compacted_runs as f64),
                ),
                ("run_drops", Json::Num(budgeted.stats.run_drops as f64)),
                ("output_identical", Json::Bool(output_identical)),
            ]),
        ),
    ]);
    write_results("multijoin", summary.clone());
    write_bench_summary("multijoin", summary);
}
