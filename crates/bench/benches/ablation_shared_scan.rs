//! Ablation **A10** — shared scans for multi-query processing.
//!
//! Stream Mill-class DSMSs run many continuous queries over the same
//! inputs. millstream's planner fans a multiply-referenced stream out
//! through one `Split` instead of ingesting it once per query. This bench
//! quantifies the saving: the same workload processed by
//!
//! * **duplicated** — two independent pipelines, each with its own copy of
//!   the stream (tuples ingested twice), versus
//! * **shared** — one source, one `Split`, two branches.
//!
//! Both produce equivalent outputs. The measurement separates the two
//! sides of the trade the planner makes:
//!
//! * **source-side cost** — tuples that must be ingested (parsed, stamped,
//!   delivered by a wrapper): k× for the duplicated plan, 1× shared;
//! * **executor-side cost** — the shared plan pays a `Split` step per
//!   tuple (k reference-counted copies), which a compute-only cost model
//!   actually charges *more* than the duplicated filters it replaces.
//!
//! Sharing wins in real systems because wrapper-side ingestion (syscalls,
//! parsing, timestamping) dwarfs a pointer-copy fan-out; the virtual CPU
//! model deliberately charges only operator steps, so the bench reports
//! both quantities rather than a single verdict.

use millstream_bench::print_table;
use millstream_buffer::PunctuationPolicy;
use millstream_exec::{CostModel, EtsPolicy, Executor, GraphBuilder, Input, VirtualClock};
use millstream_ops::{Filter, Sink, Split};
use millstream_sim::{
    ArrivalProcess, PayloadGen, SharedLatencyCollector, SimReport, Simulation, StreamSpec,
};
use millstream_types::{DataType, Expr, Field, Schema, TimeDelta, TimestampKind};

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", DataType::Int)])
}

fn spec(rate: f64) -> StreamSpec {
    StreamSpec {
        name: "events".into(),
        schema: schema(),
        kind: TimestampKind::Internal,
        process: ArrivalProcess::Poisson { rate_hz: rate },
        payload: PayloadGen::UniformInt { modulus: 1000 },
        heartbeat_period: None,
        external_delay: TimeDelta::ZERO,
        external_jitter: TimeDelta::ZERO,
    }
}

/// A branch predicate: partition the value space into `branches` slices.
fn branch_filter(i: usize, branches: usize) -> Expr {
    let width = 1000 / branches as i64;
    let lo = width * i as i64;
    Expr::col(0)
        .ge(Expr::lit(lo))
        .and(Expr::col(0).lt(Expr::lit(lo + width)))
}

/// Shared: events → Split(n) → n filters → n sinks.
fn run_shared(branches: usize, rate: f64, seconds: u64) -> SimReport {
    let mut b = GraphBuilder::new().with_punctuation_policy(PunctuationPolicy::Coalesce);
    let s = b.source("events", schema(), TimestampKind::Internal);
    let split = b
        .operator(
            Box::new(Split::new("⋔", schema(), branches)),
            vec![Input::Source(s)],
        )
        .unwrap();
    let collector = SharedLatencyCollector::new();
    for i in 0..branches {
        let f = b
            .operator(
                Box::new(Filter::new(
                    format!("σ{i}"),
                    schema(),
                    branch_filter(i, branches),
                )),
                vec![Input::OpPort(split, i)],
            )
            .unwrap();
        b.operator(
            Box::new(Sink::new(format!("sink{i}"), schema(), collector.clone())),
            vec![Input::Op(f)],
        )
        .unwrap();
    }
    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::on_demand(),
    );
    let mut sim = Simulation::new(exec, vec![(s, spec(rate))], collector, None, 3).unwrap();
    sim.run(TimeDelta::from_secs(seconds)).unwrap()
}

/// Duplicated: n independent sources (same workload each) → filter → sink.
fn run_duplicated(branches: usize, rate: f64, seconds: u64) -> SimReport {
    let mut b = GraphBuilder::new().with_punctuation_policy(PunctuationPolicy::Coalesce);
    let collector = SharedLatencyCollector::new();
    let mut sources = Vec::new();
    for i in 0..branches {
        let s = b.source(format!("events{i}"), schema(), TimestampKind::Internal);
        let f = b
            .operator(
                Box::new(Filter::new(
                    format!("σ{i}"),
                    schema(),
                    branch_filter(i, branches),
                )),
                vec![Input::Source(s)],
            )
            .unwrap();
        b.operator(
            Box::new(Sink::new(format!("sink{i}"), schema(), collector.clone())),
            vec![Input::Op(f)],
        )
        .unwrap();
        sources.push(s);
    }
    let exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::on_demand(),
    );
    // Every copy sees the same arrival process (same seed → same epochs).
    let streams = sources.into_iter().map(|s| (s, spec(rate))).collect();
    let mut sim = Simulation::new(exec, streams, collector, None, 3).unwrap();
    sim.run(TimeDelta::from_secs(seconds)).unwrap()
}

fn main() {
    println!("millstream ablation A10 — shared scan (Split) vs duplicated ingestion");
    println!("Poisson 200/s, 60 s virtual time, value-partitioned branches\n");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &branches in &[2usize, 4, 8] {
        let shared = run_shared(branches, 200.0, 60);
        let dup = run_duplicated(branches, 200.0, 60);
        let ingest_shared: u64 = shared.ingested_per_stream.iter().sum();
        let ingest_dup: u64 = dup.ingested_per_stream.iter().sum();
        let exec_overhead = shared.exec.work_units as f64 / dup.exec.work_units as f64;
        results.push((branches, ingest_shared, ingest_dup, exec_overhead));
        rows.push(vec![
            branches.to_string(),
            ingest_shared.to_string(),
            ingest_dup.to_string(),
            format!("{:.0}x", ingest_dup as f64 / ingest_shared as f64),
            shared.exec.work_units.to_string(),
            dup.exec.work_units.to_string(),
            format!("{exec_overhead:.2}x"),
            shared.metrics.delivered.to_string(),
        ]);
    }
    print_table(
        "source-side ingestion vs executor work, shared (⋔) vs duplicated",
        &[
            "branches",
            "ingest ⋔",
            "ingest dup",
            "ingest saved",
            "exec work ⋔",
            "exec work dup",
            "exec overhead",
            "delivered",
        ],
        &rows,
    );

    for &(branches, ingest_shared, ingest_dup, exec_overhead) in &results {
        // Ingestion scales with the number of duplicated pipelines…
        let ratio = ingest_dup as f64 / ingest_shared as f64;
        assert!(
            (ratio - branches as f64).abs() < 0.25,
            "duplicated plans ingest ~{branches}x, got {ratio:.2}x"
        );
        // …while the Split's executor-side overhead stays within ~2x, the
        // bounded price the planner pays for the k-fold ingestion saving.
        assert!(
            exec_overhead < 2.0,
            "split overhead must stay bounded, got {exec_overhead:.2}x"
        );
    }
    println!(
        "\nshape checks passed: shared scans cut ingestion k-fold at a bounded (<2x) executor overhead"
    );
}
