//! Ablation **A5** — the window join as the idle-waiting-prone operator.
//!
//! The paper's experiments use a union; §2 and Fig. 6 treat the symmetric
//! window join identically. This bench swaps the union for a keyed window
//! join (fast ⋈ slow on 100 keys, 5 s window) and repeats the A/B/C
//! comparison. The same ordering must hold: on-demand ETS delivers join
//! results at service-time latency; no-ETS stalls the fast side's probes on
//! the slow side's silence; periodic sits in between.

use millstream_bench::{fmt_ms, print_table};
use millstream_sim::{run_join_experiment, JoinExperiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn run(strategy: Strategy) -> (f64, usize, u64) {
    let cfg = JoinExperiment {
        base: UnionExperiment {
            strategy,
            duration: TimeDelta::from_secs(300),
            seed: 77,
            ..UnionExperiment::default()
        },
        window: TimeDelta::from_secs(5),
        keys: 100,
    };
    let r = run_join_experiment(&cfg).expect("experiment runs");
    (
        r.metrics.latency.mean_ms,
        r.metrics.peak_queue_tuples,
        r.metrics.delivered,
    )
}

fn main() {
    println!("millstream ablation A5 — window join (fast ⋈ slow, 100 keys, 5 s window)");

    let (a_ms, a_peak, a_out) = run(Strategy::NoEts);
    let (b_ms, b_peak, b_out) = run(Strategy::Periodic { rate_hz: 10.0 });
    let (c_ms, c_peak, c_out) = run(Strategy::OnDemand);

    print_table(
        "join-result latency and memory by strategy",
        &["strategy", "mean latency (ms)", "peak queue", "results"],
        &[
            vec![
                "A no-ETS".into(),
                fmt_ms(a_ms),
                a_peak.to_string(),
                a_out.to_string(),
            ],
            vec![
                "B periodic 10/s".into(),
                fmt_ms(b_ms),
                b_peak.to_string(),
                b_out.to_string(),
            ],
            vec![
                "C on-demand".into(),
                fmt_ms(c_ms),
                c_peak.to_string(),
                c_out.to_string(),
            ],
        ],
    );

    assert!(
        a_ms > b_ms && b_ms > c_ms,
        "A > B > C must hold for joins too"
    );
    assert!(
        c_ms < 1.0,
        "on-demand joins at service-time latency, got {c_ms}"
    );
    assert!(a_peak > c_peak, "no-ETS queues more ({a_peak} vs {c_peak})");
    println!("\nshape checks passed: the join behaves like the union under all strategies");
}
