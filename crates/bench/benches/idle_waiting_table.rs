//! Reproduces the paper's in-text §6 idle-waiting comparison:
//!
//! > "Indeed, 99% of the total time in case A was spent in idle-waiting. At
//! > punctuation speeds 100 tuples per second, in case B the waiting time
//! > was reduced to 15% of the total time. However, it could not match the
//! > on-demand ETS (case C), which reduced the waiting period to less than
//! > 0.1% of the total time."
//!
//! Idle-waiting is measured as the fraction of (virtual) run time during
//! which the union holds at least one blocked *data* tuple while its
//! relaxed `more` condition is false.

use millstream_bench::{fmt_pct, print_table, write_results};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn idle_fraction(strategy: Strategy) -> f64 {
    let seeds = [3u64, 13, 29];
    let mut total = 0.0;
    for &seed in &seeds {
        let cfg = UnionExperiment {
            strategy,
            duration: TimeDelta::from_secs(400),
            seed,
            ..UnionExperiment::default()
        };
        let r = run_union_experiment(&cfg).expect("experiment runs");
        total += r.metrics.idle.idle_fraction;
    }
    total / seeds.len() as f64
}

fn main() {
    println!("millstream reproduction of the §6 idle-waiting comparison");

    let a = idle_fraction(Strategy::NoEts);
    let b100 = idle_fraction(Strategy::Periodic { rate_hz: 100.0 });
    let b10 = idle_fraction(Strategy::Periodic { rate_hz: 10.0 });
    let c = idle_fraction(Strategy::OnDemand);
    let d = idle_fraction(Strategy::Latent);

    print_table(
        "Union idle-waiting time as a fraction of total run time",
        &["scenario", "measured", "paper"],
        &[
            vec!["A no ETS".into(), fmt_pct(a), "99%".into()],
            vec!["B periodic 10/s".into(), fmt_pct(b10), "—".into()],
            vec!["B periodic 100/s".into(), fmt_pct(b100), "15%".into()],
            vec!["C on-demand".into(), fmt_pct(c), "<0.1%".into()],
            vec!["D latent".into(), fmt_pct(d), "0% (by construction)".into()],
        ],
    );

    write_results(
        "idle_waiting",
        Json::obj([
            ("a_no_ets", Json::Num(a)),
            ("b_periodic_10hz", Json::Num(b10)),
            ("b_periodic_100hz", Json::Num(b100)),
            ("c_on_demand", Json::Num(c)),
            ("d_latent", Json::Num(d)),
        ]),
    );
    assert!(a > 0.90, "A idle fraction {a}");
    assert!(b100 < a / 2.0, "B@100 must slash idle time, got {b100}");
    assert!(c < 0.001, "C idle fraction must be <0.1%, got {c}");
    assert!(d < 1e-6, "latent never idle-waits, got {d}");
    println!("\nshape checks passed: A ≈ 99% ≫ B(100/s) ≫ C < 0.1%");
}
