//! Ablation **A11** — duty-cycled (on/off) peers: idle-waiting at its
//! worst, and where periodic heartbeats hurt most.
//!
//! The slow stream is a two-state MMPP: Poisson bursts of activity
//! separated by long exponential silences (a duty-cycled sensor, a batch
//! job). For the no-ETS baseline, the fast stream's waiting time tracks
//! the silences; for periodic heartbeats the operator pays punctuation
//! overhead *through the ON periods too*; on-demand ETS pays only when
//! starved. The sweep varies the mean OFF period.

use millstream_bench::{fmt_ms, print_table, write_results};
use millstream_metrics::Json;
use millstream_sim::{run_union_experiment, ArrivalProcess, Strategy, UnionExperiment};
use millstream_types::TimeDelta;

fn run(strategy: Strategy, mean_off_s: f64) -> (f64, u64) {
    let cfg = UnionExperiment {
        strategy,
        duration: TimeDelta::from_secs(400),
        seed: 21,
        slow_process: Some(ArrivalProcess::OnOff {
            on_rate_hz: 10.0,
            mean_on_s: 1.0,
            mean_off_s,
        }),
        ..UnionExperiment::default()
    };
    let r = run_union_experiment(&cfg).expect("experiment runs");
    (r.metrics.latency.mean_ms, r.metrics.punctuation_enqueued)
}

fn main() {
    println!("millstream ablation A11 — on/off (duty-cycled) slow stream");
    println!("fast 50/s Poisson; slow: 10/s while ON (mean 1 s), OFF period swept; 400 s\n");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &off_s in &[2.0f64, 10.0, 40.0, 120.0] {
        let (a_ms, _) = run(Strategy::NoEts, off_s);
        let (b_ms, b_punct) = run(Strategy::Periodic { rate_hz: 10.0 }, off_s);
        let (c_ms, c_punct) = run(Strategy::OnDemand, off_s);
        series.push((off_s, a_ms, c_ms));
        rows.push(vec![
            format!("{off_s}"),
            fmt_ms(a_ms),
            fmt_ms(b_ms),
            fmt_ms(c_ms),
            b_punct.to_string(),
            c_punct.to_string(),
        ]);
    }
    print_table(
        "mean latency (ms) and punctuation enqueued by mean OFF period",
        &[
            "OFF (s)",
            "A no-ETS",
            "B 10/s",
            "C on-demand",
            "punct B",
            "punct C",
        ],
        &rows,
    );

    write_results(
        "ablation_onoff",
        Json::Arr(
            series
                .iter()
                .map(|&(off_s, a, c)| {
                    Json::obj([
                        ("mean_off_s", Json::Num(off_s)),
                        ("a_no_ets_ms", Json::Num(a)),
                        ("c_on_demand_ms", Json::Num(c)),
                    ])
                })
                .collect(),
        ),
    );
    // A's latency tracks the OFF period; C stays flat and microscopic.
    let a_first = series.first().expect("rows").1;
    let a_last = series.last().expect("rows").1;
    assert!(
        a_last > a_first * 5.0,
        "no-ETS latency must grow with the OFF period ({a_first} → {a_last})"
    );
    for &(off_s, _, c_ms) in &series {
        assert!(
            c_ms < 1.0,
            "on-demand stays flat at OFF={off_s}s, got {c_ms} ms"
        );
    }
    println!("\nshape checks passed: duty-cycled silences hurt exactly the no-ETS baseline");
}
