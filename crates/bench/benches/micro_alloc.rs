//! Micro-benchmark — steady-state heap allocations per delivered tuple.
//!
//! The paper's win is scheduling-side; the remaining ceiling is
//! memory-side. This harness registers the counting allocator
//! (`millstream_bench::alloc_track`, feature `count-alloc`) and measures
//! how many heap allocations the engine performs per delivered tuple on
//! the filter→project→union pipeline, at per-tuple execution (K=1) and
//! the batched Encore hot path (K=64), plus a keyed window-join rig that
//! guards the clone-free probe path (`max_allocs_per_tuple_join`).
//!
//! Methodology: tuples are ingested by cloning pre-built templates — a
//! clone of a narrow row never allocates in either the old (`Arc` bump)
//! or new (inline copy) representation — so the census isolates the
//! *engine*: buffer push/pop, scheduling, operator row construction and
//! sink delivery. Each configuration warms up first (queue capacity
//! growth, pools, interner) and then samples the allocation counter and
//! the wall clock around whole waves; the per-configuration minimum over
//! alternating rounds is reported, as in `micro_batching`.
//!
//! The checked-in files under `crates/bench/` close the loop:
//!
//! * `baselines/alloc_before.json` — the pre-refactor numbers (captured
//!   on the commit before the inline-row representation landed), embedded
//!   into `BENCH_alloc.json` as the *before* column;
//! * `alloc_budget.json` — the regression budget; the run fails if
//!   steady-state allocs/tuple exceeds it, which is what the CI
//!   alloc-budget job enforces in `--quick` mode.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use millstream_bench::{
    alloc_track, print_table, quick_mode, read_json_num, write_bench_summary, write_results,
};
use millstream_core::prelude::*;
use millstream_metrics::Json;

/// Counts deliveries without storing tuples (keeps the sink cost flat).
#[derive(Clone, Default)]
struct Count(Arc<AtomicU64>);

impl SinkCollector for Count {
    fn deliver(&mut self, _tuple: Tuple, _now: Timestamp) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

const WAVE_TUPLES: u64 = 1024; // per source, per wave
const WARMUP_WAVES: u64 = 4;
const ROUNDS: usize = 5;

/// Key cardinality for the join rig. With the window at twice the key
/// cycle, every hash bucket stays warm (no free/realloc churn from whole
/// buckets expiring between recurrences) and each probe matches a small
/// constant number of opposite-side tuples.
const JOIN_KEYS: u64 = 64;
const JOIN_WINDOW_MS: u64 = 2 * JOIN_KEYS;

/// Builds the filter→project→union pipeline: two sources, an all-pass
/// filter and a two-column projection per branch, merged by a union into
/// a counting sink. Every ingested tuple is delivered, so the allocation
/// census divides by a denominator equal to the ingest volume.
fn build() -> (GraphBuilder, SourceId, SourceId, Count) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let wide = Schema::new(vec![
        Field::new("v", DataType::Int),
        Field::new("v1", DataType::Int),
    ]);
    let out = Count::default();
    let mut b = GraphBuilder::new();
    let s1 = b.source("S1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("S2", schema.clone(), TimestampKind::Internal);
    let pred = Expr::col(0).ge(Expr::lit(0));
    let branch = |b: &mut GraphBuilder, src, tag: &str| {
        let f = b
            .operator(
                Box::new(Filter::new(format!("σ{tag}"), schema.clone(), pred.clone())),
                vec![Input::Source(src)],
            )
            .unwrap();
        b.operator(
            Box::new(Project::new(
                format!("π{tag}"),
                wide.clone(),
                vec![Expr::col(0), Expr::col(0).add(Expr::lit(1))],
            )),
            vec![Input::Op(f)],
        )
        .unwrap()
    };
    let p1 = branch(&mut b, s1, "1");
    let p2 = branch(&mut b, s2, "2");
    let u = b
        .operator(
            Box::new(Union::new("∪", wide.clone(), 2)),
            vec![Input::Op(p1), Input::Op(p2)],
        )
        .unwrap();
    b.operator(
        Box::new(Sink::new("sink", wide, out.clone())),
        vec![Input::Op(u)],
    )
    .unwrap();
    (b, s1, s2, out)
}

/// Builds the join rig: two sources feeding a keyed symmetric
/// `WindowJoin` into a counting sink. The join probe path is the target
/// of the clone-elimination fix — this rig is what the CI alloc-budget
/// job watches so a per-probe clone (or per-match row spill) regression
/// shows up as allocs per delivered result.
fn build_join() -> (GraphBuilder, SourceId, SourceId, Count) {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let joined = Schema::new(vec![
        Field::new("v", DataType::Int),
        Field::new("v2", DataType::Int),
    ]);
    let out = Count::default();
    let mut b = GraphBuilder::new();
    let s1 = b.source("J1", schema.clone(), TimestampKind::Internal);
    let s2 = b.source("J2", schema, TimestampKind::Internal);
    let spec = JoinSpec::symmetric(TimeDelta::from_millis(JOIN_WINDOW_MS)).with_key(0, 0);
    let j = b
        .operator(
            Box::new(WindowJoin::new("⋈", joined.clone(), spec)),
            vec![Input::Source(s1), Input::Source(s2)],
        )
        .unwrap();
    b.operator(
        Box::new(Sink::new("sink⋈", joined, out.clone())),
        vec![Input::Op(j)],
    )
    .unwrap();
    (b, s1, s2, out)
}

struct Window {
    allocs_per_tuple: f64,
    tuples_per_sec: f64,
    delivered: u64,
}

/// Ingests one wave on both sources (template clones cycling through the
/// slice, monotone timestamps) and returns the timed drain-to-quiescence
/// duration.
fn wave(
    exec: &mut Executor,
    s1: SourceId,
    s2: SourceId,
    templates: &[Tuple],
    n: &mut u64,
) -> Duration {
    for _ in 0..WAVE_TUPLES {
        let ts = Timestamp::from_millis(*n);
        let mut t = templates[(*n % templates.len() as u64) as usize].clone();
        *n += 1;
        t.ts = ts;
        t.entry = ts;
        exec.ingest(s1, t.clone()).unwrap();
        exec.ingest(s2, t).unwrap();
    }
    let started = Instant::now();
    exec.run_until_quiescent(100_000_000).unwrap();
    started.elapsed()
}

/// Runs one configuration: warm up, then `ROUNDS` measurement windows of
/// `waves` waves over the same (steady-state) executor; the best window —
/// fewest allocations, and independently the fastest drain — is reported.
fn run_rig(
    rig: (GraphBuilder, SourceId, SourceId, Count),
    templates: &[Tuple],
    encore_batch: usize,
    waves: u64,
) -> Window {
    let (b, s1, s2, out) = rig;
    let mut exec = Executor::new(
        b.build().unwrap(),
        VirtualClock::shared(),
        CostModel::default(),
        EtsPolicy::None,
    )
    .with_encore_batch(encore_batch);

    let mut n = 0u64;
    for _ in 0..WARMUP_WAVES {
        let _ = wave(&mut exec, s1, s2, templates, &mut n);
    }

    let mut best_allocs = u64::MAX;
    let mut best_drain = Duration::MAX;
    let mut delivered_last = 0u64;
    for _ in 0..ROUNDS {
        let delivered0 = out.0.load(Ordering::Relaxed);
        let allocs0 = alloc_track::allocations();
        let mut drain = Duration::ZERO;
        for _ in 0..waves {
            drain += wave(&mut exec, s1, s2, templates, &mut n);
        }
        let allocs = alloc_track::allocations() - allocs0;
        delivered_last = out.0.load(Ordering::Relaxed) - delivered0;
        assert!(delivered_last > 0, "pipeline must deliver");
        best_allocs = best_allocs.min(allocs);
        best_drain = best_drain.min(drain);
    }

    let ingested = 2 * waves * WAVE_TUPLES;
    Window {
        allocs_per_tuple: best_allocs as f64 / delivered_last as f64,
        tuples_per_sec: ingested as f64 / best_drain.as_secs_f64(),
        delivered: delivered_last,
    }
}

fn run(encore_batch: usize, waves: u64) -> Window {
    let templates = [Tuple::data(Timestamp::ZERO, vec![Value::Int(7)])];
    run_rig(build(), &templates, encore_batch, waves)
}

/// The join configuration: keys cycle over `JOIN_KEYS` so the keyed probe
/// path (bucket lookup, clone-free enumeration, purge sweep) runs in
/// steady state; allocs are normalized by delivered join results.
fn run_join(waves: u64) -> Window {
    let templates: Vec<Tuple> = (0..JOIN_KEYS)
        .map(|k| Tuple::data(Timestamp::ZERO, vec![Value::Int(k as i64)]))
        .collect();
    run_rig(build_join(), &templates, 64, waves)
}

fn main() {
    let quick = quick_mode();
    assert!(
        alloc_track::counting(),
        "micro_alloc requires the counting allocator: build with --features count-alloc"
    );
    let waves = if quick { 8 } else { 32 };
    println!("millstream micro-benchmark — steady-state heap allocations per delivered tuple");
    println!(
        "filter→project→union pipeline, all-pass, {} tuples per window, best of {ROUNDS} rounds{}\n",
        2 * waves * WAVE_TUPLES,
        if quick { " (quick mode)" } else { "" }
    );

    let ks = [1usize, 64];
    let windows: Vec<Window> = ks.iter().map(|&k| run(k, waves)).collect();
    let join = run_join(waves);

    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let baseline = std::fs::read_to_string(manifest.join("baselines/alloc_before.json")).ok();
    let budget = std::fs::read_to_string(manifest.join("alloc_budget.json")).ok();
    let base_num = |key: &str| baseline.as_deref().and_then(|t| read_json_num(t, key));

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (&k, w) in ks.iter().zip(&windows) {
        let before_apt = base_num(&format!("k{k}_allocs_per_tuple"));
        let before_tps = base_num(&format!("k{k}_tuples_per_sec"));
        let reduction = before_apt.map(|b| 1.0 - w.allocs_per_tuple / b);
        let speedup = before_tps.map(|b| w.tuples_per_sec / b);
        rows.push(vec![
            format!("K={k}"),
            before_apt.map_or("n/a".into(), |b| format!("{b:.3}")),
            format!("{:.3}", w.allocs_per_tuple),
            reduction.map_or("n/a".into(), |r| format!("{:.1}%", r * 100.0)),
            format!("{:.2}M", w.tuples_per_sec / 1e6),
            speedup.map_or("n/a".into(), |s| format!("{s:.2}x")),
        ]);
        json_rows.push(Json::obj([
            ("encore_batch", Json::Num(k as f64)),
            ("allocs_per_tuple", Json::Num(w.allocs_per_tuple)),
            (
                "baseline_allocs_per_tuple",
                before_apt.map_or(Json::Null, Json::Num),
            ),
            ("alloc_reduction", reduction.map_or(Json::Null, Json::Num)),
            ("tuples_per_sec", Json::Num(w.tuples_per_sec)),
            (
                "baseline_tuples_per_sec",
                before_tps.map_or(Json::Null, Json::Num),
            ),
            ("speedup_vs_baseline", speedup.map_or(Json::Null, Json::Num)),
            ("delivered_per_window", Json::Num(w.delivered as f64)),
        ]));
    }
    rows.push(vec![
        format!("join K=64 ({JOIN_KEYS} keys)"),
        "n/a".into(),
        format!("{:.3}", join.allocs_per_tuple),
        "n/a".into(),
        format!("{:.2}M", join.tuples_per_sec / 1e6),
        "n/a".into(),
    ]);
    json_rows.push(Json::obj([
        ("rig", Json::str("window-join")),
        ("encore_batch", Json::Num(64.0)),
        ("allocs_per_tuple", Json::Num(join.allocs_per_tuple)),
        ("tuples_per_sec", Json::Num(join.tuples_per_sec)),
        ("delivered_per_window", Json::Num(join.delivered as f64)),
    ]));
    print_table(
        "steady-state allocations per delivered tuple (before = pre-refactor baseline)",
        &[
            "batch",
            "before a/t",
            "after a/t",
            "reduction",
            "tuples/s",
            "speedup",
        ],
        &rows,
    );

    let summary = Json::obj([
        (
            "pipeline",
            Json::str("filter→project→union, all-pass, INT rows"),
        ),
        (
            "tuples_per_window",
            Json::Num((2 * waves * WAVE_TUPLES) as f64),
        ),
        ("quick", Json::Bool(quick)),
        ("rows", Json::Arr(json_rows)),
    ]);
    write_results("micro_alloc", summary.clone());
    write_bench_summary("alloc", summary);

    if baseline.is_none() {
        println!("\nnote: baselines/alloc_before.json missing — before/after columns unavailable");
    }
    match budget
        .as_deref()
        .and_then(|t| read_json_num(t, "max_allocs_per_tuple_k64"))
    {
        Some(max) => {
            let after = windows[1].allocs_per_tuple;
            assert!(
                after <= max,
                "allocation budget exceeded at K=64: {after:.3} allocs/tuple > budget {max:.3}"
            );
            if let Some(max1) = budget
                .as_deref()
                .and_then(|t| read_json_num(t, "max_allocs_per_tuple_k1"))
            {
                let after1 = windows[0].allocs_per_tuple;
                assert!(
                    after1 <= max1,
                    "allocation budget exceeded at K=1: {after1:.3} allocs/tuple > budget {max1:.3}"
                );
            }
            if let Some(maxj) = budget
                .as_deref()
                .and_then(|t| read_json_num(t, "max_allocs_per_tuple_join"))
            {
                assert!(
                    join.allocs_per_tuple <= maxj,
                    "allocation budget exceeded on the join rig: {:.3} allocs/result > budget {maxj:.3}",
                    join.allocs_per_tuple
                );
            }
            println!(
                "\nbudget check passed: K=64 steady state {:.3} allocs/tuple ≤ {max:.3}, \
                 join rig {:.3} allocs/result",
                after, join.allocs_per_tuple
            );
        }
        None => println!("\nnote: alloc_budget.json missing — budget not enforced"),
    }
}
