//! Ablation **A4** — externally timestamped streams and the §5 skew-bound
//! ETS rule `ETS = t + τ − δ`.
//!
//! With external timestamps, a source answering an on-demand ETS request
//! cannot simply report its clock: it must subtract the maximum
//! application-to-arrival skew δ. Larger δ makes the promise weaker, so the
//! union releases tuples later — latency should grow roughly linearly in δ
//! while staying far below the no-ETS baseline. This bench builds the
//! Fig. 4 graph on external streams (fixed 5 ms transfer delay) and sweeps
//! δ.

use millstream_bench::{fmt_ms, print_table};
use millstream_buffer::PunctuationPolicy;
use millstream_exec::{CostModel, EtsPolicy, Executor, GraphBuilder, Input, VirtualClock};
use millstream_ops::{Filter, Sink, Union};
use millstream_sim::{
    ArrivalProcess, PayloadGen, SharedLatencyCollector, SimReport, Simulation, StreamSpec,
};
use millstream_types::{DataType, Expr, Field, Schema, TimeDelta, TimestampKind};

const TRANSFER_DELAY_MS: u64 = 5;

fn run(policy: EtsPolicy) -> SimReport {
    let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
    let mut b = GraphBuilder::new().with_punctuation_policy(PunctuationPolicy::Coalesce);
    let s_fast = b.source("fast", schema.clone(), TimestampKind::External);
    let s_slow = b.source("slow", schema.clone(), TimestampKind::External);
    let pass = Expr::col(0).ge(Expr::lit(0));
    let f1 = b
        .operator(
            Box::new(Filter::new("σ1", schema.clone(), pass.clone())),
            vec![Input::Source(s_fast)],
        )
        .unwrap();
    let f2 = b
        .operator(
            Box::new(Filter::new("σ2", schema.clone(), pass)),
            vec![Input::Source(s_slow)],
        )
        .unwrap();
    let u = b
        .operator(
            Box::new(Union::new("∪", schema.clone(), 2)),
            vec![Input::Op(f1), Input::Op(f2)],
        )
        .unwrap();
    let collector = SharedLatencyCollector::new();
    let _sink = b
        .operator(
            Box::new(Sink::new("sink", schema.clone(), collector.clone())),
            vec![Input::Op(u)],
        )
        .unwrap();
    let graph = b.build().unwrap();
    let executor = Executor::new(graph, VirtualClock::shared(), CostModel::default(), policy);

    let spec = |name: &str, rate: f64| StreamSpec {
        name: name.into(),
        schema: schema.clone(),
        kind: TimestampKind::External,
        process: ArrivalProcess::Poisson { rate_hz: rate },
        payload: PayloadGen::UniformInt { modulus: 1000 },
        heartbeat_period: None,
        external_delay: TimeDelta::from_millis(TRANSFER_DELAY_MS),
        external_jitter: TimeDelta::ZERO,
    };
    let mut sim = Simulation::new(
        executor,
        vec![(s_fast, spec("fast", 50.0)), (s_slow, spec("slow", 0.05))],
        collector,
        Some(u),
        123,
    )
    .unwrap();
    sim.run(TimeDelta::from_secs(300)).unwrap()
}

fn main() {
    println!("millstream ablation A4 — external timestamps, skew-bound on-demand ETS (t + τ − δ)");
    println!("transfer delay {TRANSFER_DELAY_MS} ms; fast 50/s, slow 0.05/s, 300 s virtual");

    let baseline = run(EtsPolicy::None);
    let mut rows = vec![vec![
        "no ETS".into(),
        fmt_ms(baseline.metrics.latency.mean_ms),
        baseline.metrics.delivered.to_string(),
        "0".into(),
    ]];

    let mut series = Vec::new();
    for &delta_ms in &[0u64, 5, 20, 100, 500] {
        let r = run(EtsPolicy::OnDemand {
            external_max_skew: TimeDelta::from_millis(delta_ms),
        });
        series.push((delta_ms, r.metrics.latency.mean_ms));
        rows.push(vec![
            format!("on-demand δ={delta_ms}ms"),
            fmt_ms(r.metrics.latency.mean_ms),
            r.metrics.delivered.to_string(),
            r.exec.ets_generated.to_string(),
        ]);
    }
    print_table(
        "mean latency (ms), deliveries and ETS count by skew bound δ",
        &["scenario", "mean latency", "delivered", "ETS generated"],
        &rows,
    );

    // Latency grows with δ but stays far below the baseline.
    for w in series.windows(2) {
        assert!(
            w[1].1 >= w[0].1 * 0.5,
            "latency should not collapse as δ grows: {series:?}"
        );
    }
    let tight = series.first().expect("rows").1;
    let loose = series.last().expect("rows").1;
    assert!(
        loose > tight,
        "a larger skew bound must cost latency ({tight} -> {loose})"
    );
    assert!(
        loose < baseline.metrics.latency.mean_ms / 10.0,
        "even δ=500ms beats no-ETS by an order of magnitude"
    );
    println!("\nshape checks passed: latency rises ~linearly in δ, always ≪ no-ETS");
}
