//! Abstract syntax of the millstream continuous-query language.

use millstream_types::{BinOp, DataType, TimeDelta, TimestampKind, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE STREAM name (col TYPE, ...) TIMESTAMP INTERNAL [SLACK d];`
    CreateStream {
        /// Stream name.
        name: String,
        /// Column definitions.
        fields: Vec<(String, DataType)>,
        /// Timestamp discipline (defaults to internal).
        kind: TimestampKind,
        /// Bounded-disorder slack: when set, the stream may arrive out of
        /// order within this span and the planner inserts a `Reorder`
        /// stage after the source.
        slack: Option<TimeDelta>,
    },
    /// A (possibly unioned) continuous query.
    Query(Query),
}

/// A continuous query: one or more `SELECT` branches merged by `UNION`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The union branches, in source order.
    pub branches: Vec<SelectStmt>,
}

/// One `SELECT ... FROM ...` branch.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Projection,
    /// The primary stream.
    pub from: TableRef,
    /// Window joins with further streams, in clause order. One clause
    /// plans a binary `WindowJoin`; two or more plan an n-ary
    /// `MultiWindowJoin` over `FROM` plus every joined stream.
    pub joins: Vec<JoinClause>,
    /// Optional `WHERE` predicate.
    pub filter: Option<AstExpr>,
    /// Optional grouped windowed aggregation.
    pub group_by: Option<GroupByClause>,
    /// Optional `HAVING` predicate, evaluated over the aggregate's output
    /// rows (window_start, group keys, aggregate columns).
    pub having: Option<AstExpr>,
}

/// The projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression (may contain aggregate calls).
    pub expr: AstExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// A stream reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Stream name (must exist in the catalog).
    pub stream: String,
    /// Optional alias for qualification.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference is known by in the query (alias or stream).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.stream)
    }
}

/// `JOIN s AS b ON <expr> WINDOW 5 SECONDS`
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined stream.
    pub table: TableRef,
    /// The join condition.
    pub on: AstExpr,
    /// The symmetric window length.
    pub window: TimeDelta,
}

/// `GROUP BY k1, k2 [WINDOW 30 SECONDS] EVERY 10 SECONDS`
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByClause {
    /// Grouping expressions.
    pub keys: Vec<AstExpr>,
    /// Sliding-window length; when set (and larger than `every`) the
    /// aggregate uses overlapping pane-based windows. `None` = tumbling.
    pub window: Option<TimeDelta>,
    /// Emission period (the slide; for tumbling windows also the length).
    pub every: TimeDelta,
}

/// Aggregate functions available in the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AstAgg {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// A surface-syntax expression (column names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// A possibly qualified column reference (`a.src` or `len`).
    Column {
        /// Optional table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT e`
    Not(Box<AstExpr>),
    /// `-e`
    Neg(Box<AstExpr>),
    /// `e IS NULL` / `e IS NOT NULL` (the latter wrapped in Not).
    IsNull(Box<AstExpr>),
    /// Aggregate call, e.g. `COUNT(*)` or `SUM(len)`. `None` argument means
    /// `*` (COUNT only).
    Agg {
        /// The function.
        func: AstAgg,
        /// The argument, or `None` for `*`.
        arg: Option<Box<AstExpr>>,
    },
}

impl AstExpr {
    /// Convenience constructor for a bare column.
    pub fn column(name: impl Into<String>) -> AstExpr {
        AstExpr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// True iff the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column { .. } | AstExpr::Literal(_) => false,
            AstExpr::Not(e) | AstExpr::Neg(e) | AstExpr::IsNull(e) => e.contains_aggregate(),
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            stream: "packets".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.binding(), "p");
        let t = TableRef {
            stream: "packets".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "packets");
    }

    #[test]
    fn aggregate_detection() {
        let plain = AstExpr::column("x");
        assert!(!plain.contains_aggregate());
        let agg = AstExpr::Agg {
            func: AstAgg::Count,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        let nested = AstExpr::Binary {
            op: BinOp::Add,
            left: Box::new(AstExpr::column("x")),
            right: Box::new(AstExpr::Agg {
                func: AstAgg::Sum,
                arg: Some(Box::new(AstExpr::column("y"))),
            }),
        };
        assert!(nested.contains_aggregate());
    }
}
