//! Recursive-descent parser for the millstream query language.
//!
//! Grammar (informal):
//!
//! ```text
//! program     := statement (';' statement)* ';'?
//! statement   := create | query
//! create      := CREATE STREAM ident '(' col (',' col)* ')'
//!                [TIMESTAMP (INTERNAL | EXTERNAL | LATENT)]
//!                [SLACK duration]
//! col         := ident type
//! query       := select (UNION [ALL] select)*
//! select      := SELECT proj FROM table join* [WHERE expr]
//!                [group] [HAVING expr]
//! proj        := '*' | item (',' item)*
//! item        := expr [AS ident]
//! table       := ident [AS ident]
//! join        := JOIN table ON expr WINDOW duration
//! group       := GROUP BY expr (',' expr)* [WINDOW duration] EVERY duration
//! duration    := number (MILLISECONDS | SECONDS | MINUTES)
//! expr        := or-expression with SQL precedence; aggregates
//!                (COUNT/SUM/MIN/MAX/AVG) in the SELECT list only
//! ```

use millstream_types::{BinOp, DataType, Error, Result, TimeDelta, TimestampKind, Value};

use crate::ast::{
    AstAgg, AstExpr, GroupByClause, JoinClause, Projection, Query, SelectItem, SelectStmt, Stmt,
    TableRef,
};
use crate::lexer::{lex, Keyword, Spanned, Tok};

/// Parses a whole program (one or more `;`-separated statements).
pub fn parse_program(text: &str) -> Result<Vec<Stmt>> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
        // Optional semicolons between and after statements.
        while p.eat(&Tok::Semi) {}
    }
    if stmts.is_empty() {
        return Err(Error::parse("empty program", 1, 1));
    }
    Ok(stmts)
}

/// Parses a single query (no DDL).
pub fn parse_query(text: &str) -> Result<Query> {
    let stmts = parse_program(text)?;
    match stmts.as_slice() {
        [Stmt::Query(q)] => Ok(q.clone()),
        _ => Err(Error::parse("expected exactly one SELECT query", 1, 1)),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((1, 1))
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (line, column) = self.here();
        Error::parse(msg, line, column)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&Tok::Keyword(kw))
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<()> {
        self.expect(&Tok::Keyword(kw), what)
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(name)) = self.next() else {
                    unreachable!()
                };
                Ok(name)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.eat_kw(Keyword::Create) {
            self.create_stream()
        } else {
            Ok(Stmt::Query(self.query()?))
        }
    }

    fn create_stream(&mut self) -> Result<Stmt> {
        self.expect_kw(Keyword::Stream, "STREAM")?;
        let name = self.ident("stream name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut fields = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty = self.data_type()?;
            fields.push((col, ty));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let kind = if self.eat_kw(Keyword::Timestamp) {
            if self.eat_kw(Keyword::Internal) {
                TimestampKind::Internal
            } else if self.eat_kw(Keyword::External) {
                TimestampKind::External
            } else if self.eat_kw(Keyword::Latent) {
                TimestampKind::Latent
            } else {
                return Err(self.err("expected INTERNAL, EXTERNAL or LATENT"));
            }
        } else {
            TimestampKind::Internal
        };
        let slack = if self.eat_kw(Keyword::Slack) {
            Some(self.duration()?)
        } else {
            None
        };
        Ok(Stmt::CreateStream {
            name,
            fields,
            kind,
            slack,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let ty = match self.peek() {
            Some(Tok::Keyword(Keyword::Int)) => DataType::Int,
            Some(Tok::Keyword(Keyword::Float)) => DataType::Float,
            Some(Tok::Keyword(Keyword::Bool)) => DataType::Bool,
            Some(Tok::Keyword(Keyword::String)) => DataType::Str,
            _ => return Err(self.err("expected a column type")),
        };
        self.pos += 1;
        Ok(ty)
    }

    fn query(&mut self) -> Result<Query> {
        let mut branches = vec![self.select()?];
        while self.eat_kw(Keyword::Union) {
            // UNION ALL and UNION are identical on streams (no dedup).
            let _ = self.eat_kw(Keyword::All);
            branches.push(self.select()?);
        }
        Ok(Query { branches })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Keyword::Select, "SELECT")?;
        let projection = if self.eat(&Tok::Star) {
            Projection::Star
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat(&Tok::Comma) {
                items.push(self.select_item()?);
            }
            Projection::Items(items)
        };
        self.expect_kw(Keyword::From, "FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw(Keyword::Join) {
            let table = self.table_ref()?;
            self.expect_kw(Keyword::On, "ON")?;
            let on = self.expr()?;
            self.expect_kw(Keyword::Window, "WINDOW")?;
            let window = self.duration()?;
            joins.push(JoinClause { table, on, window });
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By, "BY")?;
            let mut keys = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                keys.push(self.expr()?);
            }
            let window = if self.eat_kw(Keyword::Window) {
                Some(self.duration()?)
            } else {
                None
            };
            self.expect_kw(Keyword::Every, "EVERY")?;
            let every = self.duration()?;
            Some(GroupByClause {
                keys,
                window,
                every,
            })
        } else {
            None
        };
        let having = if self.eat_kw(Keyword::Having) {
            if group_by.is_none() {
                return Err(self.err("HAVING requires GROUP BY"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            joins,
            filter,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let stream = self.ident("stream name")?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("alias")?)
        } else if let Some(Tok::Ident(_)) = self.peek() {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(TableRef { stream, alias })
    }

    fn duration(&mut self) -> Result<TimeDelta> {
        let n = match self.next() {
            Some(Tok::Int(n)) if n >= 0 => n as u64,
            Some(Tok::Float(f)) if f >= 0.0 => {
                // Fractional durations: convert below via f64 seconds.
                let unit = self.duration_unit()?;
                return Ok(TimeDelta::from_secs_f64(f * unit_secs(unit)));
            }
            _ => return Err(self.err("expected a duration value")),
        };
        let unit = self.duration_unit()?;
        Ok(TimeDelta::from_secs_f64(n as f64 * unit_secs(unit)))
    }

    fn duration_unit(&mut self) -> Result<Keyword> {
        for kw in [Keyword::Milliseconds, Keyword::Seconds, Keyword::Minutes] {
            if self.eat_kw(kw) {
                return Ok(kw);
            }
        }
        Err(self.err("expected MILLISECONDS, SECONDS or MINUTES"))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw(Keyword::Not) {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::Keyword(Keyword::Is)) => {
                self.pos += 1;
                let negated = self.eat_kw(Keyword::Not);
                self.expect_kw(Keyword::Null, "NULL")?;
                let test = AstExpr::IsNull(Box::new(left));
                return Ok(if negated {
                    AstExpr::Not(Box::new(test))
                } else {
                    test
                });
            }
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.additive()?;
                Ok(AstExpr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
        }
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat(&Tok::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn agg_func(&mut self) -> Option<AstAgg> {
        let f = match self.peek() {
            Some(Tok::Keyword(Keyword::Count)) => AstAgg::Count,
            Some(Tok::Keyword(Keyword::Sum)) => AstAgg::Sum,
            Some(Tok::Keyword(Keyword::Min)) => AstAgg::Min,
            Some(Tok::Keyword(Keyword::Max)) => AstAgg::Max,
            Some(Tok::Keyword(Keyword::Avg)) => AstAgg::Avg,
            _ => return None,
        };
        self.pos += 1;
        Some(f)
    }

    fn primary(&mut self) -> Result<AstExpr> {
        if let Some(func) = self.agg_func() {
            self.expect(&Tok::LParen, "`(` after aggregate")?;
            let arg = if self.eat(&Tok::Star) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            self.expect(&Tok::RParen, "`)`")?;
            if arg.is_none() && func != AstAgg::Count {
                return Err(self.err("only COUNT accepts `*`"));
            }
            return Ok(AstExpr::Agg { func, arg });
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(AstExpr::Literal(Value::Int(v))),
            Some(Tok::Float(v)) => Ok(AstExpr::Literal(Value::Float(v))),
            Some(Tok::Str(s)) => Ok(AstExpr::Literal(Value::str(s))),
            Some(Tok::Keyword(Keyword::True)) => Ok(AstExpr::Literal(Value::Bool(true))),
            Some(Tok::Keyword(Keyword::False)) => Ok(AstExpr::Literal(Value::Bool(false))),
            Some(Tok::Keyword(Keyword::Null)) => Ok(AstExpr::Literal(Value::Null)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(first)) => {
                if self.eat(&Tok::Dot) {
                    let name = self.ident("column name after `.`")?;
                    Ok(AstExpr::Column {
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    Ok(AstExpr::Column {
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected an expression, found {other:?}")))
            }
        }
    }
}

fn unit_secs(kw: Keyword) -> f64 {
    match kw {
        Keyword::Milliseconds => 1e-3,
        Keyword::Seconds => 1.0,
        Keyword::Minutes => 60.0,
        _ => unreachable!("duration_unit only returns time units"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_stream() {
        let stmts =
            parse_program("CREATE STREAM packets (src INT, len INT) TIMESTAMP EXTERNAL;").unwrap();
        assert_eq!(
            stmts[0],
            Stmt::CreateStream {
                name: "packets".into(),
                fields: vec![("src".into(), DataType::Int), ("len".into(), DataType::Int)],
                kind: TimestampKind::External,
                slack: None,
            }
        );
    }

    #[test]
    fn default_timestamp_is_internal() {
        let stmts = parse_program("CREATE STREAM s (x INT)").unwrap();
        let Stmt::CreateStream { kind, slack, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(*kind, TimestampKind::Internal);
        assert_eq!(*slack, None);
    }

    #[test]
    fn parses_slack_clause() {
        let stmts =
            parse_program("CREATE STREAM s (x INT) TIMESTAMP EXTERNAL SLACK 250 MILLISECONDS")
                .unwrap();
        let Stmt::CreateStream { kind, slack, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(*kind, TimestampKind::External);
        assert_eq!(*slack, Some(TimeDelta::from_millis(250)));
    }

    #[test]
    fn parses_select_where() {
        let q = parse_query("SELECT src, len FROM packets WHERE len > 100").unwrap();
        assert_eq!(q.branches.len(), 1);
        let b = &q.branches[0];
        assert_eq!(b.from.stream, "packets");
        assert!(b.filter.is_some());
        let Projection::Items(items) = &b.projection else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn parses_union() {
        let q = parse_query(
            "SELECT * FROM a WHERE x < 5 UNION SELECT * FROM b UNION ALL SELECT * FROM c",
        )
        .unwrap();
        assert_eq!(q.branches.len(), 3);
        assert_eq!(q.branches[2].from.stream, "c");
    }

    #[test]
    fn parses_window_join() {
        let q =
            parse_query("SELECT a.src FROM s1 AS a JOIN s2 AS b ON a.src = b.src WINDOW 5 SECONDS")
                .unwrap();
        let j = &q.branches[0].joins[0];
        assert_eq!(j.table.binding(), "b");
        assert_eq!(j.window, TimeDelta::from_secs(5));
        assert!(matches!(j.on, AstExpr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn parses_nary_join_chain() {
        let q = parse_query(
            "SELECT * FROM s1 JOIN s2 ON s1.k = s2.k WINDOW 5 SECONDS \
             JOIN s3 AS c ON s2.k = c.k WINDOW 10 SECONDS",
        )
        .unwrap();
        let js = &q.branches[0].joins;
        assert_eq!(js.len(), 2);
        assert_eq!(js[0].table.binding(), "s2");
        assert_eq!(js[1].table.binding(), "c");
        assert_eq!(js[0].window, TimeDelta::from_secs(5));
        assert_eq!(js[1].window, TimeDelta::from_secs(10));
    }

    #[test]
    fn parses_group_by_aggregates() {
        let q = parse_query(
            "SELECT src, COUNT(*) AS n, AVG(len) AS mean FROM packets GROUP BY src EVERY 10 SECONDS",
        )
        .unwrap();
        let b = &q.branches[0];
        let g = b.group_by.as_ref().unwrap();
        assert_eq!(g.keys.len(), 1);
        assert_eq!(g.window, None);
        assert_eq!(g.every, TimeDelta::from_secs(10));
        let Projection::Items(items) = &b.projection else {
            panic!()
        };
        assert!(items[1].expr.contains_aggregate());
        assert_eq!(items[2].alias.as_deref(), Some("mean"));
    }

    #[test]
    fn parses_having() {
        let q = parse_query(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src EVERY 10 SECONDS HAVING n > 5",
        )
        .unwrap();
        assert!(q.branches[0].having.is_some());
        assert!(parse_query("SELECT src FROM packets HAVING src > 1").is_err());
    }

    #[test]
    fn parses_sliding_group_by() {
        let q = parse_query(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src WINDOW 30 SECONDS EVERY 10 SECONDS",
        )
        .unwrap();
        let g = q.branches[0].group_by.as_ref().unwrap();
        assert_eq!(g.window, Some(TimeDelta::from_secs(30)));
        assert_eq!(g.every, TimeDelta::from_secs(10));
    }

    #[test]
    fn expression_precedence() {
        let q = parse_query("SELECT * FROM s WHERE a + b * 2 > 10 AND NOT c = 3 OR d < 1").unwrap();
        // ((a + (b*2)) > 10 AND NOT (c = 3)) OR (d < 1)
        let f = q.branches[0].filter.as_ref().unwrap();
        let AstExpr::Binary {
            op: BinOp::Or,
            left,
            ..
        } = f
        else {
            panic!("top must be OR, got {f:?}");
        };
        let AstExpr::Binary { op: BinOp::And, .. } = left.as_ref() else {
            panic!("left of OR must be AND");
        };
    }

    #[test]
    fn duration_units() {
        let q = parse_query("SELECT * FROM a JOIN b ON x = y WINDOW 250 MILLISECONDS").unwrap();
        assert_eq!(q.branches[0].joins[0].window, TimeDelta::from_millis(250));
        let q = parse_query("SELECT * FROM a JOIN b ON x = y WINDOW 2 MINUTES").unwrap();
        assert_eq!(q.branches[0].joins[0].window, TimeDelta::from_secs(120));
        let q = parse_query("SELECT * FROM a JOIN b ON x = y WINDOW 1.5 SECONDS").unwrap();
        assert_eq!(q.branches[0].joins[0].window, TimeDelta::from_millis(1_500));
    }

    #[test]
    fn is_null_and_negation() {
        let q = parse_query("SELECT * FROM s WHERE x IS NULL").unwrap();
        assert!(matches!(
            q.branches[0].filter.as_ref().unwrap(),
            AstExpr::IsNull(_)
        ));
        let q = parse_query("SELECT * FROM s WHERE x IS NOT NULL").unwrap();
        assert!(matches!(
            q.branches[0].filter.as_ref().unwrap(),
            AstExpr::Not(_)
        ));
        let q = parse_query("SELECT -x FROM s").unwrap();
        let Projection::Items(items) = &q.branches[0].projection else {
            panic!()
        };
        assert!(matches!(items[0].expr, AstExpr::Neg(_)));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("SELECT FROM s").unwrap_err();
        let Error::Parse { line, column, .. } = err else {
            panic!()
        };
        assert_eq!(line, 1);
        assert!(column >= 8);
    }

    #[test]
    fn rejects_star_in_non_count() {
        assert!(parse_query("SELECT SUM(*) FROM s").is_err());
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_program(
            "CREATE STREAM a (x INT);\nCREATE STREAM b (x INT);\nSELECT * FROM a UNION SELECT * FROM b;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[2], Stmt::Query(_)));
    }

    #[test]
    fn implicit_alias_without_as() {
        let q = parse_query("SELECT p.x FROM packets p").unwrap();
        assert_eq!(q.branches[0].from.alias.as_deref(), Some("p"));
    }
}
