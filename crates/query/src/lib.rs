//! # millstream-query
//!
//! A small continuous-query language for millstream — the stand-in for
//! Stream Mill's ESL front end. Pipeline:
//!
//! 1. [`lex`](lexer::lex) — tokenization with source positions;
//! 2. [`parse_program`] / [`parse_query`] — recursive-descent parsing into
//!    the [`ast`] types;
//! 3. [`Catalog`] + [`plan_query`] / [`plan_program`] — name resolution,
//!    type checking and planning into an executable
//!    [`QueryGraph`](millstream_exec::QueryGraph) with the paper's operator
//!    placement (per-branch selections before the union, Fig. 4).
//!
//! ```
//! use millstream_query::plan_program;
//! use millstream_ops::VecCollector;
//!
//! let planned = plan_program(
//!     "CREATE STREAM packets (src INT, len INT);
//!      CREATE STREAM flows (src INT, len INT);
//!      SELECT src, len FROM packets WHERE len > 100
//!      UNION
//!      SELECT src, len FROM flows;",
//!     VecCollector::default(),
//! ).unwrap();
//! assert_eq!(planned.sources.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use parser::{parse_program, parse_query};
pub use planner::{plan_program, plan_query, shard_keys, Catalog, PlannedQuery, PlannedSource};
