//! Semantic analysis and planning: AST → executable [`QueryGraph`].
//!
//! Planning follows the paper's graph shapes: per-branch selections are
//! placed *before* the merging union (Fig. 4), joins consume their sources
//! directly with the `WHERE` residual applied after (Fig. 1 semantics), and
//! grouped aggregation becomes a tumbling [`WindowAggregate`].

use std::collections::HashMap;

use millstream_exec::{GraphBuilder, Input, NodeId, QueryGraph, ShardKey, SourceId};
use millstream_ops::{
    AggExpr, AggFunc, Filter, JoinSpec, MultiWindowJoin, Operator, Project, Reorder, Sink,
    SinkCollector, SlidingAggregate, Split, Union, WindowAggregate, WindowJoin,
};
use millstream_types::{
    BinOp, DataType, Error, Expr, Result, Schema, TimeDelta, TimestampKind, Value,
};

use crate::ast::{AstAgg, AstExpr, Projection, Query, SelectStmt, Stmt, TableRef};

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Row schema.
    pub schema: Schema,
    /// Timestamp discipline.
    pub kind: TimestampKind,
    /// Bounded-disorder slack; when set the planner inserts a `Reorder`
    /// stage right after the source.
    pub slack: Option<TimeDelta>,
}

/// The stream catalog: every `CREATE STREAM` in scope.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    streams: HashMap<String, StreamDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a stream definition.
    pub fn define(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
    ) -> Result<()> {
        self.define_with_slack(name, schema, kind, None)
    }

    /// Registers a stream that may arrive out of order within `slack`.
    pub fn define_with_slack(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        kind: TimestampKind,
        slack: Option<TimeDelta>,
    ) -> Result<()> {
        let name = name.into();
        if self.streams.contains_key(&name) {
            return Err(Error::plan(format!("stream `{name}` already defined")));
        }
        self.streams.insert(
            name,
            StreamDef {
                schema,
                kind,
                slack,
            },
        );
        Ok(())
    }

    /// Looks a stream up.
    pub fn get(&self, name: &str) -> Result<&StreamDef> {
        self.streams
            .get(name)
            .ok_or_else(|| Error::plan(format!("unknown stream `{name}`")))
    }

    /// Number of defined streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True iff no streams are defined.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Folds the DDL statements of a program into the catalog, returning
    /// the queries.
    pub fn apply(&mut self, stmts: Vec<Stmt>) -> Result<Vec<Query>> {
        let mut queries = Vec::new();
        for s in stmts {
            match s {
                Stmt::CreateStream {
                    name,
                    fields,
                    kind,
                    slack,
                } => {
                    let schema = fields
                        .into_iter()
                        .map(|(n, t)| millstream_types::Field::new(n, t))
                        .collect();
                    self.define_with_slack(name, schema, kind, slack)?;
                }
                Stmt::Query(q) => queries.push(q),
            }
        }
        Ok(queries)
    }
}

/// One planned source: which graph source corresponds to which stream.
#[derive(Debug, Clone)]
pub struct PlannedSource {
    /// Graph source id.
    pub id: SourceId,
    /// Catalog stream name.
    pub stream: String,
    /// Stream schema.
    pub schema: Schema,
    /// Timestamp discipline.
    pub kind: TimestampKind,
}

/// The output of planning one query.
///
/// Not `Debug`: the graph holds trait objects. Use
/// [`QueryGraph::describe`](millstream_exec::QueryGraph::describe) instead.
pub struct PlannedQuery {
    /// The executable graph (sink already attached).
    pub graph: QueryGraph,
    /// Sources in declaration order, for wiring workloads.
    pub sources: Vec<PlannedSource>,
    /// The topmost IWP operator (union or join), for idle monitoring.
    pub monitor: Option<NodeId>,
    /// Schema of the delivered stream.
    pub output_schema: Schema,
}

impl std::fmt::Debug for PlannedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedQuery")
            .field("sources", &self.sources)
            .field("monitor", &self.monitor)
            .field("output_schema", &self.output_schema)
            .field("ops", &self.graph.num_ops())
            .finish()
    }
}

/// Plans a full program text: DDL statements populate a catalog, and the
/// single query becomes a graph delivering to `collector`.
pub fn plan_program<C>(text: &str, collector: C) -> Result<PlannedQuery>
where
    C: SinkCollector + 'static,
{
    let stmts = crate::parser::parse_program(text)?;
    let mut catalog = Catalog::new();
    let mut queries = catalog.apply(stmts)?;
    match queries.len() {
        1 => plan_query(&catalog, &queries.pop().expect("len checked"), collector),
        0 => Err(Error::plan("program contains no query")),
        n => Err(Error::plan(format!(
            "program contains {n} queries; plan one at a time"
        ))),
    }
}

/// Plans one parsed query against a catalog.
pub fn plan_query<C>(catalog: &Catalog, query: &Query, collector: C) -> Result<PlannedQuery>
where
    C: SinkCollector + 'static,
{
    // Streams referenced by several branches are planned once and fanned
    // out through a Split, sharing the source-side work.
    let mut reference_counts: HashMap<String, usize> = HashMap::new();
    for b in &query.branches {
        *reference_counts.entry(b.from.stream.clone()).or_default() += 1;
        for j in &b.joins {
            *reference_counts.entry(j.table.stream.clone()).or_default() += 1;
        }
    }

    let mut ctx = PlanCtx {
        catalog,
        builder: GraphBuilder::new(),
        sources: Vec::new(),
        reference_counts,
        shared: HashMap::new(),
        op_seq: 0,
    };

    let mut branch_outputs: Vec<PlannedBranch> = Vec::new();
    for branch in &query.branches {
        branch_outputs.push(ctx.plan_branch(branch)?);
    }

    // Merge branches with a union if needed.
    let (top_input, output_schema, monitor) = if branch_outputs.len() == 1 {
        let b = branch_outputs.pop().expect("one branch");
        (b.input, b.schema, b.iwp_node)
    } else {
        let first_schema = branch_outputs[0].schema.clone();
        for (i, b) in branch_outputs.iter().enumerate().skip(1) {
            if !schemas_union_compatible(&first_schema, &b.schema) {
                return Err(Error::plan(format!(
                    "UNION branch {} has schema {}, incompatible with {first_schema}",
                    i + 1,
                    b.schema
                )));
            }
        }
        let all_latent = branch_outputs
            .iter()
            .all(|b| b.kind == TimestampKind::Latent);
        let n = branch_outputs.len();
        let union = if all_latent {
            Union::latent("∪", first_schema.clone(), n)
        } else {
            Union::new("∪", first_schema.clone(), n)
        };
        let inputs: Vec<Input> = branch_outputs.iter().map(|b| b.input).collect();
        let u = ctx.builder.operator(Box::new(union), inputs)?;
        (Input::Op(u), first_schema, Some(u))
    };

    let sink = Sink::new("sink", output_schema.clone(), collector);
    let top = match top_input {
        Input::Op(n) | Input::OpPort(n, _) => n,
        Input::Source(_) => {
            // A bare `SELECT * FROM s` plans no operator; insert an identity
            // projection so the sink has an operator predecessor.
            let identity = Project::new(
                "π_id",
                output_schema.clone(),
                (0..output_schema.len()).map(Expr::col).collect(),
            );
            ctx.builder.operator(Box::new(identity), vec![top_input])?
        }
    };
    ctx.builder.operator(Box::new(sink), vec![Input::Op(top)])?;

    Ok(PlannedQuery {
        graph: ctx.builder.build()?,
        sources: ctx.sources,
        monitor,
        output_schema,
    })
}

/// Derives per-source exchange partition keys for intra-component data
/// parallelism, or `None` when the query cannot be sharded safely.
///
/// A key assignment is safe iff routing on it keeps every unit of
/// operator state whole on one shard:
///
/// * **window join** — both sides route on the equi-join key columns, so
///   matching pairs meet on the same shard. A join without a cross-side
///   equality key (a window cross product) is unshardable: pairs would be
///   lost across shards.
/// * **GROUP BY** — the source routes on any one grouping column that is
///   a plain source column (same key value ⇒ same group shard, so no
///   partial aggregates). Grouping only by computed expressions is
///   unshardable. After a join, a grouping column must coincide with the
///   join key (which already determines the shard).
/// * **stateless branches** (filter/project/reorder/union) — any
///   partition works: [`ShardKey::WholeRow`].
/// * **latent streams** are unshardable: their timestamps are assigned
///   from the executing replica's clock, which is not key-deterministic.
///
/// Constraints merge across branches (a shared stream must agree):
/// `WholeRow` yields to any column constraint; two different column
/// constraints conflict → `None`.
///
/// Keys are returned in planned-source order — the order of
/// [`PlannedQuery::sources`].
pub fn shard_keys(catalog: &Catalog, query: &Query) -> Result<Option<Vec<ShardKey>>> {
    // Stream → index into `order`; constraint `None` = WholeRow so far.
    let mut order: Vec<String> = Vec::new();
    let mut constraints: HashMap<String, Option<usize>> = HashMap::new();
    let mut note = |stream: &str, col: Option<usize>| -> bool {
        if !constraints.contains_key(stream) {
            order.push(stream.to_string());
        }
        let slot = constraints.entry(stream.to_string()).or_insert(None);
        match (*slot, col) {
            (Some(a), Some(b)) if a != b => false, // conflicting keys
            (None, Some(b)) => {
                *slot = Some(b);
                true
            }
            _ => true,
        }
    };

    for b in &query.branches {
        let from_def = catalog.get(&b.from.stream)?;
        if from_def.kind == TimestampKind::Latent {
            return Ok(None);
        }
        // FROM plus every joined stream, with their bindings.
        let mut bindings: Vec<(String, Schema)> =
            vec![(b.from.binding().to_string(), from_def.schema.clone())];
        for join in &b.joins {
            let def = catalog.get(&join.table.stream)?;
            if def.kind == TimestampKind::Latent {
                return Ok(None);
            }
            bindings.push((join.table.binding().to_string(), def.schema.clone()));
        }

        // One cross-input equi-key column per input routes every matching
        // combination to one shard; a join chain without such a class is a
        // (partial) window cross product and unshardable. Key columns are
        // absolute in the concatenated row.
        let join_key: Option<Vec<usize>> = if b.joins.is_empty() {
            None
        } else {
            let mut conjuncts = Vec::new();
            for (i, join) in b.joins.iter().enumerate() {
                let prefix = Scope::nary(&bindings[..i + 2]);
                let Ok(on) = resolve_expr(&join.on, &prefix) else {
                    return Ok(None);
                };
                flatten_and(on, &mut conjuncts);
            }
            let (offsets, types) = concat_layout(&bindings);
            let Some(keys) = extract_equi_keys(&conjuncts, &offsets, &types) else {
                return Ok(None);
            };
            for (i, (&abs, &off)) in keys.iter().zip(&offsets).enumerate() {
                let stream = if i == 0 {
                    &b.from.stream
                } else {
                    &b.joins[i - 1].table.stream
                };
                if !note(stream, Some(abs - off)) {
                    return Ok(None);
                }
            }
            Some(keys)
        };

        let has_aggregates = match &b.projection {
            Projection::Star => false,
            Projection::Items(items) => items.iter().any(|i| i.expr.contains_aggregate()),
        };
        if let Some(group) = &b.group_by {
            let scope = Scope::nary(&bindings);
            let group_cols: Vec<usize> = group
                .keys
                .iter()
                .filter_map(|k| match resolve_expr(k, &scope) {
                    Ok(Expr::Column(c)) => Some(c),
                    _ => None,
                })
                .collect();
            match &join_key {
                // Joined + grouped: the shard is already fixed by the join
                // keys, so a grouping column must coincide with one.
                Some(keys) => {
                    if !group_cols.iter().any(|c| keys.contains(c)) {
                        return Ok(None);
                    }
                }
                None => {
                    let Some(&c) = group_cols.first() else {
                        return Ok(None); // only computed grouping keys
                    };
                    if !note(&b.from.stream, Some(c)) {
                        return Ok(None);
                    }
                }
            }
        } else if has_aggregates {
            return Ok(None); // bare aggregate: one global accumulator
        } else if b.joins.is_empty() && !note(&b.from.stream, None) {
            return Ok(None);
        }
    }

    Ok(Some(
        order
            .iter()
            .map(|s| match constraints[s] {
                Some(c) => ShardKey::Column(c),
                None => ShardKey::WholeRow,
            })
            .collect(),
    ))
}

/// The planned output of one SELECT branch.
struct PlannedBranch {
    input: Input,
    schema: Schema,
    kind: TimestampKind,
    /// The branch's window join, if any (monitored when it is the top op).
    iwp_node: Option<NodeId>,
}

struct PlanCtx<'a> {
    catalog: &'a Catalog,
    builder: GraphBuilder,
    sources: Vec<PlannedSource>,
    /// How many times each stream is referenced across branches.
    reference_counts: HashMap<String, usize>,
    /// Remaining Split ports for multiply-referenced streams.
    shared: HashMap<String, Vec<Input>>,
    op_seq: usize,
}

/// A name scope: bindings to (schema, column offset) in the current row.
struct Scope {
    bindings: Vec<(String, Schema, usize)>,
}

impl Scope {
    fn single(binding: &str, schema: &Schema) -> Scope {
        Scope {
            bindings: vec![(binding.to_string(), schema.clone(), 0)],
        }
    }

    fn pair(a: (&str, &Schema), b: (&str, &Schema)) -> Scope {
        let offset = a.1.len();
        Scope {
            bindings: vec![
                (a.0.to_string(), a.1.clone(), 0),
                (b.0.to_string(), b.1.clone(), offset),
            ],
        }
    }

    /// A scope over any number of inputs concatenated in order. Passing a
    /// prefix of the join chain gives SQL `ON` visibility: clause `i` sees
    /// `FROM` plus the first `i + 1` joined streams, and because offsets
    /// accumulate left-to-right the resolved column indexes are already
    /// absolute in the full concatenated row.
    fn nary(bindings: &[(String, Schema)]) -> Scope {
        let mut out = Vec::with_capacity(bindings.len());
        let mut offset = 0;
        for (b, s) in bindings {
            out.push((b.clone(), s.clone(), offset));
            offset += s.len();
        }
        Scope { bindings: out }
    }

    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        match qualifier {
            Some(q) => {
                let (_, schema, offset) = self
                    .bindings
                    .iter()
                    .find(|(b, _, _)| b == q)
                    .ok_or_else(|| Error::plan(format!("unknown table alias `{q}`")))?;
                Ok(offset + schema.index_of(name)?)
            }
            None => {
                let mut hit = None;
                for (b, schema, offset) in &self.bindings {
                    if let Ok(i) = schema.index_of(name) {
                        if hit.is_some() {
                            return Err(Error::plan(format!(
                                "column `{name}` is ambiguous; qualify it (e.g. `{b}.{name}`)"
                            )));
                        }
                        hit = Some(offset + i);
                    }
                }
                hit.ok_or_else(|| Error::UnknownColumn(name.to_string()))
            }
        }
    }
}

impl PlanCtx<'_> {
    fn next_name(&mut self, base: &str) -> String {
        self.op_seq += 1;
        format!("{base}#{}", self.op_seq)
    }

    /// Acquires one use of a stream: plans its source (with the
    /// order-restoring `Reorder` for slack-declared streams) on first use
    /// and, for streams referenced by several branches, a `Split` whose
    /// ports are handed out one per reference.
    fn add_source(&mut self, table: &TableRef) -> Result<(Input, SourceId, Schema, TimestampKind)> {
        let def = self.catalog.get(&table.stream)?.clone();
        let (schema, kind) = (def.schema, def.kind);

        // A port reserved by an earlier reference?
        if let Some(ports) = self.shared.get_mut(&table.stream) {
            let Some(input) = ports.pop() else {
                return Err(Error::plan(format!(
                    "stream `{}` referenced more often than planned",
                    table.stream
                )));
            };
            let id = self
                .sources
                .iter()
                .find(|s| s.stream == table.stream)
                .map(|s| s.id)
                .expect("shared stream was planned");
            return Ok((input, id, schema, kind));
        }

        let (id, mut input) = match def.slack {
            None => {
                let id = self
                    .builder
                    .source(table.stream.clone(), schema.clone(), kind);
                (id, Input::Source(id))
            }
            Some(slack) => {
                let id = self
                    .builder
                    .unordered_source(table.stream.clone(), schema.clone(), kind);
                let name = self.next_name("↻");
                let r = self.builder.operator(
                    Box::new(Reorder::new(name, schema.clone(), slack)),
                    vec![Input::Source(id)],
                )?;
                (id, Input::Op(r))
            }
        };
        self.sources.push(PlannedSource {
            id,
            stream: table.stream.clone(),
            schema: schema.clone(),
            kind,
        });

        let uses = self
            .reference_counts
            .get(&table.stream)
            .copied()
            .unwrap_or(1);
        if uses > 1 {
            if kind == TimestampKind::Latent {
                return Err(Error::plan(format!(
                    "latent stream `{}` cannot be shared across branches",
                    table.stream
                )));
            }
            let name = self.next_name("⋔");
            let split = self.builder.operator(
                Box::new(Split::new(name, schema.clone(), uses)),
                vec![input],
            )?;
            let mut ports: Vec<Input> = (0..uses).map(|p| Input::OpPort(split, p)).collect();
            input = ports.pop().expect("uses >= 2");
            self.shared.insert(table.stream.clone(), ports);
        }
        Ok((input, id, schema, kind))
    }

    /// Plans one SELECT branch.
    fn plan_branch(&mut self, b: &SelectStmt) -> Result<PlannedBranch> {
        let (src_input, _src, src_schema, kind) = self.add_source(&b.from)?;
        let mut iwp_node = None;

        let (mut input, mut schema, scope) = match b.joins.len() {
            0 => {
                let scope = Scope::single(b.from.binding(), &src_schema);
                (src_input, src_schema.clone(), scope)
            }
            1 => {
                let join = &b.joins[0];
                let (src2_input, _src2, schema2, kind2) = self.add_source(&join.table)?;
                if kind == TimestampKind::Latent || kind2 == TimestampKind::Latent {
                    return Err(Error::plan(
                        "window joins require real timestamps; latent streams cannot be joined",
                    ));
                }
                let scope = Scope::pair(
                    (b.from.binding(), &src_schema),
                    (join.table.binding(), &schema2),
                );
                let on = resolve_expr(&join.on, &scope)?;
                let (key, residual) = split_join_condition(on, src_schema.len());
                let joined = src_schema.join(&schema2, b.from.binding(), join.table.binding());
                let mut spec = JoinSpec {
                    window_a: join.window,
                    window_b: join.window,
                    key,
                    residual,
                    progress_punctuation: false,
                };
                if spec.key.is_none() && spec.residual.is_none() {
                    // ON TRUE etc. — a pure window cross product.
                    spec.residual = Some(Expr::lit(true));
                }
                let name = self.next_name("⋈");
                let op = WindowJoin::new(name, joined.clone(), spec)
                    .with_tier(millstream_ops::TierConfig::from_env());
                let j = self
                    .builder
                    .operator(Box::new(op), vec![src_input, src2_input])?;
                iwp_node = Some(j);
                (Input::Op(j), joined, scope)
            }
            _ => {
                // Two or more JOIN clauses: plan one n-ary MultiWindowJoin
                // over FROM plus every joined stream. Input 0 (FROM) has no
                // WINDOW clause of its own and shares the first join's.
                if kind == TimestampKind::Latent {
                    return Err(Error::plan(
                        "window joins require real timestamps; latent streams cannot be joined",
                    ));
                }
                let mut inputs = vec![src_input];
                let mut bindings: Vec<(String, Schema)> =
                    vec![(b.from.binding().to_string(), src_schema.clone())];
                let mut windows = vec![b.joins[0].window];
                for join in &b.joins {
                    let (in_n, _src_n, schema_n, kind_n) = self.add_source(&join.table)?;
                    if kind_n == TimestampKind::Latent {
                        return Err(Error::plan(
                            "window joins require real timestamps; latent streams cannot be joined",
                        ));
                    }
                    inputs.push(in_n);
                    bindings.push((join.table.binding().to_string(), schema_n));
                    windows.push(join.window);
                }
                // Each ON clause resolves against the prefix of streams
                // visible at that clause; the indexes come out absolute in
                // the concatenated row (see `Scope::nary`).
                let mut conjuncts = Vec::new();
                for (i, join) in b.joins.iter().enumerate() {
                    let prefix = Scope::nary(&bindings[..i + 2]);
                    let on = resolve_expr(&join.on, &prefix)?;
                    flatten_and(on, &mut conjuncts);
                }
                let (offsets, types) = concat_layout(&bindings);
                let keys_abs = extract_equi_keys(&conjuncts, &offsets, &types);
                // Conjuncts the hash keys enforce are dropped from the
                // residual condition; the rest are ANDed back together.
                let condition = conjuncts
                    .into_iter()
                    .filter(|c| !is_enforced_key_edge(c, keys_abs.as_deref()))
                    .reduce(Expr::and);
                let schemas: Vec<Schema> = bindings.iter().map(|(_, s)| s.clone()).collect();
                let joined = join_schemas(&bindings);
                let name = self.next_name("⋈");
                let mut op = MultiWindowJoin::new(name, &schemas, windows, condition);
                if let Some(keys) = &keys_abs {
                    // Absolute → input-relative key columns.
                    op = op.with_keys(keys.iter().zip(&offsets).map(|(k, o)| k - o).collect());
                }
                let op = op.with_tier(millstream_ops::TierConfig::from_env());
                let j = self.builder.operator(Box::new(op), inputs)?;
                iwp_node = Some(j);
                let scope = Scope::nary(&bindings);
                (Input::Op(j), joined, scope)
            }
        };

        if let Some(filter) = &b.filter {
            let predicate = resolve_expr(filter, &scope)?;
            if predicate.infer_type(&schema)? != DataType::Bool {
                return Err(Error::plan("WHERE predicate must be boolean"));
            }
            let name = self.next_name("σ");
            let f = self.builder.operator(
                Box::new(Filter::new(name, schema.clone(), predicate)),
                vec![input],
            )?;
            input = Input::Op(f);
        }

        // Projection / aggregation.
        let has_aggregates = match &b.projection {
            Projection::Star => false,
            Projection::Items(items) => items.iter().any(|i| i.expr.contains_aggregate()),
        };
        if b.group_by.is_some() || has_aggregates {
            let (node, out_schema) = self.plan_aggregate(b, input, &schema, &scope)?;
            input = Input::Op(node);
            schema = out_schema;
            if let Some(having) = &b.having {
                // HAVING resolves against the aggregate's *output* columns
                // (window_start, group keys, aggregate aliases).
                let having_scope = Scope::single("", &schema);
                let predicate = resolve_expr(having, &having_scope)?;
                if predicate.infer_type(&schema)? != DataType::Bool {
                    return Err(Error::plan("HAVING predicate must be boolean"));
                }
                let name = self.next_name("σH");
                let f = self.builder.operator(
                    Box::new(Filter::new(name, schema.clone(), predicate)),
                    vec![input],
                )?;
                input = Input::Op(f);
            }
        } else if b.having.is_some() {
            return Err(Error::plan("HAVING requires GROUP BY"));
        } else if let Projection::Items(items) = &b.projection {
            let mut exprs = Vec::with_capacity(items.len());
            let mut fields = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let e = resolve_expr(&item.expr, &scope)?;
                let ty = e.infer_type(&schema)?;
                let name = item
                    .alias
                    .clone()
                    .or_else(|| column_name(&item.expr))
                    .unwrap_or_else(|| format!("col{i}"));
                fields.push(millstream_types::Field::new(name, ty));
                exprs.push(e);
            }
            let out_schema: Schema = fields.into_iter().collect();
            let name = self.next_name("π");
            let p = self.builder.operator(
                Box::new(Project::new(name, out_schema.clone(), exprs)),
                vec![input],
            )?;
            input = Input::Op(p);
            schema = out_schema;
        }

        Ok(PlannedBranch {
            input,
            schema,
            kind,
            iwp_node,
        })
    }

    fn plan_aggregate(
        &mut self,
        b: &SelectStmt,
        input: Input,
        schema: &Schema,
        scope: &Scope,
    ) -> Result<(NodeId, Schema)> {
        let group = b.group_by.as_ref().ok_or_else(|| {
            Error::plan("aggregate functions require GROUP BY ... EVERY <window>")
        })?;
        let Projection::Items(items) = &b.projection else {
            return Err(Error::plan("SELECT * cannot be combined with GROUP BY"));
        };

        // Resolve group keys.
        let mut keys: Vec<(String, Expr)> = Vec::with_capacity(group.keys.len());
        for (i, k) in group.keys.iter().enumerate() {
            let e = resolve_expr(k, scope)?;
            let name = column_name(k).unwrap_or_else(|| format!("k{i}"));
            keys.push((name, e));
        }

        // Every item must be either a group key or an aggregate call.
        let mut aggs: Vec<AggExpr> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match &item.expr {
                AstExpr::Agg { func, arg } => {
                    let resolved = match arg {
                        Some(a) => resolve_expr(a, scope)?,
                        None => Expr::lit(Value::Int(1)),
                    };
                    let name = item.alias.clone().unwrap_or_else(|| {
                        format!("{}{}", agg_func(*func).name().to_lowercase(), i)
                    });
                    aggs.push(AggExpr {
                        func: agg_func(*func),
                        arg: resolved,
                        name,
                    });
                }
                other => {
                    let e = resolve_expr(other, scope)?;
                    if !keys.iter().any(|(_, k)| *k == e) {
                        return Err(Error::plan(format!(
                            "non-aggregate SELECT item {} must appear in GROUP BY",
                            i + 1
                        )));
                    }
                }
            }
        }
        let name = self.next_name("γ");
        // `GROUP BY … WINDOW w EVERY s` plans a pane-based sliding window;
        // without the WINDOW clause the window tumbles with the period.
        let (op, out_schema): (Box<dyn Operator>, Schema) = match group.window {
            Some(window) if window != group.every => {
                let agg = SlidingAggregate::new(name, schema, window, group.every, keys, aggs)?;
                let out = agg.output_schema().clone();
                (Box::new(agg), out)
            }
            _ => {
                let agg = WindowAggregate::new(name, schema, group.every, keys, aggs)?;
                let out = agg.output_schema().clone();
                (Box::new(agg), out)
            }
        };
        let node = self.builder.operator(op, vec![input])?;
        Ok((node, out_schema))
    }
}

fn agg_func(a: AstAgg) -> AggFunc {
    match a {
        AstAgg::Count => AggFunc::Count,
        AstAgg::Sum => AggFunc::Sum,
        AstAgg::Min => AggFunc::Min,
        AstAgg::Max => AggFunc::Max,
        AstAgg::Avg => AggFunc::Avg,
    }
}

/// A display name for simple column expressions.
fn column_name(e: &AstExpr) -> Option<String> {
    match e {
        AstExpr::Column { name, .. } => Some(name.clone()),
        _ => None,
    }
}

/// Resolves a surface expression against a scope into a physical [`Expr`].
fn resolve_expr(e: &AstExpr, scope: &Scope) -> Result<Expr> {
    Ok(match e {
        AstExpr::Column { qualifier, name } => {
            Expr::col(scope.resolve_column(qualifier.as_deref(), name)?)
        }
        AstExpr::Literal(v) => Expr::Literal(v.clone()),
        AstExpr::Not(inner) => Expr::Not(Box::new(resolve_expr(inner, scope)?)),
        AstExpr::Neg(inner) => Expr::Neg(Box::new(resolve_expr(inner, scope)?)),
        AstExpr::IsNull(inner) => Expr::IsNull(Box::new(resolve_expr(inner, scope)?)),
        AstExpr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, scope)?),
            right: Box::new(resolve_expr(right, scope)?),
        },
        AstExpr::Agg { .. } => {
            return Err(Error::plan(
                "aggregate calls are only allowed in the SELECT list",
            ));
        }
    })
}

/// Column offsets and per-column data types of the concatenated n-ary
/// join row.
fn concat_layout(bindings: &[(String, Schema)]) -> (Vec<usize>, Vec<DataType>) {
    let mut offsets = Vec::with_capacity(bindings.len());
    let mut types = Vec::new();
    for (_, s) in bindings {
        offsets.push(types.len());
        types.extend(s.fields().iter().map(|f| f.data_type));
    }
    (offsets, types)
}

/// Concatenates the inputs' schemas in order, prefixing any column name
/// that also occurs in another input with its binding (the n-ary
/// generalization of [`Schema::join`]).
fn join_schemas(bindings: &[(String, Schema)]) -> Schema {
    let mut fields = Vec::new();
    for (i, (binding, schema)) in bindings.iter().enumerate() {
        for f in schema.fields() {
            let collides = bindings
                .iter()
                .enumerate()
                .any(|(j, (_, other))| j != i && other.index_of(&f.name).is_ok());
            let name = if collides {
                format!("{binding}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(millstream_types::Field::new(name, f.data_type));
        }
    }
    fields.into_iter().collect()
}

/// Finds one equality class of columns — linked by cross-input `=`
/// conjuncts — that covers every join input, and returns one key column
/// per input (the lowest-indexed member in each), absolute in the
/// concatenated row.
///
/// The n-ary join enforces key equality by hash-bucket lookup, so a class
/// is only usable when every chosen column has the same data type: within
/// one type `Value` equality is transitive, making bucket-key equality
/// exactly equivalent to the conjunct chain it replaces. Mixed-type
/// chains (e.g. INT = FLOAT) stay residual predicates instead.
fn extract_equi_keys(
    conjuncts: &[Expr],
    offsets: &[usize],
    types: &[DataType],
) -> Option<Vec<usize>> {
    let input_of = |c: usize| offsets.partition_point(|&o| o <= c) - 1;
    let mut parent: Vec<usize> = (0..types.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        {
            if let (Expr::Column(i), Expr::Column(j)) = (left.as_ref(), right.as_ref()) {
                if input_of(*i) != input_of(*j) {
                    let (ri, rj) = (find(&mut parent, *i), find(&mut parent, *j));
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    // Per class root, the lowest member column of each input.
    let mut classes: HashMap<usize, Vec<Option<usize>>> = HashMap::new();
    for c in 0..types.len() {
        let root = find(&mut parent, c);
        let members = classes
            .entry(root)
            .or_insert_with(|| vec![None; offsets.len()]);
        let slot = &mut members[input_of(c)];
        if slot.is_none() {
            *slot = Some(c);
        }
    }
    // Among classes covering every input with one shared type, pick the
    // one rooted at the lowest column (classes are disjoint, so this is
    // deterministic despite the map's iteration order).
    let mut best: Option<Vec<usize>> = None;
    for members in classes.into_values() {
        let Some(keys) = members.into_iter().collect::<Option<Vec<usize>>>() else {
            continue;
        };
        if keys.iter().any(|&k| types[k] != types[keys[0]]) {
            continue;
        }
        if best.as_ref().is_none_or(|b| keys[0] < b[0]) {
            best = Some(keys);
        }
    }
    best
}

/// True iff `c` is an equality between two *chosen key columns* of
/// different inputs — exactly the conjuncts the keyed hash probe already
/// enforces (equalities through non-key members of the class must stay in
/// the residual).
fn is_enforced_key_edge(c: &Expr, keys: Option<&[usize]>) -> bool {
    let Some(keys) = keys else { return false };
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = c
    {
        if let (Expr::Column(i), Expr::Column(j)) = (left.as_ref(), right.as_ref()) {
            return i != j && keys.contains(i) && keys.contains(j);
        }
    }
    false
}

/// Splits a resolved join condition into an equality key pair (columns on
/// opposite sides) and a residual predicate over the concatenated row.
fn split_join_condition(on: Expr, left_width: usize) -> (Option<(usize, usize)>, Option<Expr>) {
    // Flatten top-level conjunction.
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut key = None;
    let mut residual: Option<Expr> = None;
    for c in conjuncts {
        if key.is_none() {
            if let Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } = &c
            {
                if let (Expr::Column(i), Expr::Column(j)) = (left.as_ref(), right.as_ref()) {
                    if *i < left_width && *j >= left_width {
                        key = Some((*i, *j - left_width));
                        continue;
                    }
                    if *j < left_width && *i >= left_width {
                        key = Some((*j, *i - left_width));
                        continue;
                    }
                }
            }
        }
        residual = Some(match residual {
            None => c,
            Some(r) => r.and(c),
        });
    }
    (key, residual)
}

fn flatten_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            flatten_and(*left, out);
            flatten_and(*right, out);
        }
        other => out.push(other),
    }
}

/// Union compatibility: equal column types positionally (names may differ).
fn schemas_union_compatible(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(x, y)| x.data_type == y.data_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use millstream_ops::VecCollector;

    const DDL: &str = "
        CREATE STREAM packets (src INT, len INT);
        CREATE STREAM flows (src INT, len INT);
        CREATE STREAM alerts (src INT, severity INT);
    ";

    fn plan(query: &str) -> Result<PlannedQuery> {
        plan_program(&format!("{DDL}{query};"), VecCollector::default())
    }

    #[test]
    fn plans_fig4_style_union() {
        let p = plan(
            "SELECT src, len FROM packets WHERE len > 100
             UNION
             SELECT src, len FROM flows WHERE len > 100",
        )
        .unwrap();
        assert_eq!(p.sources.len(), 2);
        assert!(p.monitor.is_some(), "the union is monitored");
        assert_eq!(p.output_schema.len(), 2);
        // σ and π per branch, plus ∪ and sink = 2·2 + 1 + 1 ops.
        assert_eq!(p.graph.num_ops(), 6);
        assert!(p.graph.is_iwp(p.monitor.unwrap()));
    }

    #[test]
    fn plans_select_star_passthrough() {
        let p = plan("SELECT * FROM packets").unwrap();
        assert_eq!(p.output_schema.len(), 2);
        assert!(p.monitor.is_none());
        // identity π + sink.
        assert_eq!(p.graph.num_ops(), 2);
    }

    #[test]
    fn plans_window_join_with_key_and_residual() {
        let p = plan(
            "SELECT a.src FROM packets AS a JOIN alerts AS b \
             ON a.src = b.src AND b.severity > 3 WINDOW 5 SECONDS",
        )
        .unwrap();
        assert_eq!(p.sources.len(), 2);
        assert!(p.monitor.is_some());
        // join, π, sink.
        assert_eq!(p.graph.num_ops(), 3);
        assert_eq!(p.output_schema.len(), 1);
    }

    #[test]
    fn plans_nary_join_with_equi_class_keys() {
        let p = plan(
            "SELECT a.src FROM packets AS a \
             JOIN flows AS b ON a.src = b.src WINDOW 5 SECONDS \
             JOIN alerts AS c ON b.src = c.src AND c.severity > 3 WINDOW 5 SECONDS",
        )
        .unwrap();
        assert_eq!(p.sources.len(), 3);
        assert!(p.monitor.is_some());
        // one n-ary join, π, sink.
        assert_eq!(p.graph.num_ops(), 3);
        assert!(p.graph.is_iwp(p.monitor.unwrap()));
        assert_eq!(p.output_schema.len(), 1);
    }

    #[test]
    fn nary_join_schema_qualifies_collisions() {
        let p = plan(
            "SELECT * FROM packets AS a \
             JOIN flows AS b ON a.src = b.src WINDOW 5 SECONDS \
             JOIN alerts AS c ON b.src = c.src WINDOW 5 SECONDS",
        )
        .unwrap();
        // src collides across all three inputs; len across two; severity
        // is unique and keeps its bare name.
        assert_eq!(p.output_schema.len(), 6);
        assert!(p.output_schema.index_of("a.src").is_ok());
        assert!(p.output_schema.index_of("c.src").is_ok());
        assert!(p.output_schema.index_of("severity").is_ok());
    }

    #[test]
    fn plans_grouped_aggregate() {
        let p = plan(
            "SELECT src, COUNT(*) AS n, AVG(len) AS mean FROM packets \
             GROUP BY src EVERY 10 SECONDS",
        )
        .unwrap();
        // window_start + src + n + mean.
        assert_eq!(p.output_schema.len(), 4);
        assert_eq!(p.output_schema.field(2).unwrap().name, "n");
        assert_eq!(p.output_schema.field(3).unwrap().data_type, DataType::Float);
    }

    #[test]
    fn plans_having_as_post_aggregate_filter() {
        let p = plan(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src EVERY 10 SECONDS HAVING n > 5",
        )
        .unwrap();
        // σ + γ + σH + sink.
        assert_eq!(p.graph.num_ops(), 3);
        assert!(p.graph.describe().contains("σH"));
        // Unknown HAVING column is a plan error.
        assert!(plan(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src EVERY 10 SECONDS HAVING wat > 5",
        )
        .is_err());
    }

    #[test]
    fn rejects_unknown_stream_and_column() {
        assert!(matches!(plan("SELECT * FROM nope"), Err(Error::Plan(_))));
        assert!(plan("SELECT wat FROM packets").is_err());
    }

    #[test]
    fn rejects_ambiguous_column() {
        let err =
            plan("SELECT src FROM packets AS a JOIN flows AS b ON a.src = b.src WINDOW 1 SECONDS")
                .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn shared_stream_is_split_not_rejected() {
        // The same stream in two branches plans one source + a Split.
        let p = plan(
            "SELECT src FROM packets WHERE len > 100 \
             UNION SELECT len FROM packets WHERE src = 1",
        )
        .unwrap();
        assert_eq!(p.sources.len(), 1, "one physical source");
        assert!(p.graph.describe().contains("⋔"), "{}", p.graph.describe());
        // ⋔ + 2×(σ+π) + ∪ + sink.
        assert_eq!(p.graph.num_ops(), 7);
    }

    #[test]
    fn rejects_incompatible_union() {
        let err = plan("SELECT src FROM packets UNION SELECT * FROM flows").unwrap_err();
        assert!(err.to_string().contains("incompatible"), "{err}");
    }

    #[test]
    fn rejects_aggregate_in_where() {
        let err = plan("SELECT src FROM packets WHERE COUNT(*) > 3").unwrap_err();
        assert!(err.to_string().contains("SELECT list"), "{err}");
    }

    #[test]
    fn rejects_non_grouped_item() {
        let err = plan("SELECT len, COUNT(*) AS n FROM packets GROUP BY src EVERY 1 SECONDS")
            .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn rejects_bare_aggregate_without_group() {
        let err = plan("SELECT COUNT(*) AS n FROM packets").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn sliding_group_by_plans_pane_aggregate() {
        let p = plan(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src WINDOW 30 SECONDS EVERY 10 SECONDS",
        )
        .unwrap();
        assert_eq!(p.output_schema.field(0).unwrap().name, "window_start");
        assert_eq!(p.output_schema.len(), 3);
        // Window not a multiple of the slide is rejected at plan time.
        let err = plan(
            "SELECT src, COUNT(*) AS n FROM packets \
             GROUP BY src WINDOW 25 SECONDS EVERY 10 SECONDS",
        )
        .unwrap_err();
        assert!(err.to_string().contains("multiple"), "{err}");
    }

    #[test]
    fn slack_stream_gets_a_reorder_stage() {
        let p = plan_program(
            "CREATE STREAM feed (v INT) TIMESTAMP EXTERNAL SLACK 100 MILLISECONDS;
             SELECT v FROM feed WHERE v > 0;",
            VecCollector::default(),
        )
        .unwrap();
        // reorder + σ + π + sink.
        assert_eq!(p.graph.num_ops(), 4);
        assert!(p.graph.describe().contains("↻"));
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        c.define("s", Schema::empty(), TimestampKind::Internal)
            .unwrap();
        assert!(c
            .define("s", Schema::empty(), TimestampKind::Internal)
            .is_err());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    fn keys_for(query: &str) -> Result<Option<Vec<ShardKey>>> {
        let stmts = crate::parser::parse_program(&format!("{DDL}{query};"))?;
        let mut catalog = Catalog::new();
        let queries = catalog.apply(stmts)?;
        shard_keys(&catalog, &queries[0])
    }

    #[test]
    fn shard_keys_stateless_is_whole_row() {
        assert_eq!(
            keys_for("SELECT src FROM packets WHERE len > 100").unwrap(),
            Some(vec![ShardKey::WholeRow])
        );
        assert_eq!(
            keys_for("SELECT src FROM packets UNION SELECT src FROM flows").unwrap(),
            Some(vec![ShardKey::WholeRow, ShardKey::WholeRow])
        );
    }

    #[test]
    fn shard_keys_group_by_routes_on_group_column() {
        assert_eq!(
            keys_for(
                "SELECT src, COUNT(*) AS n FROM packets \
                 GROUP BY src EVERY 10 SECONDS"
            )
            .unwrap(),
            Some(vec![ShardKey::Column(0)])
        );
    }

    #[test]
    fn shard_keys_join_routes_on_equi_key() {
        assert_eq!(
            keys_for(
                "SELECT a.src FROM packets AS a JOIN alerts AS b \
                 ON a.src = b.src WINDOW 5 SECONDS"
            )
            .unwrap(),
            Some(vec![ShardKey::Column(0), ShardKey::Column(0)])
        );
        // Cross product: no equi key, unshardable.
        assert_eq!(
            keys_for(
                "SELECT a.src FROM packets AS a JOIN alerts AS b \
                 ON b.severity > 3 WINDOW 5 SECONDS"
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn shard_keys_nary_join_routes_on_equi_class() {
        assert_eq!(
            keys_for(
                "SELECT a.src FROM packets AS a \
                 JOIN flows AS b ON a.src = b.src WINDOW 5 SECONDS \
                 JOIN alerts AS c ON b.src = c.src WINDOW 5 SECONDS"
            )
            .unwrap(),
            Some(vec![
                ShardKey::Column(0),
                ShardKey::Column(0),
                ShardKey::Column(0)
            ])
        );
        // No equality class spans all three inputs → unshardable.
        assert_eq!(
            keys_for(
                "SELECT a.src FROM packets AS a \
                 JOIN flows AS b ON a.src = b.src WINDOW 5 SECONDS \
                 JOIN alerts AS c ON c.severity > 0 WINDOW 5 SECONDS"
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn shard_keys_conflicts_and_bare_aggregates_are_unshardable() {
        // Same stream needing two different keys across branches.
        assert_eq!(
            keys_for(
                "SELECT src, COUNT(*) AS n FROM packets GROUP BY src EVERY 1 SECONDS \
                 UNION \
                 SELECT len, COUNT(*) AS n FROM packets GROUP BY len EVERY 1 SECONDS"
            )
            .unwrap(),
            None
        );
        // WholeRow yields to a column constraint on a shared stream.
        assert_eq!(
            keys_for(
                "SELECT src, len FROM packets WHERE len > 0 \
                 UNION \
                 SELECT src, SUM(len) AS len FROM packets GROUP BY src EVERY 1 SECONDS"
            )
            .unwrap(),
            Some(vec![ShardKey::Column(0)])
        );
    }

    #[test]
    fn split_join_condition_variants() {
        // col0 = col2 with left width 2 → key (0, 0).
        let on = Expr::col(0).eq(Expr::col(2));
        let (key, residual) = split_join_condition(on, 2);
        assert_eq!(key, Some((0, 0)));
        assert!(residual.is_none());

        // Reversed sides still split.
        let on = Expr::col(3).eq(Expr::col(1));
        let (key, residual) = split_join_condition(on, 2);
        assert_eq!(key, Some((1, 1)));
        assert!(residual.is_none());

        // Same-side equality is residual, not key.
        let on = Expr::col(0).eq(Expr::col(1));
        let (key, residual) = split_join_condition(on, 2);
        assert_eq!(key, None);
        assert!(residual.is_some());

        // Conjunction: first cross-side eq is the key, rest residual.
        let on = Expr::col(0)
            .eq(Expr::col(2))
            .and(Expr::col(3).gt(Expr::lit(5)));
        let (key, residual) = split_join_condition(on, 2);
        assert_eq!(key, Some((0, 0)));
        assert!(residual.is_some());
    }
}
