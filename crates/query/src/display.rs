//! Pretty-printing of the query AST back to surface syntax.
//!
//! Every AST node renders to text that re-parses to the same AST
//! (verified by the round-trip property tests in `tests/roundtrip.rs`).
//! Used for plan diagnostics, error messages and query normalization.

use std::fmt;

use millstream_types::{TimeDelta, TimestampKind, Value};

use crate::ast::{
    AstAgg, AstExpr, GroupByClause, JoinClause, Projection, Query, SelectItem, SelectStmt, Stmt,
    TableRef,
};

/// Renders a duration in the language's unit syntax, choosing the largest
/// exact unit.
fn fmt_duration(f: &mut fmt::Formatter<'_>, d: TimeDelta) -> fmt::Result {
    let us = d.as_micros();
    if us.is_multiple_of(60_000_000) && us > 0 {
        write!(f, "{} MINUTES", us / 60_000_000)
    } else if us.is_multiple_of(1_000_000) {
        write!(f, "{} SECONDS", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        write!(f, "{} MILLISECONDS", us / 1_000)
    } else {
        // Sub-millisecond durations render as fractional milliseconds.
        write!(f, "{} MILLISECONDS", us as f64 / 1_000.0)
    }
}

struct Duration(TimeDelta);

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_duration(f, self.0)
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::CreateStream {
                name,
                fields,
                kind,
                slack,
            } => {
                write!(f, "CREATE STREAM {name} (")?;
                for (i, (col, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} {ty}")?;
                }
                write!(f, ")")?;
                let kw = match kind {
                    TimestampKind::Internal => "INTERNAL",
                    TimestampKind::External => "EXTERNAL",
                    TimestampKind::Latent => "LATENT",
                };
                write!(f, " TIMESTAMP {kw}")?;
                if let Some(s) = slack {
                    write!(f, " SLACK {}", Duration(*s))?;
                }
                Ok(())
            }
            Stmt::Query(q) => write!(f, "{q}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " UNION ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", self.projection)?;
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " {g}")?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Star => write!(f, "*"),
            Projection::Items(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stream)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for JoinClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JOIN {} ON {} WINDOW {}",
            self.table,
            self.on,
            Duration(self.window)
        )
    }
}

impl fmt::Display for GroupByClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GROUP BY ")?;
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        if let Some(w) = self.window {
            write!(f, " WINDOW {}", Duration(w))?;
        }
        write!(f, " EVERY {}", Duration(self.every))
    }
}

impl fmt::Display for AstAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AstAgg::Count => "COUNT",
            AstAgg::Sum => "SUM",
            AstAgg::Min => "MIN",
            AstAgg::Max => "MAX",
            AstAgg::Avg => "AVG",
        };
        f.write_str(s)
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            AstExpr::Literal(v) => match v {
                // The language spells booleans/null as keywords and strings
                // with single quotes (Value's Display already matches).
                Value::Bool(true) => write!(f, "TRUE"),
                Value::Bool(false) => write!(f, "FALSE"),
                Value::Null => write!(f, "NULL"),
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                other => write!(f, "{other}"),
            },
            AstExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            // NOT and IS NULL bind looser than comparisons in the grammar,
            // so they are parenthesized to stay valid at operand position.
            AstExpr::Not(e) => write!(f, "(NOT ({e}))"),
            AstExpr::Neg(e) => write!(f, "-({e})"),
            AstExpr::IsNull(e) => write!(f, "(({e}) IS NULL)"),
            AstExpr::Agg { func, arg } => match arg {
                None => write!(f, "{func}(*)"),
                Some(a) => write!(f, "{func}({a})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(text: &str) {
        let ast1 = parse_program(text).expect("first parse");
        let printed: Vec<String> = ast1.iter().map(|s| s.to_string()).collect();
        let joined = printed.join(";\n");
        let ast2 =
            parse_program(&joined).unwrap_or_else(|e| panic!("reparse of `{joined}` failed: {e}"));
        assert_eq!(ast1, ast2, "printed form `{joined}` changed the AST");
    }

    #[test]
    fn create_stream_roundtrips() {
        roundtrip("CREATE STREAM s (a INT, b FLOAT, c STRING, d BOOL)");
        roundtrip("CREATE STREAM s (a INT) TIMESTAMP EXTERNAL SLACK 250 MILLISECONDS");
        roundtrip("CREATE STREAM s (a INT) TIMESTAMP LATENT");
    }

    #[test]
    fn select_roundtrips() {
        roundtrip("CREATE STREAM s (a INT, b INT); SELECT * FROM s");
        roundtrip("CREATE STREAM s (a INT, b INT); SELECT a, a + b AS total FROM s WHERE a > 3");
        roundtrip(
            "CREATE STREAM s (a INT); CREATE STREAM t (a INT); \
             SELECT a FROM s UNION SELECT a FROM t",
        );
    }

    #[test]
    fn join_and_group_roundtrip() {
        roundtrip(
            "CREATE STREAM s (k INT, v INT); CREATE STREAM t (k INT, w INT); \
             SELECT s.k, v, w FROM s JOIN t ON s.k = t.k AND w > 0 WINDOW 5 SECONDS",
        );
        roundtrip(
            "CREATE STREAM s (k INT, v INT); \
             SELECT k, COUNT(*) AS n, AVG(v) AS m FROM s GROUP BY k EVERY 2 MINUTES",
        );
        roundtrip(
            "CREATE STREAM s (k INT); CREATE STREAM t (k INT); CREATE STREAM u (k INT); \
             SELECT s.k FROM s JOIN t ON s.k = t.k WINDOW 5 SECONDS \
             JOIN u ON t.k = u.k WINDOW 5 SECONDS",
        );
    }

    #[test]
    fn tricky_expressions_roundtrip() {
        roundtrip("CREATE STREAM s (a INT, b BOOL); SELECT * FROM s WHERE NOT (b) OR a - -(3) = 5");
        roundtrip("CREATE STREAM s (a STRING); SELECT * FROM s WHERE a = 'it''s'");
        roundtrip("CREATE STREAM s (a INT); SELECT * FROM s WHERE a IS NULL");
        roundtrip("CREATE STREAM s (a INT); SELECT * FROM s WHERE a IS NOT NULL");
        roundtrip("CREATE STREAM s (a FLOAT); SELECT * FROM s WHERE a > 2.5");
    }

    #[test]
    fn duration_rendering_picks_units() {
        assert_eq!(Duration(TimeDelta::from_secs(120)).to_string(), "2 MINUTES");
        assert_eq!(Duration(TimeDelta::from_secs(5)).to_string(), "5 SECONDS");
        assert_eq!(
            Duration(TimeDelta::from_millis(250)).to_string(),
            "250 MILLISECONDS"
        );
        assert_eq!(
            Duration(TimeDelta::from_micros(1_500)).to_string(),
            "1.5 MILLISECONDS"
        );
    }
}
