//! Tokenizer for the millstream continuous-query language.
//!
//! A deliberately small SQL-flavoured surface (standing in for Stream
//! Mill's ESL): keywords, identifiers, integer/float/string literals and
//! punctuation, with `--` line comments. Every token carries its source
//! position for error reporting.

use millstream_types::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Create,
    Stream,
    Select,
    From,
    Where,
    Union,
    All,
    Join,
    On,
    As,
    Window,
    Group,
    By,
    Having,
    And,
    Or,
    Not,
    Is,
    Null,
    True,
    False,
    Int,
    Float,
    Bool,
    String,
    Timestamp,
    Internal,
    External,
    Latent,
    Slack,
    Seconds,
    Milliseconds,
    Minutes,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Every,
    Into,
}

impl Keyword {
    fn parse(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "CREATE" => Create,
            "STREAM" => Stream,
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "UNION" => Union,
            "ALL" => All,
            "JOIN" => Join,
            "ON" => On,
            "AS" => As,
            "WINDOW" => Window,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "INT" | "INTEGER" => Int,
            "FLOAT" | "DOUBLE" => Float,
            "BOOL" | "BOOLEAN" => Bool,
            "STRING" | "VARCHAR" => String,
            "TIMESTAMP" => Timestamp,
            "INTERNAL" => Internal,
            "EXTERNAL" => External,
            "LATENT" => Latent,
            "SLACK" => Slack,
            "SECONDS" | "SECOND" => Seconds,
            "MILLISECONDS" | "MILLISECOND" => Milliseconds,
            "MINUTES" | "MINUTE" => Minutes,
            "COUNT" => Count,
            "SUM" => Sum,
            "MIN" => Min,
            "MAX" => Max,
            "AVG" => Avg,
            "EVERY" => Every,
            "INTO" => Into,
            _ => return None,
        })
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub column: u32,
}

/// Tokenizes a query text.
pub fn lex(text: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $at_col:expr) => {
            out.push(Spanned {
                tok: $tok,
                line,
                column: $at_col,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let start_col = col;
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            c if c.is_whitespace() => {}
            '-' if bytes.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            ',' => push!(Tok::Comma, start_col),
            '(' => push!(Tok::LParen, start_col),
            ')' => push!(Tok::RParen, start_col),
            ';' => push!(Tok::Semi, start_col),
            '.' => push!(Tok::Dot, start_col),
            '*' => push!(Tok::Star, start_col),
            '+' => push!(Tok::Plus, start_col),
            '-' => push!(Tok::Minus, start_col),
            '/' => push!(Tok::Slash, start_col),
            '%' => push!(Tok::Percent, start_col),
            '=' => push!(Tok::Eq, start_col),
            '!' if bytes.get(i + 1) == Some(&'=') => {
                push!(Tok::Ne, start_col);
                i += 1;
                col += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some('=') => {
                    push!(Tok::Le, start_col);
                    i += 1;
                    col += 1;
                }
                Some('>') => {
                    push!(Tok::Ne, start_col);
                    i += 1;
                    col += 1;
                }
                _ => push!(Tok::Lt, start_col),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Ge, start_col);
                    i += 1;
                    col += 1;
                } else {
                    push!(Tok::Gt, start_col);
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    if bytes[j] == '\'' {
                        if bytes.get(j + 1) == Some(&'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        closed = true;
                        break;
                    }
                    if bytes[j] == '\n' {
                        break;
                    }
                    s.push(bytes[j]);
                    j += 1;
                }
                if !closed {
                    return Err(Error::parse("unterminated string literal", line, start_col));
                }
                col += (j - i) as u32;
                i = j;
                push!(Tok::Str(s), start_col);
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == '.'
                            && !is_float
                            && bytes.get(j + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    if bytes[j] == '.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                col += (j - i - 1) as u32;
                i = j - 1;
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| {
                        Error::parse(format!("bad float `{text}`"), line, start_col)
                    })?;
                    push!(Tok::Float(v), start_col);
                } else {
                    let v = text.parse::<i64>().map_err(|_| {
                        Error::parse(format!("bad integer `{text}`"), line, start_col)
                    })?;
                    push!(Tok::Int(v), start_col);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let word: String = bytes[i..j].iter().collect();
                col += (j - i - 1) as u32;
                i = j - 1;
                match Keyword::parse(&word) {
                    Some(k) => push!(Tok::Keyword(k), start_col),
                    None => push!(Tok::Ident(word), start_col),
                }
            }
            other => {
                return Err(Error::parse(
                    format!("unexpected character `{other}`"),
                    line,
                    start_col,
                ));
            }
        }
        i += 1;
        col += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Tok> {
        lex(text).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("SELECT x FROM s"),
            vec![
                Tok::Keyword(Keyword::Select),
                Tok::Ident("x".into()),
                Tok::Keyword(Keyword::From),
                Tok::Ident("s".into()),
            ]
        );
        // Case-insensitive keywords, case-preserving identifiers.
        assert_eq!(
            toks("select MyStream"),
            vec![Tok::Keyword(Keyword::Select), Tok::Ident("MyStream".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.5"), vec![Tok::Float(3.5)]);
        assert_eq!(toks("1.5.2").len(), 3, "second dot starts a new token");
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b <> c >= d != e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Ident("d".into()),
                Tok::Ne,
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'abc'"), vec![Tok::Str("abc".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- the projection\n x"),
            vec![Tok::Keyword(Keyword::Select), Tok::Ident("x".into())]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("SELECT\n  x").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[1].column, 3);
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("SELECT @").unwrap_err();
        assert!(matches!(err, Error::Parse { column: 8, .. }));
    }
}
