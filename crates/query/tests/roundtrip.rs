//! Generative round-trip property tests: random ASTs print to surface
//! syntax that re-parses to the identical AST.

use proptest::prelude::*;

use millstream_query::ast::{
    AstAgg, AstExpr, GroupByClause, JoinClause, Projection, Query, SelectItem, SelectStmt, Stmt,
    TableRef,
};
use millstream_query::parse_program;
use millstream_types::{BinOp, DataType, TimeDelta, TimestampKind, Value};

// ---- strategies -----------------------------------------------------------

/// Identifiers that can never collide with keywords.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("id_{s}"))
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        // Non-negative only: a leading minus parses as unary negation.
        (0i64..10_000).prop_map(Value::Int),
        // Floats with a guaranteed fractional part so they print with a dot.
        (0i64..1_000, 1i64..100).prop_map(|(a, b)| { Value::Float(a as f64 + b as f64 / 128.0) }),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        Just(Value::Null),
        // Strings over a lexer-safe alphabet, including escaped quotes.
        "[a-z ']{0,8}".prop_map(Value::str),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn expr() -> impl Strategy<Value = AstExpr> {
    let leaf = prop_oneof![
        literal().prop_map(AstExpr::Literal),
        ident().prop_map(|name| AstExpr::Column {
            qualifier: None,
            name
        }),
        (ident(), ident()).prop_map(|(q, name)| AstExpr::Column {
            qualifier: Some(q),
            name
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| AstExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| AstExpr::Not(Box::new(e))),
            inner.clone().prop_map(|e| AstExpr::Neg(Box::new(e))),
            inner.prop_map(|e| AstExpr::IsNull(Box::new(e))),
        ]
    })
}

fn duration() -> impl Strategy<Value = TimeDelta> {
    prop_oneof![
        (1u64..600).prop_map(TimeDelta::from_millis),
        (1u64..600).prop_map(TimeDelta::from_secs),
        (1u64..10).prop_map(|m| TimeDelta::from_secs(60 * m)),
    ]
}

fn agg() -> impl Strategy<Value = AstAgg> {
    prop_oneof![
        Just(AstAgg::Count),
        Just(AstAgg::Sum),
        Just(AstAgg::Min),
        Just(AstAgg::Max),
        Just(AstAgg::Avg),
    ]
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    let plain =
        (expr(), prop::option::of(ident())).prop_map(|(expr, alias)| SelectItem { expr, alias });
    let agg_item = (agg(), prop::option::of(expr()), ident()).prop_map(|(func, arg, alias)| {
        let arg = match (func, arg) {
            // Only COUNT may take `*`.
            (AstAgg::Count, a) => a.map(Box::new),
            (_, Some(a)) => Some(Box::new(a)),
            (_, None) => Some(Box::new(AstExpr::column("id_x"))),
        };
        SelectItem {
            expr: AstExpr::Agg { func, arg },
            alias: Some(alias),
        }
    });
    prop_oneof![3 => plain, 1 => agg_item]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), prop::option::of(ident())).prop_map(|(stream, alias)| TableRef { stream, alias })
}

fn select_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        prop_oneof![
            1 => Just(Projection::Star),
            3 => prop::collection::vec(select_item(), 1..4).prop_map(Projection::Items),
        ],
        table_ref(),
        prop::collection::vec(
            (table_ref(), expr(), duration()).prop_map(|(table, on, window)| JoinClause {
                table,
                on,
                window,
            }),
            0..3,
        ),
        prop::option::of(expr()),
        prop::option::of(
            (
                prop::collection::vec(expr(), 1..3),
                prop::option::of(duration()),
                duration(),
            )
                .prop_map(|(keys, window, every)| GroupByClause {
                    keys,
                    window,
                    every,
                }),
        ),
        prop::option::of(expr()),
    )
        .prop_map(
            |(projection, from, joins, filter, group_by, having)| SelectStmt {
                projection,
                from,
                joins,
                filter,
                // HAVING is only legal with GROUP BY.
                having: if group_by.is_some() { having } else { None },
                group_by,
            },
        )
}

fn create_stream() -> impl Strategy<Value = Stmt> {
    (
        ident(),
        prop::collection::vec(
            (
                ident(),
                prop_oneof![
                    Just(DataType::Int),
                    Just(DataType::Float),
                    Just(DataType::Bool),
                    Just(DataType::Str),
                ],
            ),
            1..5,
        ),
        prop_oneof![
            Just(TimestampKind::Internal),
            Just(TimestampKind::External),
            Just(TimestampKind::Latent),
        ],
        prop::option::of(duration()),
    )
        .prop_map(|(name, fields, kind, slack)| Stmt::CreateStream {
            name,
            fields,
            kind,
            slack,
        })
}

// ---- properties ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn create_stream_roundtrips(stmt in create_stream()) {
        let text = stmt.to_string();
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(parsed, vec![stmt]);
    }

    #[test]
    fn expressions_roundtrip(e in expr()) {
        // Embed in a SELECT so the parser exercises the expression grammar.
        let text = format!("SELECT {e} FROM id_s");
        let parsed = parse_program(&text)
            .unwrap_or_else(|err| panic!("`{text}` failed to parse: {err}"));
        let Stmt::Query(q) = &parsed[0] else { panic!("expected query") };
        let Projection::Items(items) = &q.branches[0].projection else {
            panic!("expected items")
        };
        prop_assert_eq!(&items[0].expr, &e, "text was `{}`", text);
    }

    #[test]
    fn select_statements_roundtrip(branches in prop::collection::vec(select_stmt(), 1..3)) {
        let q = Query { branches };
        let text = q.to_string();
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(parsed, vec![Stmt::Query(q)], "text was `{}`", text);
    }
}
