//! # millstream
//!
//! A data stream management system (DSMS) with **on-demand Enabling
//! Time-Stamp (ETS) management** — a from-scratch Rust reproduction of
//!
//! > Bai, Thakkar, Wang, Zaniolo. *Optimizing Timestamp Management in Data
//! > Stream Management Systems.* ICDE 2007.
//!
//! Multi-input stream operators (union, window join) stall — *idle-wait* —
//! whenever one input is temporarily silent, because a future tuple there
//! could carry a smaller timestamp. millstream implements the paper's
//! remedy: a depth-first query-graph executor whose **backtrack rule
//! generates an enabling timestamp at the starved source on demand**,
//! reactivating idle-waiting operators with punctuation traffic bounded by
//! the data rate. The periodic-heartbeat baseline, the no-ETS baseline and
//! the latent-timestamp lower bound are implemented alongside for the
//! paper's full evaluation.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `millstream-types` | timestamps, tuples, punctuation, schemas, expressions |
//! | [`buffer`] | `millstream-buffer` | FIFO arcs, TSM registers, occupancy tracking |
//! | [`ops`] | `millstream-ops` | selection, projection, union, window join, aggregation, sinks |
//! | [`exec`] | `millstream-exec` | query graphs, the NOS executor, ETS policies, virtual clock |
//! | [`metrics`] | `millstream-metrics` | latency histograms, idle-time integration |
//! | [`sim`] | `millstream-sim` | discrete-event driver, workloads, the §6 experiments |
//! | [`query`] | `millstream-query` | the continuous-query language (lexer/parser/planner) |
//! | [`rt`] | `millstream-rt` | the real-time, thread-per-operator engine |
//!
//! ## Quick start
//!
//! ```
//! use millstream_core::QueryRunner;
//! use millstream_types::Value;
//!
//! let mut q = QueryRunner::new(
//!     "CREATE STREAM sensors (id INT, temp FLOAT);
//!      CREATE STREAM manual (id INT, temp FLOAT);
//!      SELECT id, temp FROM sensors WHERE temp > 30.0
//!      UNION
//!      SELECT id, temp FROM manual;",
//! ).unwrap();
//! q.push("sensors", 1_000, vec![Value::Int(1), Value::Float(35.5)]).unwrap();
//! q.push("manual", 2_000, vec![Value::Int(2), Value::Float(20.0)]).unwrap();
//! let out = q.finish().unwrap();
//! assert_eq!(out.len(), 2);
//! ```
//!
//! For the paper's experiments, see [`sim::run_union_experiment`] and the
//! benches in `millstream-bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod runner;

pub use runner::QueryRunner;

pub use millstream_buffer as buffer;
pub use millstream_exec as exec;
pub use millstream_metrics as metrics;
pub use millstream_ops as ops;
pub use millstream_query as query;
pub use millstream_rt as rt;
pub use millstream_sim as sim;
pub use millstream_types as types;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::QueryRunner;
    pub use millstream_exec::{
        Activity, CostModel, EtsPolicy, ExecStats, Executor, GraphBuilder, Input, NodeId,
        OpProfile, ParallelConfig, ParallelExecutor, ParallelSnapshot, QueryGraph, SchedPolicy,
        SourceId, VirtualClock,
    };
    pub use millstream_metrics::{LatencyRecorder, RunMetrics};
    pub use millstream_ops::{
        Filter, JoinSpec, LatePolicy, MultiWindowJoin, Operator, Project, Reorder, Sink,
        SinkCollector, SlidingAggregate, Split, Union, VecCollector, WindowAggregate, WindowJoin,
    };
    pub use millstream_sim::{
        run_disorder_experiment, run_join_experiment, run_union_experiment, ArrivalProcess,
        DisorderExperiment, JoinExperiment, ParallelSimulation, PayloadGen, Simulation, Strategy,
        StreamSpec, UnionExperiment,
    };
    pub use millstream_types::{
        DataType, Error, Expr, Field, Result, Schema, TimeDelta, Timestamp, TimestampKind, Tuple,
        Value,
    };
}
