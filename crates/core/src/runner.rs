//! A high-level, batteries-included runner for textual queries.
//!
//! [`QueryRunner`] compiles a program with `millstream-query`, executes it
//! on the depth-first NOS executor, and gives a push/run/drain interface
//! with explicit timestamps — the easiest way to use millstream as a
//! library (workload-driven experiments use `millstream-sim` instead).

use std::sync::{Arc, Mutex};

use millstream_exec::{
    CostModel, EtsPolicy, Executor, OpProfile, ParallelConfig, ParallelExecutor, ShardedConfig,
    ShardedExecutor, SourceId, VirtualClock,
};
use millstream_ops::{SinkCollector, VecCollector};
use millstream_query::{plan_program, plan_query, shard_keys, Catalog, PlannedSource};
use millstream_types::{Error, Result, Schema, Timestamp, Tuple, Value};

/// A `SinkCollector` that shares its deliveries with the runner.
#[derive(Clone, Default)]
struct SharedVec(Arc<Mutex<VecCollector>>);

impl SinkCollector for SharedVec {
    fn deliver(&mut self, tuple: Tuple, now: Timestamp) {
        self.0.lock().unwrap().deliver(tuple, now);
    }
}

/// Compiles and runs one continuous query over manually pushed tuples.
///
/// ```
/// use millstream_core::QueryRunner;
/// use millstream_types::Value;
///
/// let mut q = QueryRunner::new(
///     "CREATE STREAM a (v INT);
///      CREATE STREAM b (v INT);
///      SELECT v FROM a WHERE v > 10 UNION SELECT v FROM b;",
/// ).unwrap();
/// q.push("a", 1_000, vec![Value::Int(50)]).unwrap();
/// q.push("b", 2_000, vec![Value::Int(7)]).unwrap();
/// let out = q.finish().unwrap();
/// assert_eq!(out.len(), 2);
/// assert!(out[0].ts < out[1].ts);
/// ```
pub struct QueryRunner {
    engine: Engine,
    sources: Vec<PlannedSource>,
    output: SharedVec,
    output_schema: Schema,
    drained: usize,
}

/// The execution backend behind a [`QueryRunner`].
enum Engine {
    /// The single-threaded depth-first NOS executor.
    Serial(Box<Executor>),
    /// One worker thread per query-graph component (`msq --workers N`).
    /// The plan DOT is rendered before partitioning (the whole graph).
    Parallel {
        pex: Box<ParallelExecutor>,
        plan_dot: String,
    },
    /// One component key-partitioned across N shard workers behind an
    /// exchange edge, with frontier summaries driving the order-restoring
    /// merge (`msq --shards N`).
    Sharded(Box<ShardedExecutor>),
}

impl QueryRunner {
    /// Compiles `program` (CREATE STREAM statements + one query).
    ///
    /// Honors two environment variables: `MILLSTREAM_SHARDS` ≥ 2 selects
    /// the key-partitioned intra-component backend (the programmatic
    /// equivalent of `msq --shards N`; unshardable queries transparently
    /// fall back to the serial executor), and otherwise
    /// `MILLSTREAM_WORKERS` ≥ 1 selects the parallel per-component backend
    /// (`msq --workers N`). With neither set the serial executor runs the
    /// whole graph.
    ///
    /// Independently, `MILLSTREAM_JOIN_SPILL` (the env spelling of
    /// `msq --join-spill-budget`) gives every join input a tiered state:
    /// aged rows compact into columnar runs and runs beyond the byte
    /// budget spill to a per-state temp file. Output is byte-identical at
    /// any setting; only peak resident join state changes
    /// ([`millstream_ops::TierConfig`]).
    pub fn new(program: &str) -> Result<QueryRunner> {
        if let Some(shards) = std::env::var("MILLSTREAM_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&s| s >= 2)
        {
            return QueryRunner::new_sharded(program, shards);
        }
        match std::env::var("MILLSTREAM_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
        {
            Some(workers) => QueryRunner::new_parallel(program, workers),
            None => QueryRunner::new_serial(program),
        }
    }

    /// Compiles `program` onto the sharded intra-component backend: the
    /// planner derives per-source partition keys
    /// ([`millstream_query::shard_keys`]) and the plan is replicated once
    /// per shard behind a key-partitioned exchange edge. Queries the
    /// analysis deems unshardable (window cross products, bare
    /// aggregates, conflicting keys, latent streams) and multi-component
    /// plans fall back to the serial executor — check
    /// [`QueryRunner::shards`] to see which backend actually runs.
    pub fn new_sharded(program: &str, shards: usize) -> Result<QueryRunner> {
        let stmts = millstream_query::parse_program(program)?;
        let mut catalog = Catalog::new();
        let mut queries = catalog.apply(stmts)?;
        if queries.len() != 1 {
            return Err(Error::plan(format!(
                "program contains {} queries; plan one at a time",
                queries.len()
            )));
        }
        let query = queries.pop().expect("len checked");
        let Some(keys) = shard_keys(&catalog, &query)? else {
            return QueryRunner::new_serial(program);
        };
        // Probe plan: reject multi-component graphs (those belong to the
        // per-component backend) and capture sources/output schema.
        let probe = plan_query(&catalog, &query, VecCollector::default())?;
        if probe.graph.num_components() != 1 {
            return QueryRunner::new_serial(program);
        }
        let output = SharedVec::default();
        let sx = ShardedExecutor::new(
            |_, out| plan_query(&catalog, &query, out).map(|p| p.graph),
            probe.output_schema.clone(),
            Box::new(output.clone()),
            // Same discipline as the serial backend: explicit timestamps,
            // no wall-clock ETS — frontier summaries do the unblocking.
            ShardedConfig::new(CostModel::free(), EtsPolicy::None, shards).with_keys(keys),
        )?;
        Ok(QueryRunner {
            engine: Engine::Sharded(Box::new(sx)),
            sources: probe.sources,
            output,
            output_schema: probe.output_schema,
            drained: 0,
        })
    }

    /// Compiles `program` onto the single-threaded executor.
    pub fn new_serial(program: &str) -> Result<QueryRunner> {
        let output = SharedVec::default();
        let planned = plan_program(program, output.clone())?;
        let clock = VirtualClock::shared();
        let executor = Executor::new(
            planned.graph,
            clock,
            CostModel::free(),
            // Explicit timestamps are application time; ETS, if wanted,
            // comes from `flush` rather than the wall clock.
            EtsPolicy::None,
        );
        Ok(QueryRunner {
            engine: Engine::Serial(Box::new(executor)),
            sources: planned.sources,
            output,
            output_schema: planned.output_schema,
            drained: 0,
        })
    }

    /// Compiles `program` onto the parallel per-component backend with up
    /// to `workers` threads (components are multiplexed when fewer).
    pub fn new_parallel(program: &str, workers: usize) -> Result<QueryRunner> {
        let output = SharedVec::default();
        let planned = plan_program(program, output.clone())?;
        let plan_dot = planned.graph.to_dot();
        let pex = Box::new(ParallelExecutor::new(
            planned.graph,
            ParallelConfig::new(CostModel::free(), EtsPolicy::None, workers),
        ));
        Ok(QueryRunner {
            engine: Engine::Parallel { pex, plan_dot },
            sources: planned.sources,
            output,
            output_schema: planned.output_schema,
            drained: 0,
        })
    }

    /// Worker threads in use (1 means the serial backend).
    pub fn workers(&self) -> usize {
        match &self.engine {
            Engine::Serial(_) => 1,
            Engine::Parallel { pex, .. } => pex.num_workers(),
            Engine::Sharded(sx) => sx.num_shards(),
        }
    }

    /// Exchange shards in use: >1 only on the sharded backend (so 1 after
    /// an unshardable-query fallback).
    pub fn shards(&self) -> usize {
        match &self.engine {
            Engine::Sharded(sx) => sx.num_shards(),
            _ => 1,
        }
    }

    /// The schema of the delivered stream.
    pub fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    /// Renders the compiled plan as Graphviz DOT.
    pub fn plan_dot(&self) -> String {
        match &self.engine {
            Engine::Serial(e) => e.graph().to_dot(),
            Engine::Parallel { plan_dot, .. } => plan_dot.clone(),
            Engine::Sharded(sx) => sx.plan_dot().to_string(),
        }
    }

    /// Per-operator execution profile so far (steps, tuples, virtual
    /// time), in plan order regardless of backend.
    pub fn profile(&self) -> Vec<OpProfile> {
        match &self.engine {
            Engine::Serial(e) => e.profile().to_vec(),
            Engine::Parallel { pex, .. } => pex.snapshot().map(|s| s.profile).unwrap_or_default(),
            Engine::Sharded(sx) => sx.snapshot().map(|s| s.profile).unwrap_or_default(),
        }
    }

    /// The names of the input streams, in planning order.
    pub fn stream_names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.stream.as_str()).collect()
    }

    fn source_id(&self, stream: &str) -> Result<SourceId> {
        self.sources
            .iter()
            .find(|s| s.stream == stream)
            .map(|s| s.id)
            .ok_or_else(|| Error::plan(format!("query has no stream `{stream}`")))
    }

    /// Pushes one tuple with an explicit timestamp (microseconds), then
    /// runs the executor until quiescent. Errors (schema mismatch,
    /// out-of-order timestamps) are reported from this call on both
    /// backends: the parallel ingest is fire-and-forget, but `run`'s
    /// quiescence barrier surfaces any error it caused.
    pub fn push(&mut self, stream: &str, ts_micros: u64, values: Vec<Value>) -> Result<()> {
        let id = self.source_id(stream)?;
        let schema = &self
            .sources
            .iter()
            .find(|s| s.id == id)
            .expect("id from sources")
            .schema;
        schema.check_row(&values)?;
        let ts = Timestamp::from_micros(ts_micros);
        match &mut self.engine {
            Engine::Serial(e) => {
                e.clock().advance_to(ts);
                e.ingest(id, Tuple::data(ts, values))?;
            }
            Engine::Parallel { pex, .. } => {
                pex.advance_to(ts)?;
                pex.ingest(id, Tuple::data(ts, values))?;
            }
            Engine::Sharded(sx) => {
                sx.advance_to(ts)?;
                sx.ingest(id, Tuple::data(ts, values))?;
            }
        }
        self.run()
    }

    /// Advances every input stream to at least `ts_micros` by injecting
    /// punctuation, unblocking idle-waiting operators — the manual
    /// equivalent of an ETS round.
    pub fn advance_time(&mut self, ts_micros: u64) -> Result<()> {
        let ts = Timestamp::from_micros(ts_micros);
        match &mut self.engine {
            Engine::Serial(e) => {
                e.clock().advance_to(ts);
                for s in self.sources.clone() {
                    e.ingest_heartbeat(s.id, ts)?;
                }
            }
            Engine::Parallel { pex, .. } => {
                pex.advance_to(ts)?;
                for s in self.sources.clone() {
                    pex.ingest_heartbeat(s.id, ts)?;
                }
            }
            Engine::Sharded(sx) => {
                sx.advance_to(ts)?;
                for s in self.sources.clone() {
                    sx.ingest_heartbeat(s.id, ts)?;
                }
            }
        }
        self.run()
    }

    /// Runs the executor until quiescent.
    pub fn run(&mut self) -> Result<()> {
        // The step budget only guards against runaway loops; real programs
        // finish long before.
        match &mut self.engine {
            Engine::Serial(e) => {
                e.run_until_quiescent(10_000_000)?;
            }
            Engine::Parallel { pex, .. } => {
                pex.run_until_quiescent(10_000_000)?;
            }
            Engine::Sharded(sx) => {
                sx.run_until_quiescent(10_000_000)?;
            }
        }
        Ok(())
    }

    /// Takes the tuples delivered since the last drain.
    pub fn drain(&mut self) -> Vec<Tuple> {
        let inner = self.output.0.lock().unwrap();
        let fresh: Vec<Tuple> = inner.delivered[self.drained..]
            .iter()
            .map(|(t, _)| t.clone())
            .collect();
        drop(inner);
        self.drained += fresh.len();
        fresh
    }

    /// Declares end-of-stream on every input, flushes every in-flight
    /// tuple (including final aggregate windows), and returns the complete
    /// output.
    pub fn finish(mut self) -> Result<Vec<Tuple>> {
        for s in self.sources.clone() {
            match &mut self.engine {
                Engine::Serial(e) => e.close_source(s.id)?,
                Engine::Parallel { pex, .. } => pex.close_source(s.id)?,
                Engine::Sharded(sx) => sx.close_source(s.id)?,
            }
        }
        self.run()?;
        self.drained = 0;
        Ok(self.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_query_end_to_end() {
        let mut q = QueryRunner::new(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a UNION SELECT v FROM b;",
        )
        .unwrap();
        assert_eq!(q.stream_names(), vec!["a", "b"]);
        q.push("a", 10, vec![Value::Int(1)]).unwrap();
        q.push("b", 20, vec![Value::Int(2)]).unwrap();
        q.push("a", 30, vec![Value::Int(3)]).unwrap();
        // Before flushing, the tuple at 30 idle-waits on stream b.
        let early = q.drain();
        assert_eq!(early.len(), 2);
        let rest = q.finish().unwrap();
        assert_eq!(rest.len(), 3, "finish() flushes everything");
        let ts: Vec<u64> = rest.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn where_filters() {
        let mut q = QueryRunner::new(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a WHERE v >= 10 UNION SELECT v FROM b;",
        )
        .unwrap();
        q.push("a", 1, vec![Value::Int(5)]).unwrap();
        q.push("a", 2, vec![Value::Int(15)]).unwrap();
        q.push("b", 3, vec![Value::Int(0)]).unwrap();
        let out = q.finish().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].values().unwrap()[0], Value::Int(15));
    }

    #[test]
    fn join_query_end_to_end() {
        let mut q = QueryRunner::new(
            "CREATE STREAM trades (sym INT, px INT);
             CREATE STREAM quotes (sym INT, bid INT);
             SELECT t.sym, px, bid FROM trades AS t
             JOIN quotes AS q ON t.sym = q.sym WINDOW 1 SECONDS;",
        )
        .unwrap();
        q.push("quotes", 100, vec![Value::Int(7), Value::Int(99)])
            .unwrap();
        q.push("trades", 200, vec![Value::Int(7), Value::Int(101)])
            .unwrap();
        q.push("trades", 300, vec![Value::Int(8), Value::Int(50)])
            .unwrap();
        let out = q.finish().unwrap();
        assert_eq!(out.len(), 1, "only symbol 7 joins");
        assert_eq!(
            out[0].values().unwrap(),
            &[Value::Int(7), Value::Int(101), Value::Int(99)]
        );
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let err = QueryRunner::new("CREATEH STREAM x (v INT); SELECT 1 FROM x;")
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Parse { .. } | Error::Plan(_)), "{err}");

        let mut q = QueryRunner::new(
            "CREATE STREAM s (k INT, v INT);
             CREATE STREAM t (k INT, v INT);
             SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s
             GROUP BY k EVERY 1 SECONDS
             UNION
             SELECT k, COUNT(*) AS n, SUM(v) AS total FROM t
             GROUP BY k EVERY 1 SECONDS;",
        )
        .unwrap();
        q.push("s", 100_000, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        q.push("s", 200_000, vec![Value::Int(1), Value::Int(20)])
            .unwrap();
        q.push("t", 300_000, vec![Value::Int(2), Value::Int(5)])
            .unwrap();
        // Cross both aggregates' window boundary and flush.
        q.advance_time(2_000_000).unwrap();
        let out = q.drain();
        assert_eq!(out.len(), 2);
        // Stream s, key 1: n=2, total=30. window_start column first.
        let row = out
            .iter()
            .find(|t| t.values().unwrap()[1] == Value::Int(1))
            .unwrap();
        assert_eq!(row.values().unwrap()[2], Value::Int(2));
        assert_eq!(row.values().unwrap()[3], Value::Int(30));
    }

    #[test]
    fn plan_introspection() {
        let mut q = QueryRunner::new(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a UNION SELECT v FROM b;",
        )
        .unwrap();
        assert!(q.plan_dot().starts_with("digraph"));
        q.push("a", 1, vec![Value::Int(1)]).unwrap();
        let busy: u64 = q.profile().iter().map(|p| p.steps).sum();
        assert!(busy > 0, "profile sees the push");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut q = QueryRunner::new(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a UNION SELECT v FROM b;",
        )
        .unwrap();
        assert!(q.push("a", 1, vec![Value::str("oops")]).is_err());
        assert!(q.push("nope", 1, vec![Value::Int(1)]).is_err());
        assert!(q.push("a", 1, vec![]).is_err());
    }

    #[test]
    fn sliding_window_query_end_to_end() {
        let mut q = QueryRunner::new(
            "CREATE STREAM s (k INT, v INT);
             CREATE STREAM t (k INT, v INT);
             SELECT k, SUM(v) AS total FROM s
             GROUP BY k WINDOW 2 SECONDS EVERY 1 SECONDS
             UNION
             SELECT k, SUM(v) AS total FROM t
             GROUP BY k WINDOW 2 SECONDS EVERY 1 SECONDS;",
        )
        .unwrap();
        // Two tuples in consecutive 1 s panes of stream s.
        q.push("s", 500_000, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        q.push("s", 1_500_000, vec![Value::Int(1), Value::Int(20)])
            .unwrap();
        q.advance_time(5_000_000).unwrap();
        let out = q.drain();
        // Overlapping windows: [−1,1)→10, [0,2)→30, [1,3)→20.
        let sums: Vec<i64> = out
            .iter()
            .map(|t| t.values().unwrap()[2].as_int().unwrap())
            .collect();
        assert_eq!(sums, vec![10, 30, 20], "out {out:?}");
    }

    #[test]
    fn slack_stream_accepts_disorder_and_reorders() {
        let mut q = QueryRunner::new(
            "CREATE STREAM feed (v INT) TIMESTAMP EXTERNAL SLACK 1 SECONDS;
             CREATE STREAM other (v INT);
             SELECT v FROM feed UNION SELECT v FROM other;",
        )
        .unwrap();
        // Out-of-order pushes within the slack bound are accepted.
        q.push("feed", 100_000, vec![Value::Int(1)]).unwrap();
        q.push("feed", 50_000, vec![Value::Int(2)]).unwrap();
        q.push("feed", 150_000, vec![Value::Int(3)]).unwrap();
        let out = q.finish().unwrap();
        assert_eq!(out.len(), 3, "nothing lost");
        let ts: Vec<u64> = out.iter().map(|t| t.ts.as_micros()).collect();
        assert_eq!(ts, vec![50_000, 100_000, 150_000], "order restored");
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let program = "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a WHERE v >= 10 UNION SELECT v FROM b;";
        let drive = |mut q: QueryRunner| -> (Vec<Tuple>, Vec<OpProfile>) {
            q.push("a", 10, vec![Value::Int(5)]).unwrap();
            q.push("a", 20, vec![Value::Int(15)]).unwrap();
            q.push("b", 30, vec![Value::Int(1)]).unwrap();
            q.advance_time(40).unwrap();
            let profile = q.profile();
            (q.finish().unwrap(), profile)
        };
        let serial = QueryRunner::new_serial(program).unwrap();
        assert_eq!(serial.workers(), 1);
        let parallel = QueryRunner::new_parallel(program, 4).unwrap();
        assert_eq!(
            parallel.workers(),
            1,
            "one query = one component; extra workers are not spawned"
        );
        assert_eq!(serial.plan_dot(), parallel.plan_dot());
        let (s_out, s_prof) = drive(serial);
        let (p_out, p_prof) = drive(parallel);
        assert_eq!(s_out, p_out);
        assert_eq!(s_prof, p_prof, "identical work on both backends");
    }

    #[test]
    fn parallel_backend_rejects_out_of_order_push() {
        let mut q = QueryRunner::new_parallel(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a UNION SELECT v FROM b;",
            2,
        )
        .unwrap();
        q.push("a", 100, vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            q.push("a", 50, vec![Value::Int(2)]).unwrap_err(),
            Error::OutOfOrder { .. }
        ));
    }

    #[test]
    fn sharded_backend_matches_serial() {
        let program = "CREATE STREAM s (k INT, v INT);
             CREATE STREAM t (k INT, v INT);
             SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s
             GROUP BY k EVERY 1 SECONDS
             UNION
             SELECT k, COUNT(*) AS n, SUM(v) AS total FROM t
             GROUP BY k EVERY 1 SECONDS;";
        let drive = |mut q: QueryRunner| -> Vec<Tuple> {
            for i in 0..200u64 {
                let (stream, k) = if i % 3 == 0 {
                    ("t", i % 5)
                } else {
                    ("s", i % 7)
                };
                q.push(
                    stream,
                    i * 10_000,
                    vec![Value::Int(k as i64), Value::Int(1)],
                )
                .unwrap();
            }
            q.advance_time(3_000_000).unwrap();
            q.finish().unwrap()
        };
        let serial = drive(QueryRunner::new_serial(program).unwrap());
        for shards in [2usize, 4] {
            let q = QueryRunner::new_sharded(program, shards).unwrap();
            assert_eq!(q.shards(), shards, "grouped query is shardable");
            let sharded = drive(q);
            assert_eq!(serial.len(), sharded.len());
            // Same multiset of rows; cross-shard ties at one timestamp may
            // interleave differently than the serial BTreeMap order.
            let mut a = serial.clone();
            let mut b = sharded.clone();
            let key = |t: &Tuple| format!("{:?}", t);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "{shards} shards");
            // Timestamp order is still restored by the merge.
            let ts: Vec<u64> = sharded.iter().map(|t| t.ts.as_micros()).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(ts, sorted);
        }
    }

    #[test]
    fn unshardable_query_falls_back_to_serial() {
        // A bare-window cross product is unshardable: pairs would be lost
        // across shards. new_sharded must fall back, not fail or mis-run.
        let q = QueryRunner::new_sharded(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT a.v FROM a AS a JOIN b AS b ON TRUE WINDOW 1 SECONDS;",
            4,
        )
        .unwrap();
        assert_eq!(q.shards(), 1, "fell back to serial");

        let mut q = QueryRunner::new_sharded(
            "CREATE STREAM a (k INT, v INT);
             SELECT k, SUM(v) AS s FROM a GROUP BY k EVERY 1 SECONDS;",
            4,
        )
        .unwrap();
        assert_eq!(q.shards(), 4, "keyed aggregate is shardable");
        q.push("a", 10, vec![Value::Int(1), Value::Int(2)]).unwrap();
        let out = q.finish().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values().unwrap()[2], Value::Int(2));
    }

    #[test]
    fn sharded_backend_rejects_out_of_order_push() {
        let mut q = QueryRunner::new_sharded(
            "CREATE STREAM a (v INT);
             SELECT v FROM a WHERE v > 0;",
            2,
        )
        .unwrap();
        q.push("a", 100, vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            q.push("a", 50, vec![Value::Int(2)]).unwrap_err(),
            Error::OutOfOrder { .. }
        ));
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let mut q = QueryRunner::new(
            "CREATE STREAM a (v INT);
             CREATE STREAM b (v INT);
             SELECT v FROM a UNION SELECT v FROM b;",
        )
        .unwrap();
        q.push("a", 100, vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            q.push("a", 50, vec![Value::Int(2)]).unwrap_err(),
            Error::OutOfOrder { .. }
        ));
    }
}
